#!/usr/bin/env python3
"""Compare two ``BENCH_perf.json`` reports and warn on regressions.

CI runs this against the previous commit's artifact (the ROADMAP's BENCH
trend line): every numeric leaf metric of the current report is compared to
the same metric in the previous report, and a non-blocking warning is
emitted when it regressed by more than the threshold (default 20 %).

Direction is inferred from the metric name:

* ``*seconds*`` (timings, latencies) — higher is worse;
* ``*speedup*`` / ``*per_second*`` — lower is worse;
* anything else (counts, sizes, versions) is informational and not compared.

Exit code is always 0 — the trend line warns, the absolute floors in
``test_perf_regression.py`` gate.  Warnings use the GitHub ``::warning::``
annotation syntax so they surface on the workflow summary.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path

#: Metrics where a higher current value is a regression.
_HIGHER_IS_WORSE = ("seconds",)
#: Metrics where a lower current value is a regression.
_LOWER_IS_WORSE = ("speedup", "per_second")
#: Changes smaller than this many absolute seconds are noise, never warned
#: about (sub-millisecond kernels fluctuate wildly on shared runners).
MIN_ABS_SECONDS = 1e-3


@dataclass(frozen=True)
class Regression:
    """One metric that moved in the bad direction past the threshold."""

    metric: str
    previous: float
    current: float

    @property
    def change(self) -> float:
        """Relative change of the current value vs the previous one."""
        if self.previous == 0:
            return float("inf")
        return self.current / self.previous - 1.0


def flatten(report: dict, prefix: str = "") -> dict[str, float]:
    """Flatten the nested report into ``results.service.jobs_per_second``-style keys."""
    flat: dict[str, float] = {}
    for key, value in report.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            flat.update(flatten(value, path))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            flat[path] = float(value)
    return flat


def _direction(metric: str) -> int:
    """+1 when higher is worse, -1 when lower is worse, 0 when not compared."""
    leaf = metric.rsplit(".", 1)[-1]
    if any(token in leaf for token in _LOWER_IS_WORSE):
        return -1
    if any(token in leaf for token in _HIGHER_IS_WORSE):
        return 1
    return 0


def compare_reports(previous: dict, current: dict, *, threshold: float = 0.2) -> list[Regression]:
    """Return the metrics that regressed by more than ``threshold`` (relative)."""
    prev_flat = flatten(previous)
    cur_flat = flatten(current)
    regressions: list[Regression] = []
    for metric, cur_value in sorted(cur_flat.items()):
        direction = _direction(metric)
        if direction == 0 or metric not in prev_flat:
            continue
        prev_value = prev_flat[metric]
        if prev_value <= 0:
            continue
        change = (cur_value - prev_value) / prev_value * direction
        if change <= threshold:
            continue
        if direction > 0 and abs(cur_value - prev_value) < MIN_ABS_SECONDS:
            continue
        regressions.append(Regression(metric=metric, previous=prev_value, current=cur_value))
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("previous", type=Path, help="BENCH_perf.json of the previous commit")
    parser.add_argument("current", type=Path, help="BENCH_perf.json of this commit")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="relative regression beyond which a warning is emitted (default 0.2)",
    )
    args = parser.parse_args(argv)

    previous = json.loads(args.previous.read_text(encoding="utf-8"))
    current = json.loads(args.current.read_text(encoding="utf-8"))
    regressions = compare_reports(previous, current, threshold=args.threshold)

    if not regressions:
        print(
            f"BENCH trend: no metric regressed by more than {args.threshold:.0%} "
            f"vs {args.previous}"
        )
        return 0
    print(f"BENCH trend: {len(regressions)} metric(s) regressed more than {args.threshold:.0%}:")
    for regression in regressions:
        message = (
            f"{regression.metric}: {regression.previous:.4g} -> {regression.current:.4g} "
            f"({regression.change:+.0%})"
        )
        print(f"::warning title=BENCH perf trend::{message}")
        print(f"  {message}")
    # Non-blocking by design: the trend line warns, the floors gate.
    return 0


if __name__ == "__main__":
    sys.exit(main())
