"""Shared fixtures of the benchmark/reproduction harness.

Every module in this directory regenerates one table or figure of the paper
(see DESIGN.md, Section 3 for the experiment index).  The benchmarks measure
the runtime of the FTIO analysis itself (which the paper reports in
Section III-C) and print a paper-vs-measured comparison table that is recorded
in EXPERIMENTS.md.

Expensive workload generation happens once per session in fixtures; the
benchmarked callables are the analysis steps, not the generators.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.exists() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis.sweep import LimitationStudy  # noqa: E402
from repro.core import Ftio, FtioConfig  # noqa: E402
from repro.workloads.hacc import hacc_io_trace  # noqa: E402
from repro.workloads.ior import ior_trace  # noqa: E402
from repro.workloads.lammps import lammps_trace  # noqa: E402
from repro.workloads.nek5000 import nek5000_heatmap  # noqa: E402
from repro.workloads.synthetic import PhaseLibrary  # noqa: E402


def print_report(title: str, body: str) -> None:
    """Print a clearly delimited report section (captured with ``pytest -s``)."""
    line = "=" * 72
    print(f"\n{line}\n{title}\n{line}\n{body}\n")


@pytest.fixture(scope="session")
def ior_case_study_trace():
    """IOR-like run mirroring the Section II-C example (8 iterations, ~112 s period)."""
    return ior_trace(
        ranks=32,
        iterations=8,
        segments=2,
        compute_time=95.0,
        io_phase_duration=16.0,
        seed=101,
    )


@pytest.fixture(scope="session")
def lammps_case_study_trace():
    """LAMMPS-like run mirroring Figure 10 (15 dumps, ~27 s apart, low bandwidth)."""
    return lammps_trace(ranks=48, dumps=15, dump_interval=27.4, seed=102)


@pytest.fixture(scope="session")
def hacc_case_study_trace():
    """HACC-IO-like looped run mirroring Figures 12-15 (10 phases, ~8.7 s period)."""
    return hacc_io_trace(ranks=64, loops=10, period=8.0, first_phase_delay=6.0, seed=103)


@pytest.fixture(scope="session")
def nek5000_profile():
    """Nek5000-like Darshan heatmap mirroring Figure 11."""
    return nek5000_heatmap(seed=104)


@pytest.fixture(scope="session")
def detection_ftio():
    """The FTIO configuration used by the case-study benchmarks (fs = 10 Hz)."""
    return Ftio(FtioConfig(sampling_frequency=10.0))


@pytest.fixture(scope="session")
def limitation_study():
    """Shared limitation-study harness (Section III-A) with the full-size phase library."""
    library = PhaseLibrary.generate(seed=105)
    return LimitationStudy(library=library, traces_per_point=10, sampling_frequency=1.0)


@pytest.fixture(scope="session")
def variability_sweep_results(limitation_study):
    """The sigma/mu sweep shared by the Figure 8c and Figure 9 benchmarks."""
    points = limitation_study.variability_points(sigma_over_mu=(0.0, 0.5, 1.0, 2.0))
    return limitation_study.run(points, seed=106)
