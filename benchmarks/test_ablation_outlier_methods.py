"""Ablation — outlier-detection methods (Section II-B2 discussion).

The paper defaults to the Z-score because it is cheap, but notes that DBSCAN,
isolation forest, the local outlier factor and SciPy's find-peaks can also
provide the decision function, at a higher computational cost.  This ablation
runs all five methods on the same IOR case-study trace and compares the
detected period, the confidence, and the analysis runtime.
"""

from __future__ import annotations

import time

from benchmarks.conftest import print_report
from repro.analysis.report import format_table
from repro.core import Ftio, FtioConfig
from repro.freq.outliers import DETECTOR_REGISTRY


def test_ablation_outlier_methods(benchmark, ior_case_study_trace):
    trace = ior_case_study_trace
    true_period = trace.ground_truth.average_period()

    def run_all():
        rows = []
        for method in sorted(DETECTOR_REGISTRY):
            config = FtioConfig(
                sampling_frequency=10.0,
                outlier_method=method,
                use_autocorrelation=False,
                compute_characterization=False,
            )
            started = time.perf_counter()
            result = Ftio(config).detect(trace)
            elapsed = time.perf_counter() - started
            rows.append(
                (
                    method,
                    result.period if result.period is not None else float("nan"),
                    result.confidence,
                    len(result.active_candidates()),
                    elapsed,
                )
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    periods = {method: period for method, period, *_ in rows}
    times = {method: elapsed for method, *_, elapsed in rows}

    # Every method recovers the period of this clean periodic trace.
    for method, period in periods.items():
        assert abs(period - true_period) / true_period < 0.15, f"{method} missed the period"
    # The Z-score default is among the cheapest methods (the paper's rationale).
    assert times["zscore"] <= 2.0 * min(times.values())

    table = format_table(
        ["method", "period [s]", "confidence", "active candidates", "analysis time [s]"],
        [[m, p, c, n, t] for m, p, c, n, t in rows],
    )
    print_report(
        f"Ablation — outlier-detection methods (ground-truth period {true_period:.1f} s)",
        table,
    )
