"""Ablation — FTIO parameters: candidate tolerance and sampling frequency.

Two parameter studies called out by the paper:

* **Tolerance** (Section II-C example): lowering the tolerance from 0.8 to
  0.45 admits the first harmonic as a candidate; because it is recognized as a
  harmonic and ignored, the confidence in the fundamental *increases*
  (60.5 % → 62.5 % in the paper's IOR example).
* **Sampling frequency** (Section II-E): fs trades precision against cost.
  Oversampling a slow signal does not change the detected period but increases
  the number of samples (and the analysis time); undersampling below the burst
  rate destroys the signal (see the Figure 6 benchmark).
"""

from __future__ import annotations

from benchmarks.conftest import print_report
from repro.analysis.report import format_table
from repro.core import Ftio, FtioConfig


def test_ablation_tolerance(benchmark, ior_case_study_trace):
    trace = ior_case_study_trace

    def sweep():
        rows = []
        for tolerance in (0.95, 0.8, 0.6, 0.45):
            config = FtioConfig(
                sampling_frequency=10.0,
                tolerance=tolerance,
                use_autocorrelation=False,
                compute_characterization=False,
            )
            result = Ftio(config).detect(trace)
            harmonics = sum(1 for c in result.candidates if c.is_harmonic)
            rows.append(
                (
                    tolerance,
                    result.period if result.period is not None else float("nan"),
                    result.confidence,
                    len(result.candidates),
                    harmonics,
                )
            )
        return rows

    rows = benchmark(sweep)
    by_tolerance = {tol: (period, conf, n, h) for tol, period, conf, n, h in rows}

    # The detected period is insensitive to the tolerance on a periodic signal.
    periods = [period for _, period, *_ in rows]
    assert max(periods) - min(periods) < 0.05 * periods[0]
    # A lower tolerance admits more candidates (harmonics included).
    assert by_tolerance[0.45][2] >= by_tolerance[0.95][2]

    table = format_table(
        ["tolerance", "period [s]", "confidence", "candidates", "ignored harmonics"],
        [list(r) for r in rows],
    )
    print_report("Ablation — dominant-candidate tolerance (paper: 0.8 default, 0.45 example)", table)


def test_ablation_sampling_frequency(benchmark, ior_case_study_trace):
    trace = ior_case_study_trace
    true_period = trace.ground_truth.average_period()

    def sweep():
        rows = []
        for fs in (0.2, 1.0, 5.0, 10.0):
            config = FtioConfig(
                sampling_frequency=fs,
                use_autocorrelation=False,
                compute_characterization=False,
            )
            result = Ftio(config).detect(trace)
            rows.append(
                (
                    fs,
                    result.signal.n_samples,
                    result.period if result.period is not None else float("nan"),
                    result.signal.abstraction_error,
                    result.analysis_time,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # The period is stable across sampling frequencies that resolve the phases
    # (the I/O phases last ~16 s, so even 0.2 Hz still sees them).
    for fs, _, period, _, _ in rows:
        assert abs(period - true_period) / true_period < 0.2, f"fs={fs} Hz missed the period"
    # More samples cost more analysis time.
    assert rows[-1][1] > rows[0][1]

    table = format_table(
        ["fs [Hz]", "samples", "period [s]", "abstraction error", "analysis time [s]"],
        [list(r) for r in rows],
    )
    print_report("Ablation — sampling frequency (Section II-E)", table)
