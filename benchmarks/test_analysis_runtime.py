"""Experiment E16 — Section III-C: runtime of the FTIO analysis itself.

Paper: the longest analyses took 2.2 s for LAMMPS, 5.7 s (5.9 s with
autocorrelation) for IOR, 8.7 s for Nek5000 and 3.6 s for HACC-IO — i.e.
seconds-scale, negligible compared to the applications and not on their
critical path.  These benchmarks time the same four analyses on the synthetic
case-study traces.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_report
from repro.analysis.report import paper_comparison_table
from repro.core import Ftio, FtioConfig


@pytest.mark.parametrize(
    "fixture_name, paper_seconds",
    [
        ("ior_case_study_trace", 5.7),
        ("lammps_case_study_trace", 2.2),
        ("hacc_case_study_trace", 3.6),
        ("nek5000_profile", 8.7),
    ],
)
def test_analysis_runtime(benchmark, request, fixture_name, paper_seconds):
    source = request.getfixturevalue(fixture_name)
    ftio = Ftio(FtioConfig(sampling_frequency=10.0))

    result = benchmark(ftio.detect, source)

    # The analysis must stay seconds-scale (it is far below that here because
    # the synthetic traces are smaller than the production runs).
    assert result.analysis_time < paper_seconds

    rows = [
        ("paper analysis time [s]", paper_seconds, f"{result.analysis_time:.3f}"),
        ("samples analysed", "-", result.signal.n_samples),
        ("verdict", "-", result.periodicity.value),
    ]
    print_report(f"Section III-C analysis runtime — {fixture_name}", paper_comparison_table(rows))
