"""Experiment E1 — Figure 2 / Section II-C example: FTIO on an IOR run.

Paper setup: IOR with 9216 ranks on Lichtenberg, 8 iterations, 2 segments,
2 MB transfers, 10 MB blocks; FTIO at fs = 10 Hz over a 781 s window found a
period of 111.67 s with a DFT confidence of 60.5 % and a refined confidence of
86.5 %; the abstraction error was 0.03.

Here the same analysis runs on a synthetic IOR-like trace with the same
iteration structure (the rank count only scales the request count, not the
signal shape).  The benchmark measures the offline detection time.
"""

from __future__ import annotations

from benchmarks.conftest import print_report
from repro.analysis.report import paper_comparison_table


def test_fig02_ior_offline_detection(benchmark, ior_case_study_trace, detection_ftio):
    trace = ior_case_study_trace
    result = benchmark(detection_ftio.detect, trace)

    true_period = trace.ground_truth.average_period()
    assert result.is_periodic
    assert abs(result.period - true_period) / true_period < 0.15
    assert result.signal.abstraction_error < 0.2

    rows = [
        ("dominant period [s]", 111.67, result.period),
        ("ground-truth mean period [s]", "-", true_period),
        ("DFT confidence", "60.5%", f"{result.confidence:.1%}"),
        ("refined confidence", "86.5%", f"{result.refined_confidence:.1%}"),
        ("abstraction error", 0.03, result.signal.abstraction_error),
        ("inspected frequencies", 3809, result.spectrum.n_bins - 1),
        ("spectrum max frequency [Hz]", 5.0, result.spectrum.max_frequency),
        ("analysis time [s]", "5.7", f"{result.analysis_time:.3f}"),
    ]
    print_report("Figure 2 — IOR power spectrum and dominant frequency", paper_comparison_table(rows))
