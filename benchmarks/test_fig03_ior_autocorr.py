"""Experiment E2 — Figure 3: autocorrelation refinement on the IOR run.

Paper: the ACF of the IOR signal yields 17 peak gaps, 12 of which are filtered
as outliers; the remaining 5 candidates average to a period of 104.8 s with a
confidence of 99.58 %, and the similarity to the DFT result is 97.6 %, which
refines the overall confidence to 86.5 %.
"""

from __future__ import annotations

from benchmarks.conftest import print_report
from repro.analysis.report import paper_comparison_table
from repro.freq.autocorr import detect_period_autocorrelation, similarity_to_candidates
from repro.trace.sampling import discretize_trace


def test_fig03_ior_autocorrelation(benchmark, ior_case_study_trace, detection_ftio):
    trace = ior_case_study_trace
    signal = discretize_trace(trace, 10.0)

    acf_result = benchmark(detect_period_autocorrelation, signal.samples, signal.sampling_frequency)

    dft_result = detection_ftio.detect(trace)
    true_period = trace.ground_truth.average_period()

    assert acf_result.period is not None
    assert abs(acf_result.period - true_period) / true_period < 0.15
    assert acf_result.confidence > 0.5

    similarity = similarity_to_candidates(dft_result.dominant_frequency, acf_result.candidate_periods)
    rows = [
        ("ACF period [s]", 104.8, acf_result.period),
        ("ACF confidence", "99.58%", f"{acf_result.confidence:.2%}"),
        ("ACF peaks found", 17, int(len(acf_result.peak_lags))),
        ("candidates kept after filtering", 5, int(len(acf_result.candidate_periods))),
        ("similarity to DFT result", "97.6%", f"{similarity:.1%}"),
        ("refined confidence", "86.5%", f"{dft_result.refined_confidence:.1%}"),
    ]
    print_report("Figure 3 — IOR autocorrelation", paper_comparison_table(rows))
