"""Experiment E3 — Figure 4: the substantial-I/O threshold, R_IO and B_IO.

Paper: for the mixed trace of Figure 1 (periodic high-bandwidth checkpoints
interleaved with low-bandwidth log writes), the V(T)/L(T) threshold separates
the substantial I/O from the noise, giving R_IO = 0.68 and B_IO ≈ 11 GB/s.

The same mixed trace is synthesized here: periodic checkpoint bursts from all
ranks plus a single rank continuously writing a small log file.
"""

from __future__ import annotations

from benchmarks.conftest import print_report
from repro.analysis.report import paper_comparison_table
from repro.core.characterization import time_ratio_and_bandwidth
from repro.trace.record import IORequest
from repro.trace.sampling import discretize_trace
from repro.trace.trace import Trace, merge_traces
from repro.workloads.ior import ior_trace
from repro.workloads.noise import noise_trace


def build_mixed_trace() -> Trace:
    """Periodic 16 GB/s checkpoints plus constant 100 MB/s log writes."""
    checkpoints = ior_trace(
        ranks=16,
        iterations=10,
        compute_time=8.0,
        io_phase_duration=14.0,
        block_size=512 * 2**20,
        segments=2,
        seed=7,
    )
    log_requests = []
    t = checkpoints.t_start
    while t < checkpoints.t_end:
        log_requests.append(
            IORequest(rank=999, start=t, end=t + 1.0, nbytes=int(100e6))
        )
        t += 1.0
    return merge_traces([checkpoints, Trace.from_requests(log_requests)])


def test_fig04_substantial_io_threshold(benchmark):
    trace = build_mixed_trace()
    signal = discretize_trace(trace, 1.0, kind=None)

    r_io, b_io, threshold = benchmark(time_ratio_and_bandwidth, signal)

    # The checkpoints occupy roughly 14 of every 22 seconds → R_IO ≈ 0.6-0.7,
    # and the substantial bandwidth sits above the V(T)/L(T) threshold and far
    # above the 100 MB/s log-writer noise that the threshold filters out.
    assert 0.4 < r_io < 0.85
    assert b_io > threshold
    assert b_io > 5 * 100e6

    rows = [
        ("R_IO (time share of substantial I/O)", 0.68, r_io),
        ("B_IO [GB/s]", "~11", b_io / 1e9),
        ("noise threshold V(T)/L(T) [GB/s]", "-", threshold / 1e9),
    ]
    print_report("Figure 4 — substantial-I/O characterization", paper_comparison_table(rows))
