"""Experiment E4 — Figure 6: aliasing when the sampling frequency is too low.

Paper: miniIO (unstruct, 144 ranks) produces extremely short output bursts; at
fs = 100 Hz the discrete signal "does not match the original one at all" and
the abstraction error is far too large to trust any detected period.

The benchmark sweeps fs over the synthetic miniIO trace and shows the
abstraction error collapsing once the sampling rate resolves the bursts.
"""

from __future__ import annotations

from benchmarks.conftest import print_report
from repro.analysis.report import format_table
from repro.core import Ftio, FtioConfig
from repro.trace.sampling import discretize_trace
from repro.workloads.miniio import miniio_trace


def test_fig06_sampling_frequency_sweep(benchmark):
    trace = miniio_trace(ranks=144, bursts=40, burst_interval=0.5, burst_duration=0.004, seed=8)

    def sweep():
        rows = []
        for fs in (50.0, 100.0, 500.0, 2000.0):
            signal = discretize_trace(trace, fs)
            result = Ftio(
                FtioConfig(sampling_frequency=fs, use_autocorrelation=False)
            ).analyze_signal(signal)
            rows.append(
                (
                    fs,
                    signal.abstraction_error,
                    result.period if result.period is not None else float("nan"),
                    result.confidence,
                )
            )
        return rows

    rows = benchmark(sweep)
    by_fs = {fs: (err, period, conf) for fs, err, period, conf in rows}

    # At 100 Hz the bursts fall between samples: the abstraction error is large,
    # exactly the situation Figure 6 warns about.
    assert by_fs[100.0][0] > 0.5
    # With a sufficiently high rate the error collapses and the 0.5 s period appears.
    assert by_fs[2000.0][0] < 0.3
    assert abs(by_fs[2000.0][1] - 0.5) / 0.5 < 0.2

    table = format_table(
        ["fs [Hz]", "abstraction error", "detected period [s]", "confidence"],
        [[fs, err, period, conf] for fs, err, period, conf in rows],
    )
    print_report(
        "Figure 6 — miniIO aliasing (paper: fs=100 Hz is not enough; error too large to trust)",
        table,
    )
