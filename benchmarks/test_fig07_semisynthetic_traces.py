"""Experiment E5 — Figure 7: examples of semi-synthetic application traces.

Paper: Figure 7 shows three example traces built with the Section III-A
methodology: (a) tcpu = tio/4, (b) tcpu ~ N(11, 22), and (c) a mean
per-process delay of 22 s inside the I/O phases.  The benchmark regenerates
the three configurations and reports their ground-truth shape.
"""

from __future__ import annotations

from benchmarks.conftest import print_report
from repro.analysis.report import format_table
from repro.workloads.noise import NoiseLevel
from repro.workloads.synthetic import SemiSyntheticGenerator, SyntheticAppConfig, mean_period


def test_fig07_example_traces(benchmark, limitation_study):
    generator = SemiSyntheticGenerator(library=limitation_study.library)
    io_duration = limitation_study.library.mean_duration()
    configs = {
        "(a) tcpu = tio/4": SyntheticAppConfig(iterations=20, compute_mean=io_duration / 4),
        "(b) tcpu ~ N(11, 22)": SyntheticAppConfig(iterations=20, compute_mean=11.0, compute_std=22.0),
        "(c) mean delta_k = 22 s": SyntheticAppConfig(iterations=20, compute_mean=11.0, desync_mean=22.0),
        "(a) + high noise": SyntheticAppConfig(
            iterations=20, compute_mean=io_duration / 4, noise=NoiseLevel.HIGH
        ),
    }

    def generate_all():
        return {label: generator.generate(config, seed=i) for i, (label, config) in enumerate(configs.items())}

    traces = benchmark.pedantic(generate_all, rounds=1, iterations=1)

    rows = []
    for label, trace in traces.items():
        phases = trace.ground_truth.phases
        rows.append(
            [
                label,
                len(phases),
                mean_period(trace),
                sum(p.duration for p in phases) / len(phases),
                trace.volume / 2**30,
                len(trace),
            ]
        )
        assert len(phases) == 20

    # Desynchronization stretches the I/O phases well beyond the base ones.
    assert rows[2][3] > rows[0][3]

    table = format_table(
        ["configuration", "phases", "mean period [s]", "mean phase length [s]", "volume [GiB]", "requests"],
        rows,
    )
    print_report("Figure 7 — semi-synthetic example traces", table)
