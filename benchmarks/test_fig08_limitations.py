"""Experiments E6-E8 — Figure 8: detection error of FTIO on semi-synthetic traces.

Three panels, all using the Section III-A trace generator at fs = 1 Hz:

* **8a** — error vs. the time between I/O phases (relative to their length),
  with and without background noise.  Paper: all errors below 1 %.
* **8b** — error vs. the mean per-process delay ϕ added to the I/O phases.
  Paper: mean error up to 11 %, median up to 11 %, third quartile up to 17 %,
  extreme cases up to 100 %.
* **8c** — error vs. the variability σ/µ of the compute time.  Paper: median
  below 5.5 % for σ/µ ≤ 0.5 and below 33 % everywhere.
"""

from __future__ import annotations

from benchmarks.conftest import print_report
from repro.analysis.report import format_sweep
from repro.workloads.noise import NoiseLevel


def test_fig08a_phase_ratio_and_noise(benchmark, limitation_study):
    """Error vs. tcpu/tio ratio, clean and with low noise (Figure 8a)."""
    points = limitation_study.phase_ratio_points(ratios=(0.25, 1.0, 4.0))
    points += limitation_study.phase_ratio_points(ratios=(0.25, 1.0), noise=NoiseLevel.LOW)

    results = benchmark.pedantic(limitation_study.run, args=(points,), kwargs={"seed": 1}, rounds=1, iterations=1)

    for result in results:
        stats = result.error_stats()
        # Paper: all errors below 1 %; allow some slack for the synthetic phases.
        assert stats.median < 0.06, f"{result.point.label}: median error {stats.median:.3f}"

    print_report(
        "Figure 8a — detection error vs. time between I/O phases (paper: errors < 1%)",
        format_sweep(results),
    )


def test_fig08b_desynchronization(benchmark, limitation_study):
    """Error vs. the mean per-process delay ϕ (Figure 8b)."""
    points = limitation_study.desync_points(phis=(0.0, 5.5, 11.0, 22.0))

    results = benchmark.pedantic(limitation_study.run, args=(points,), kwargs={"seed": 2}, rounds=1, iterations=1)

    by_phi = {r.point.value: r.error_stats() for r in results}
    # Synchronized phases are detected almost perfectly.
    assert by_phi[0.0].median < 0.06
    # Desynchronization degrades the detection but the median error stays bounded
    # (the paper reports medians up to ~11 % and occasional 100 % outliers).
    assert by_phi[22.0].median < 0.6
    assert by_phi[22.0].median >= by_phi[0.0].median

    print_report(
        "Figure 8b — detection error vs. per-process delay (paper: mean/median up to 11%)",
        format_sweep(results),
    )


def test_fig08c_compute_variability(benchmark, variability_sweep_results):
    """Error vs. the variability sigma/mu of the compute time (Figure 8c)."""
    results = benchmark.pedantic(lambda: variability_sweep_results, rounds=1, iterations=1)

    by_ratio = {r.point.value: r.error_stats() for r in results}
    assert by_ratio[0.0].median < 0.06
    assert by_ratio[0.5].median < 0.35
    # Larger variability means a less periodic signal and larger errors.
    assert by_ratio[2.0].median >= by_ratio[0.0].median

    print_report(
        "Figure 8c — detection error vs. compute-time variability "
        "(paper: median < 5.5% for sigma/mu <= 0.5, < 33% overall)",
        format_sweep(results),
    )
