"""Experiment E9 — Figure 9: sigma_vol and sigma_time vs. compute-time variability.

Paper: both sigma_vol and sigma_time increase as the I/O variability increases
(the signal becomes less periodic); the median periodicity score drops from
98 % at sigma = 0 to 67 % at sigma/mu = 0.55 and 57 % at sigma/mu = 2.
"""

from __future__ import annotations

from benchmarks.conftest import print_report
from repro.analysis.report import format_sweep


def test_fig09_sigma_vol_and_sigma_time(benchmark, variability_sweep_results):
    results = benchmark.pedantic(lambda: variability_sweep_results, rounds=1, iterations=1)

    sigma_vol = {r.point.value: r.metric_stats("sigma_vol") for r in results}
    score = {r.point.value: r.metric_stats("periodicity_score") for r in results}

    # Both characterization metrics grow with the variability.
    assert sigma_vol[2.0].median > sigma_vol[0.0].median
    # The periodicity score decreases accordingly (paper: 98 % → 57 %).
    assert score[0.0].median > 0.8
    assert score[2.0].median < score[0.0].median

    body = (
        "sigma_vol:\n"
        + format_sweep(results, metric="sigma_vol")
        + "\n\nsigma_time:\n"
        + format_sweep(results, metric="sigma_time")
        + "\n\nperiodicity score (paper: 98% at sigma=0, 67% at 0.55, 57% at 2):\n"
        + format_sweep(results, metric="periodicity_score")
    )
    print_report("Figure 9 — characterization metrics vs. variability", body)
