"""Experiment E10 — Figure 10: FTIO on LAMMPS (real application, low bandwidth).

Paper: LAMMPS 2-d LJ flow with 3072 ranks, 300 steps dumping every 20 steps;
FTIO (fs = 10 Hz, offline) found a single dominant frequency at 0.039 Hz
(25.73 s) with 55.0 % confidence, refined to 84.9 % by the autocorrelation
(single ACF peak at 25.6 s); the real mean period was 27.38 s; the analysis
took 2.2 s (+0.26 s for the autocorrelation).
"""

from __future__ import annotations

from benchmarks.conftest import print_report
from repro.analysis.report import paper_comparison_table


def test_fig10_lammps_detection(benchmark, lammps_case_study_trace, detection_ftio):
    trace = lammps_case_study_trace
    result = benchmark(detection_ftio.detect, trace)

    true_period = trace.ground_truth.average_period()
    assert result.is_periodic
    assert abs(result.period - true_period) / true_period < 0.2
    # The dump phases do not align perfectly, so the DFT confidence is moderate.
    assert result.confidence < 0.9

    rows = [
        ("dominant period [s]", 25.73, result.period),
        ("real mean period [s]", 27.38, true_period),
        ("relative error", "6%", f"{abs(result.period - true_period) / true_period:.1%}"),
        ("DFT confidence", "55.0%", f"{result.confidence:.1%}"),
        ("refined confidence", "84.9%", f"{result.refined_confidence:.1%}"),
        ("analysis time [s]", 2.2, f"{result.analysis_time:.3f}"),
    ]
    print_report("Figure 10 — LAMMPS offline detection", paper_comparison_table(rows))
