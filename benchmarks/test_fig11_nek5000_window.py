"""Experiment E11 — Figure 11: Nek5000 Darshan profile and time-window sensitivity.

Paper: a Darshan heatmap of Nek5000 (2048 ranks, Mogon II) is analysed with
fs set to the bin width (≈ 0.006 Hz).  Over the full 86 000 s window the
irregular 30 GB phases (at ≈ 57 000 s and ≈ 85 000 s) make FTIO declare the
trace aperiodic; restricting the window to Δt = 56 000 s yields a period of
4642.1 s with a confidence of 85.4 %.
"""

from __future__ import annotations

from benchmarks.conftest import print_report
from repro.analysis.report import paper_comparison_table
from repro.core import Ftio
from repro.workloads.nek5000 import reduced_window


def test_fig11_window_sensitivity(benchmark, nek5000_profile):
    ftio = Ftio()

    def analyse_both():
        full = ftio.detect(nek5000_profile)
        reduced = ftio.detect(nek5000_profile, window=reduced_window())
        return full, reduced

    full, reduced = benchmark(analyse_both)

    # Reduced window: a confident period close to the paper's 4642 s.
    assert reduced.is_periodic
    assert abs(reduced.period - 4642.0) / 4642.0 < 0.1
    # Full window: aperiodic, or at best clearly less confident than the reduced window.
    if full.is_periodic:
        assert full.best_confidence < reduced.best_confidence

    rows = [
        ("full-window verdict", "not periodic", full.periodicity.value),
        ("reduced-window period [s]", 4642.1, reduced.period),
        ("reduced-window confidence", "85.4%", f"{reduced.best_confidence:.1%}"),
        ("sampling frequency [Hz]", 0.006, reduced.signal.sampling_frequency),
        ("full-window samples", 86_000 / 160, full.signal.n_samples),
        ("analysis time (both windows) [s]", "8.7", f"{full.analysis_time + reduced.analysis_time:.3f}"),
    ]
    print_report("Figure 11 — Nek5000 Darshan heatmap, window sensitivity", paper_comparison_table(rows))
