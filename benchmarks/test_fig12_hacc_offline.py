"""Experiment E12 — Figures 12-14: HACC-IO offline detection.

Paper: HACC-IO (3072 ranks) looped to produce 10 I/O phases; the first phase
is significantly delayed (4.1 s → 15.3 s), which makes the signal less
periodic.  The offline analysis at fs = 10 Hz finds two dominant-frequency
candidates, 0.1206 Hz (51 %) and 0.1326 Hz (48.9 %); the dominant one
corresponds to a period of 8.29 s while the true average period is 8.7 s
(7.7 s without the first phase).
"""

from __future__ import annotations

from benchmarks.conftest import print_report
from repro.analysis.report import paper_comparison_table
from repro.core import FtioConfig, Ftio, Periodicity


def test_fig12_hacc_offline_detection(benchmark, hacc_case_study_trace):
    trace = hacc_case_study_trace
    ftio = Ftio(FtioConfig(sampling_frequency=10.0))

    result = benchmark(ftio.detect, trace)

    true_period = trace.ground_truth.average_period()
    assert result.is_periodic
    assert abs(result.period - true_period) / true_period < 0.2

    candidates = sorted(result.active_candidates(), key=lambda c: -c.power)
    top = candidates[0]
    second = candidates[1] if len(candidates) > 1 else None

    # The delayed first phase keeps the verdict short of a clean single-candidate
    # detection in the paper; accept either verdict but require imperfect confidence.
    assert result.periodicity in (Periodicity.PERIODIC, Periodicity.PERIODIC_WITH_VARIATION)
    assert result.confidence < 0.95

    rows = [
        ("dominant frequency [Hz]", 0.1206, top.frequency),
        ("dominant period [s]", 8.29, result.period),
        ("true mean period [s]", 8.7, true_period),
        ("dominant confidence", "51%", f"{top.confidence:.1%}"),
        ("second candidate [Hz]", 0.1326, second.frequency if second else "none"),
        ("second confidence", "48.9%", f"{second.confidence:.1%}" if second else "-"),
        ("number of active candidates", 2, len(candidates)),
        ("analysis time [s]", 3.6, f"{result.analysis_time:.3f}"),
    ]
    print_report("Figures 12-14 — HACC-IO offline spectrum", paper_comparison_table(rows))


def test_fig13_skip_first_phase_option(benchmark, hacc_case_study_trace):
    """The paper notes the first phase is often prolonged; FTIO can skip it."""
    trace = hacc_case_study_trace
    config = FtioConfig(sampling_frequency=10.0, skip_first_phase=True)

    result = benchmark(Ftio(config).detect, trace)

    # Without the delayed first phase the remaining phases repeat every ~8 s.
    assert result.is_periodic
    assert abs(result.period - 8.0) / 8.0 < 0.25

    rows = [
        ("period without first phase [s]", 7.7, result.period),
        ("confidence", "-", f"{result.best_confidence:.1%}"),
    ]
    print_report("HACC-IO with skip_first_phase=True", paper_comparison_table(rows))
