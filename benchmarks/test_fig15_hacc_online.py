"""Experiment E13 — Figure 15: online prediction during the HACC-IO execution.

Paper: predictions run at the end of every I/O phase; the predicted period
converges to ≈ 8 s (ground truth: phases start on average every 8.7 s) and
after three consecutive detections the analysis window is shrunk to
3 × (last period), e.g. at 47.4 s only data after 23.1 s is kept.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_report
from repro.analysis.report import format_table, paper_comparison_table
from repro.core import FtioConfig
from repro.core.online import replay_online
from repro.workloads.hacc import hacc_flush_times


def test_fig15_online_prediction(benchmark, hacc_case_study_trace):
    trace = hacc_case_study_trace
    flush_times = hacc_flush_times(trace)
    config = FtioConfig(
        sampling_frequency=10.0, use_autocorrelation=False, compute_characterization=False
    )

    steps = benchmark.pedantic(
        replay_online, args=(trace, flush_times), kwargs={"config": config}, rounds=1, iterations=1
    )

    assert len(steps) == len(flush_times)
    periods = [s.period for s in steps if s.period is not None]
    assert len(periods) >= 5

    true_period = trace.ground_truth.average_period()
    final_prediction = periods[-1]
    assert abs(final_prediction - true_period) / true_period < 0.2

    # The adaptive window kicks in after three consecutive detections.
    windows = [s.window_length for s in steps]
    assert windows[-1] < windows[-2] * 1.5 or windows[-1] < max(windows)

    rows = [
        [s.index, f"{s.time:.1f}", f"{s.window[0]:.1f}", f"{s.window_length:.1f}",
         f"{s.period:.2f}" if s.period else "-", f"{s.confidence:.0%}"]
        for s in steps
    ]
    table = format_table(
        ["prediction", "time [s]", "window start [s]", "window length [s]", "period [s]", "confidence"],
        rows,
    )
    summary = paper_comparison_table(
        [
            ("average predicted period [s]", 8.66, float(np.mean(periods))),
            ("final prediction [s]", "8.0", final_prediction),
            ("ground-truth mean period [s]", 8.7, true_period),
            ("number of predictions", 10, len(steps)),
        ]
    )
    print_report("Figure 15 — HACC-IO online prediction", summary + "\n\n" + table)
