"""Experiment E14 — Figure 16: overhead of the tracing library across rank counts.

Paper: IOR traced with TMIO in online mode on 96 … 10 752 ranks.  The
aggregated overhead stays below 0.6 % of the aggregated application time,
while the rank-0 overhead (gathering + writing the trace file) grows with the
rank count but stays below 6.9 %.  The offline mode is cheaper
(0.13 % → 0.004 % aggregated, 1.03 % → 1.58 % for rank 0).

Real MPI runs are unavailable, so the calibrated cost model of
:mod:`repro.tracer.overhead` regenerates the scaling curves; the per-request
capture cost of the simulated tracer is micro-benchmarked to justify the
model's calibration constant.
"""

from __future__ import annotations

from benchmarks.conftest import print_report
from repro.analysis.report import format_table, paper_comparison_table
from repro.tracer.overhead import TracerOverheadModel, default_rank_sweep, measure_capture_cost
from repro.tracer.tmio import TracerMode


def test_fig16_overhead_scaling(benchmark):
    model = TracerOverheadModel()
    ranks = default_rank_sweep()

    def sweep():
        online = model.sweep_ranks(
            ranks, requests_per_rank=40, application_time=500.0, mode=TracerMode.ONLINE, flushes=8
        )
        offline = model.sweep_ranks(
            ranks, requests_per_rank=40, application_time=500.0, mode=TracerMode.OFFLINE
        )
        return online, offline

    online, offline = benchmark(sweep)

    max_aggregated = max(e.aggregated_overhead_ratio for e in online)
    max_rank0 = max(e.rank0_overhead_ratio for e in online)
    assert max_aggregated < 0.006
    assert max_rank0 < 0.069
    # Rank-0 overhead grows with the rank count (the gather dominates).
    rank0_ratios = [e.rank0_overhead_ratio for e in online]
    assert rank0_ratios[-1] > rank0_ratios[0]

    capture_cost = measure_capture_cost(n_requests=5000)

    rows = [
        [e.ranks, f"{e.aggregated_overhead_ratio:.4%}", f"{e.rank0_overhead_ratio:.3%}",
         f"{off.aggregated_overhead_ratio:.4%}", f"{off.rank0_overhead_ratio:.3%}"]
        for e, off in zip(online, offline)
    ]
    table = format_table(
        ["ranks", "online aggregated", "online rank-0", "offline aggregated", "offline rank-0"],
        rows,
    )
    summary = paper_comparison_table(
        [
            ("max aggregated overhead (online)", "0.6%", f"{max_aggregated:.2%}"),
            ("max rank-0 overhead (online)", "6.9%", f"{max_rank0:.2%}"),
            ("measured capture cost per request [us]", "~1-2", f"{capture_cost * 1e6:.2f}"),
        ]
    )
    print_report("Figure 16 — tracing-library overhead vs. rank count", summary + "\n\n" + table)
