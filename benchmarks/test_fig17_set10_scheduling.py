"""Experiment E15 — Figure 17: FTIO feeding the Set-10 I/O scheduler.

Paper: a workload of 1 high-frequency (19.2 s period) and 15 low-frequency
(384 s period) IOR-derived applications, I/O = 6.25 % of each period, ten
executions per configuration.  Compared to the unmodified file system, the
FTIO-fed Set-10 decreases the mean stretch by 20 % and the I/O slowdown by
56 %, and increases utilization by 26 %; it is within a few percent of the
clairvoyant variant, while injecting ±50 % errors into the periods makes the
results worse and more variable.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_report
from repro.analysis.report import format_table, paper_comparison_table
from repro.scheduling.experiment import SchedulingExperiment, summarize


def test_fig17_set10_with_ftio(benchmark):
    experiment = SchedulingExperiment()

    runs = benchmark.pedantic(
        experiment.run, kwargs={"repetitions": 10, "seed": 17}, rounds=1, iterations=1
    )
    summary = summarize(runs)

    original = summary["original"]
    ftio = summary["set10-ftio"]
    clairvoyant = summary["set10-clairvoyant"]
    error = summary["set10-error"]

    # Figure 17 orderings: Set-10 + FTIO clearly beats the unmodified system...
    assert ftio["io_slowdown"] < 0.6 * original["io_slowdown"]
    assert ftio["stretch"] < original["stretch"]
    assert ftio["utilization"] > original["utilization"]
    # ... and is close to (never better than) the clairvoyant version.
    assert ftio["io_slowdown"] >= clairvoyant["io_slowdown"] * 0.999
    assert ftio["io_slowdown"] < clairvoyant["io_slowdown"] * 1.25
    # Error injection never helps.
    assert error["io_slowdown"] >= ftio["io_slowdown"] * 0.999

    slowdown_reduction = 1.0 - ftio["io_slowdown"] / original["io_slowdown"]
    stretch_reduction = 1.0 - ftio["stretch"] / original["stretch"]
    utilization_gain = ftio["utilization"] / original["utilization"] - 1.0

    rows = [
        [cfg, summary[cfg]["stretch"], summary[cfg]["io_slowdown"], summary[cfg]["utilization"]]
        for cfg in ("set10-clairvoyant", "set10-ftio", "set10-error", "original")
    ]
    table = format_table(["configuration", "stretch", "I/O slowdown", "utilization"], rows)
    comparison = paper_comparison_table(
        [
            ("I/O slowdown reduction vs original", "56%", f"{slowdown_reduction:.0%}"),
            ("stretch reduction vs original", "20%", f"{stretch_reduction:.0%}"),
            ("utilization increase vs original", "26%", f"{utilization_gain:.0%}"),
            ("FTIO vs clairvoyant (stretch)", "+2.2%", f"{ftio['stretch'] / clairvoyant['stretch'] - 1:+.1%}"),
            ("FTIO vs clairvoyant (I/O slowdown)", "+19%", f"{ftio['io_slowdown'] / clairvoyant['io_slowdown'] - 1:+.1%}"),
            ("error-injected vs FTIO (I/O slowdown)", "+27%", f"{error['io_slowdown'] / ftio['io_slowdown'] - 1:+.1%}"),
        ]
    )
    print_report("Figure 17 — Set-10 scheduling with FTIO", table + "\n\n" + comparison)
