"""Perf-regression harness (ROADMAP "fast as the hardware allows").

Times the hot paths of the detect→predict→sweep stack across signal sizes,
asserts the optimized kernels actually beat the pre-optimization references,
and writes ``BENCH_perf.json`` at the repository root so the speedups are
recorded alongside the figure benchmarks.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_regression.py -s -q

Guarded regressions:

* FFT (Wiener–Khinchin) ACF at N = 100k must be >= 10x faster than the direct
  ``np.correlate`` method;
* vectorized spectral reconstruction with >= 64 bins must be >= 5x faster than
  the per-bin Python loop;
* offline ``Ftio.detect()`` must stay within an absolute wall-clock budget at
  every signal size (it is dominated by the O(N log N) FFT, so a blow-up here
  means a regression to a slower path);
* the streaming prediction service must sustain a jobs/sec floor and keep its
  p99 detection latency under an absolute ceiling at 100+ concurrent jobs;
* the batched cross-session kernel stage must stay >= 5x faster than the
  per-session sequential kernels at 256 concurrent due jobs;
* the zero-copy ingest path must move whole-chunk frames with exactly zero
  copies and keep every hop's ``bytes_copied_per_frame`` under one frame;
* the unified metrics layer (counters, latency histograms) must cost < 5 %
  of service throughput relative to ``ServiceConfig(metrics=False)``;
* a frame double-routed during a live handover must be ingested with a
  p50 pause <= 10 ms (vs the parked baseline, which holds frames until the
  reshard ends), and the scripted-clock autoscaler ramp must reproduce its
  pinned grow-then-shrink shard-count trajectory exactly.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from benchmarks.conftest import print_report
from repro.analysis.benchmark import run_perf_suite, write_report
from repro.trace.framing import _HEADER

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Regression floors from the issue's acceptance criteria.
MIN_ACF_SPEEDUP_AT_100K = 10.0
MIN_RECONSTRUCT_SPEEDUP = 5.0
#: Streaming-service floors: the measured numbers are ~500 jobs/s and a p99
#: detection latency of ~20 ms at 100 concurrent jobs; the floors keep two
#: orders of magnitude of headroom for noisy shared runners while still
#: catching a service hot path falling off a cliff.
MIN_SERVICE_JOBS_PER_SECOND = 10.0
MAX_SERVICE_P99_LATENCY_SECONDS = 1.0
#: Sharded-mode floor: each shard count must still clear this (the measured
#: numbers are hundreds of jobs/s; subprocess routing adds overhead that the
#: cheap synthetic detections do not amortize, so the floor stays loose).
MIN_SHARDED_JOBS_PER_SECOND = 5.0
SHARD_COUNTS = ("1", "2", "4")
#: Gateway floor: every flush crosses loopback TCP and the msgpack control
#: envelope; the measured numbers are tens-to-hundreds of jobs/s, the floor
#: keeps an order of magnitude of headroom for noisy shared runners.
MIN_GATEWAY_JOBS_PER_SECOND = 2.0
MAX_GATEWAY_RTT_P99_SECONDS = 1.0
#: Live-resharding floors: a 64-job migration moves tens of sessions per hop
#: in well under a second on the reference container (hundreds of sessions/s
#: moved); the floors keep two orders of magnitude of headroom while still
#: catching a migration path degrading to per-session round trips or a pause
#: that would stall live ingestion.
MIN_RESHARD_MOVED_PER_SECOND = 2.0
MAX_RESHARD_PAUSE_P99_SECONDS = 30.0
#: Autoscale floors (the issue's acceptance criteria): a frame submitted for
#: a moving job during an autoscaler-style handover is double-routed — the
#: old owner ingests it immediately, so its pause is one route call
#: (measured p50 ~0.2 ms).  The parked baseline holds the same frame until
#: the handover replays it, so its pause runs to the end of the reshard
#: (~16 ms at this 32-job scale, ~90 ms at the 64-job reshard scale).  The
#: p50 ceiling pins the issue's "<= 10 ms" claim on the stable statistic
#: (with ~17 samples the p99 is the max and one scheduler hiccup away from
#: noise); the p99 ceiling and the p50-ratio floor keep loose headroom for
#: noisy shared runners while still catching double-routing degrading back
#: into a parked migration.
MAX_AUTOSCALE_DOUBLE_ROUTE_PAUSE_P50_SECONDS = 0.010
MAX_AUTOSCALE_DOUBLE_ROUTE_PAUSE_P99_SECONDS = 1.0
MIN_AUTOSCALE_PAUSE_IMPROVEMENT_P50 = 2.0
#: The scripted-clock ramp is fully deterministic (hysteresis bands, streaks
#: and cooldown over an exact session-count trajectory), so the shard counts
#: are pinned verbatim: climb 1 -> 2 -> 3, hold at the ceiling, descend
#: 3 -> 2 -> 1 once the load drains.
AUTOSCALE_RAMP_SHARD_COUNTS = [1, 2, 2, 3, 3, 3, 2, 2, 1, 1]
#: Batched-kernel floor (the issue's acceptance criterion): one vectorized
#: kernel pass over 256 due sessions must beat 256 sequential kernel passes
#: by >= 5x.  The measured ratio is ~6.5-8x; both sides are timed in the
#: same run on the same data, so runner speed cancels out of the ratio.
MIN_BATCH_KERNEL_SPEEDUP = 5.0
MIN_BATCH_JOBS = 256
#: Observability floor (the issue's acceptance criterion): the metrics layer
#: is snapshot-time views plus a handful of histogram observes per
#: evaluation, so its cost should be noise; the floor allows 5 %.  Interleaved
#: best-of-N keeps runner drift out of the ratio, but on a noisy shared
#: runner the "overhead" can still measure slightly negative — that is fine.
#: The measured runs are ~100 ms each, so (like the CI trend line's 1 ms
#: rule) a small absolute slack keeps one scheduler hiccup from tripping
#: the relative ceiling.
MAX_OBS_OVERHEAD_FRACTION = 0.05
OBS_OVERHEAD_ABS_SLACK_SECONDS = 0.010
#: Federation floors: the same gateway workload over dial-home TCP workers
#: must stay within the same order of magnitude as local forks (measured
#: ratio ~0.9-1.1x on the reference container — loopback framed TCP vs the
#: shm ring is a wash at this scale), and a read-plane heartbeat round trip
#: over loopback is sub-millisecond (measured p50 ~0.2-0.5 ms); the
#: ceilings keep wide headroom for noisy shared runners while catching the
#: remote data plane degrading to per-frame round trips or the heartbeat
#: path queueing behind the control plane.
MIN_FEDERATION_JOBS_PER_SECOND = 2.0
MIN_FEDERATION_REMOTE_OVER_LOCAL = 0.2
MAX_FEDERATION_HEARTBEAT_P99_SECONDS = 1.0
#: Generous absolute budget for one offline detection (seconds); the measured
#: time at 100k samples is ~10 ms, so a 100x margin still catches an O(N^2)
#: regression (which lands at seconds).
DETECT_BUDGET_SECONDS = {1_000: 0.5, 10_000: 0.5, 100_000: 2.0}


@pytest.fixture(scope="module")
def perf_report():
    return run_perf_suite(sizes=(1_000, 10_000, 100_000), repeats=3, reconstruct_bins=64)


def _format_table(report: dict) -> str:
    lines = [
        f"{'N':>8} {'ACF fft':>10} {'ACF direct':>11} {'speedup':>8} "
        f"{'rec vec':>10} {'rec loop':>10} {'speedup':>8} {'detect':>10}"
    ]
    results = report["results"]
    for n in report["signal_sizes"]:
        acf = results["autocorrelation"][str(n)]
        rec = results["reconstruct"][str(n)]
        det = results["detect_offline"][str(n)]
        lines.append(
            f"{n:>8} {acf['fft_seconds']:>10.2e} {acf['direct_seconds']:>11.2e} "
            f"{acf['speedup']:>7.1f}x {rec['vectorized_seconds']:>10.2e} "
            f"{rec['loop_seconds']:>10.2e} {rec['speedup']:>7.1f}x "
            f"{det['seconds']:>10.2e}"
        )
    replay = results["online_replay"]
    sweep = results["sweep_point"]
    lines.append(
        f"online replay: {replay['n_steps']} steps over {replay['n_requests']} requests "
        f"in {replay['seconds']:.3f} s; sweep point ({sweep['traces']} traces) "
        f"in {sweep['seconds']:.3f} s"
    )
    service = results["service"]
    lines.append(
        f"service: {service['n_jobs']} jobs x {service['n_flushes'] // service['n_jobs']} "
        f"flushes -> {service['n_detections']} detections in "
        f"{service['elapsed_seconds']:.3f} s ({service['jobs_per_second']:.0f} jobs/s, "
        f"p99 detection latency {service['p99_detection_latency_seconds'] * 1e3:.1f} ms)"
    )
    sharded = service["sharded"]
    scaling = ", ".join(
        f"shards={count}: {sharded[count]['jobs_per_second']:.0f} jobs/s"
        for count in sorted(sharded, key=int)
    )
    lines.append(
        f"sharded ({sharded['1']['n_jobs']} jobs, {sharded['1']['cpu_count']} cpu): {scaling}"
    )
    gateway = service["gateway"]
    lines.append(
        f"gateway: {gateway['n_jobs']} jobs over TCP at "
        f"{gateway['jobs_per_second']:.0f} jobs/s, control round trip p50 "
        f"{gateway['round_trip_p50_seconds'] * 1e3:.2f} ms / p99 "
        f"{gateway['round_trip_p99_seconds'] * 1e3:.2f} ms"
    )
    reshard = service["reshard"]
    path = " -> ".join(str(count) for count in reshard["shard_path"])
    lines.append(
        f"reshard: {path} over {reshard['n_jobs']} live jobs moved "
        f"{reshard['sessions_moved']} sessions at "
        f"{reshard['sessions_moved_per_second']:.0f}/s, pause p50 "
        f"{reshard['pause_p50_seconds'] * 1e3:.1f} ms / p99 "
        f"{reshard['pause_p99_seconds'] * 1e3:.1f} ms"
    )
    autoscale = service["autoscale"]
    ramp_path = " -> ".join(str(count) for count in autoscale["ramp"]["shard_counts"])
    lines.append(
        f"autoscale: double-routed pause p50 "
        f"{autoscale['double_route']['pause_p50_seconds'] * 1e3:.2f} ms / p99 "
        f"{autoscale['double_route']['pause_p99_seconds'] * 1e3:.2f} ms vs parked "
        f"{autoscale['parked_baseline']['pause_p50_seconds'] * 1e3:.1f} ms / "
        f"{autoscale['parked_baseline']['pause_p99_seconds'] * 1e3:.1f} ms "
        f"({autoscale['moving_jobs']} moving jobs); ramp {ramp_path}"
    )
    batch = service["batch_detect"]
    lines.append(
        f"batch detect: {batch['n_jobs']} due jobs x {batch['window_samples']} samples, "
        f"kernels {batch['kernel_sequential_seconds'] * 1e3:.1f} ms seq -> "
        f"{batch['kernel_batched_seconds'] * 1e3:.1f} ms batched "
        f"({batch['kernel_speedup']:.1f}x); full pass "
        f"{batch['detect_sequential_seconds'] * 1e3:.1f} -> "
        f"{batch['detect_batched_seconds'] * 1e3:.1f} ms "
        f"({batch['detect_speedup']:.1f}x)"
    )
    copies = service["ingest_copies"]
    lines.append(
        f"ingest copies/frame ({copies['n_frames']} frames, "
        f"~{copies['frame_bytes_mean']:.0f} B each): whole-chunk "
        f"{copies['whole_chunk_bytes_copied_per_frame']:.1f} B, "
        f"{copies['chunk_bytes']}-B dribble "
        f"{copies['chunked_bytes_copied_per_frame']:.1f} B, shm ring "
        f"{copies['ring_bytes_copied_per_frame']:.1f} B at "
        f"{copies['ring_mb_per_second']:.0f} MB/s"
    )
    overhead = results["obs"]["overhead"]
    lines.append(
        f"obs overhead ({overhead['n_jobs']} jobs x "
        f"{overhead['n_flushes'] // overhead['n_jobs']} flushes): metrics on "
        f"{overhead['metrics_on_seconds'] * 1e3:.0f} ms vs off "
        f"{overhead['metrics_off_seconds'] * 1e3:.0f} ms "
        f"({overhead['overhead_fraction'] * 100:+.1f}%)"
    )
    return "\n".join(lines)


class TestPerfRegression:
    def test_acf_fft_speedup(self, perf_report):
        acf = perf_report["results"]["autocorrelation"]
        assert acf["100000"]["speedup"] >= MIN_ACF_SPEEDUP_AT_100K, (
            f"FFT ACF speedup at 100k samples dropped to {acf['100000']['speedup']:.1f}x"
        )

    def test_reconstruct_speedup(self, perf_report):
        rec = perf_report["results"]["reconstruct"]
        for n, entry in rec.items():
            assert entry["n_bins"] >= 64
            assert entry["speedup"] >= MIN_RECONSTRUCT_SPEEDUP, (
                f"vectorized reconstruct speedup at N={n} dropped to {entry['speedup']:.1f}x"
            )

    def test_offline_detect_within_budget(self, perf_report):
        detect = perf_report["results"]["detect_offline"]
        for n, budget in DETECT_BUDGET_SECONDS.items():
            seconds = detect[str(n)]["seconds"]
            assert seconds <= budget, (
                f"offline detect at N={n} took {seconds:.3f} s (budget {budget} s)"
            )

    def test_online_replay_and_sweep_recorded(self, perf_report):
        replay = perf_report["results"]["online_replay"]
        assert replay["n_steps"] > 0 and replay["seconds"] > 0
        sweep = perf_report["results"]["sweep_point"]
        assert sweep["traces"] > 0 and sweep["seconds"] > 0

    def test_service_throughput_floor(self, perf_report):
        service = perf_report["results"]["service"]
        assert service["n_jobs"] >= 100, "the service benchmark must run 100+ concurrent jobs"
        assert service["n_detections"] > 0
        assert service["jobs_per_second"] >= MIN_SERVICE_JOBS_PER_SECOND, (
            f"service throughput dropped to {service['jobs_per_second']:.1f} jobs/s"
        )
        assert service["p99_detection_latency_seconds"] <= MAX_SERVICE_P99_LATENCY_SECONDS, (
            f"service p99 detection latency rose to "
            f"{service['p99_detection_latency_seconds']:.3f} s"
        )

    def test_sharded_scaling_floor(self, perf_report):
        sharded = perf_report["results"]["service"]["sharded"]
        assert set(sharded) == set(SHARD_COUNTS)
        for count in SHARD_COUNTS:
            entry = sharded[count]
            assert entry["shards"] == int(count)
            assert entry["n_detections"] > 0
            assert entry["jobs_per_second"] >= MIN_SHARDED_JOBS_PER_SECOND, (
                f"sharded service throughput at shards={count} dropped to "
                f"{entry['jobs_per_second']:.1f} jobs/s"
            )

    def test_gateway_throughput_floor(self, perf_report):
        gateway = perf_report["results"]["service"]["gateway"]
        assert gateway["n_detections"] > 0
        assert gateway["jobs_per_second"] >= MIN_GATEWAY_JOBS_PER_SECOND, (
            f"gateway throughput dropped to {gateway['jobs_per_second']:.1f} jobs/s"
        )
        assert gateway["round_trip_p99_seconds"] <= MAX_GATEWAY_RTT_P99_SECONDS, (
            f"gateway control round-trip p99 rose to "
            f"{gateway['round_trip_p99_seconds']:.3f} s"
        )

    def test_reshard_migration_floor(self, perf_report):
        reshard = perf_report["results"]["service"]["reshard"]
        assert reshard["reshards"] == len(reshard["shard_path"]) - 1 >= 3
        assert reshard["sessions_moved"] > 0
        assert reshard["sessions_moved_per_second"] >= MIN_RESHARD_MOVED_PER_SECOND, (
            f"live-reshard migration rate dropped to "
            f"{reshard['sessions_moved_per_second']:.1f} sessions/s"
        )
        assert reshard["pause_p99_seconds"] <= MAX_RESHARD_PAUSE_P99_SECONDS, (
            f"live-reshard p99 ingest pause rose to {reshard['pause_p99_seconds']:.3f} s"
        )

    def test_autoscale_pause_and_ramp_floor(self, perf_report):
        autoscale = perf_report["results"]["service"]["autoscale"]
        double = autoscale["double_route"]
        parked = autoscale["parked_baseline"]
        assert double["frames"] > 0
        assert double["double_routed_frames"] == double["frames"], (
            "every migration-window frame must take the double-routed path"
        )
        assert parked["double_routed_frames"] == 0, (
            "the parked baseline must not double-route"
        )
        assert double["pause_p50_seconds"] <= MAX_AUTOSCALE_DOUBLE_ROUTE_PAUSE_P50_SECONDS, (
            f"double-routed ingest pause p50 rose to "
            f"{double['pause_p50_seconds'] * 1e3:.2f} ms"
        )
        assert double["pause_p99_seconds"] <= MAX_AUTOSCALE_DOUBLE_ROUTE_PAUSE_P99_SECONDS, (
            f"double-routed ingest pause p99 rose to "
            f"{double['pause_p99_seconds'] * 1e3:.1f} ms"
        )
        improvement = parked["pause_p50_seconds"] / double["pause_p50_seconds"]
        assert improvement >= MIN_AUTOSCALE_PAUSE_IMPROVEMENT_P50, (
            f"double-routing is only {improvement:.1f}x faster than parking "
            f"(p50 {double['pause_p50_seconds'] * 1e3:.2f} ms vs "
            f"{parked['pause_p50_seconds'] * 1e3:.2f} ms)"
        )
        ramp = autoscale["ramp"]
        assert ramp["shard_counts"] == AUTOSCALE_RAMP_SHARD_COUNTS, (
            f"autoscaler ramp diverged from the scripted trajectory: "
            f"{ramp['shard_counts']} != {AUTOSCALE_RAMP_SHARD_COUNTS}"
        )
        assert ramp["peak_shards"] == max(AUTOSCALE_RAMP_SHARD_COUNTS)
        assert ramp["final_shards"] == min(AUTOSCALE_RAMP_SHARD_COUNTS)
        assert ramp["decisions"]["grow"] == 2 and ramp["decisions"]["shrink"] == 2

    def test_batched_kernel_speedup_floor(self, perf_report):
        batch = perf_report["results"]["service"]["batch_detect"]
        assert batch["n_jobs"] >= MIN_BATCH_JOBS, (
            "the batch benchmark must run 256+ concurrent due jobs"
        )
        assert batch["window_groups"] == 1, (
            "the fleet must land in one window group for the batched kernels"
        )
        assert batch["n_detections"] == batch["n_jobs"]
        assert batch["kernel_speedup"] >= MIN_BATCH_KERNEL_SPEEDUP, (
            f"batched kernel speedup at {batch['n_jobs']} due jobs dropped to "
            f"{batch['kernel_speedup']:.1f}x"
        )
        # The end-to-end pass carries the per-session claim/commit protocol,
        # so its gain is smaller — but batching must never be a slowdown.
        assert batch["detect_speedup"] >= 1.0, (
            f"end-to-end batched detection fell behind sequential "
            f"({batch['detect_speedup']:.2f}x)"
        )

    def test_ingest_copy_counters(self, perf_report):
        copies = perf_report["results"]["service"]["ingest_copies"]
        assert copies["n_frames"] > 0 and copies["bytes_total"] > 0
        # Whole-chunk routing is the shard hot path: exactly zero copies.
        assert copies["whole_chunk_bytes_copied_per_frame"] == 0.0
        # Any chunking pays at most one join (the frame's own bytes) plus one
        # header coalesce per frame — ≤ 1 copy per frame per hop.
        ceiling = copies["frame_bytes_mean"] + _HEADER.size
        assert 0.0 <= copies["chunked_bytes_copied_per_frame"] <= ceiling, (
            f"dribbled ingest copies rose to "
            f"{copies['chunked_bytes_copied_per_frame']:.1f} B/frame "
            f"(ceiling {ceiling:.1f})"
        )
        assert 0.0 <= copies["ring_bytes_copied_per_frame"] <= ceiling, (
            f"shm-ring ingest copies rose to "
            f"{copies['ring_bytes_copied_per_frame']:.1f} B/frame "
            f"(ceiling {ceiling:.1f})"
        )

    def test_federation_throughput_and_heartbeat_floor(self, perf_report):
        federation = perf_report["results"]["service"]["federation"]
        assert federation["n_shards"] >= 2
        assert federation["remote_detections"] == federation["local_detections"] > 0
        assert federation["remote_jobs_per_second"] >= MIN_FEDERATION_JOBS_PER_SECOND, (
            f"federated gateway throughput dropped to "
            f"{federation['remote_jobs_per_second']:.1f} jobs/s"
        )
        assert federation["remote_over_local"] >= MIN_FEDERATION_REMOTE_OVER_LOCAL, (
            f"remote shards fell to {federation['remote_over_local']:.2f}x the "
            f"local-fork throughput (floor {MIN_FEDERATION_REMOTE_OVER_LOCAL}x)"
        )
        assert (
            federation["heartbeat_rtt_p99_seconds"]
            <= MAX_FEDERATION_HEARTBEAT_P99_SECONDS
        ), (
            f"heartbeat RTT p99 rose to "
            f"{federation['heartbeat_rtt_p99_seconds'] * 1e3:.1f} ms"
        )

    def test_obs_overhead_floor(self, perf_report):
        overhead = perf_report["results"]["obs"]["overhead"]
        assert overhead["n_jobs"] > 0 and overhead["metrics_off_seconds"] > 0
        ceiling = (
            overhead["metrics_off_seconds"] * (1.0 + MAX_OBS_OVERHEAD_FRACTION)
            + OBS_OVERHEAD_ABS_SLACK_SECONDS
        )
        assert overhead["metrics_on_seconds"] <= ceiling, (
            f"metrics-enabled service throughput fell "
            f"{overhead['overhead_fraction'] * 100:.1f}% behind the bare run "
            f"(ceiling {MAX_OBS_OVERHEAD_FRACTION * 100:.0f}% "
            f"+ {OBS_OVERHEAD_ABS_SLACK_SECONDS * 1e3:.0f} ms slack)"
        )

    def test_report_written_and_valid_json(self, perf_report):
        path = write_report(perf_report, REPO_ROOT / "BENCH_perf.json")
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert loaded["schema_version"] == 9
        assert loaded["signal_sizes"] == [1_000, 10_000, 100_000]
        assert set(loaded["results"]["service"]["sharded"]) == set(SHARD_COUNTS)
        assert {"batch_detect", "ingest_copies", "autoscale", "federation"} <= set(
            loaded["results"]["service"]
        )
        assert set(loaded["results"]) == {
            "autocorrelation",
            "reconstruct",
            "dft",
            "detect_offline",
            "online_replay",
            "sweep_point",
            "service",
            "obs",
        }
        assert "overhead" in loaded["results"]["obs"]
        print_report("Perf regression (BENCH_perf.json)", _format_table(perf_report))
