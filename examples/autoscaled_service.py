#!/usr/bin/env python3
"""Autoscaling and zero-pause migration, end to end.

Two acts:

1. **Zero-pause migration** — a local :class:`ShardedService` grows 2 → 4
   while fresh flushes for the *moving* jobs are submitted inside the
   migration window.  With double-routing (the default) each frame is
   ingested immediately by its old owner and a twin is staged at the new
   owner for deduplicated replay, so the submit pause is one route call;
   with ``double_route=False`` the frames sit parked until the handover
   replays them.  The example prints both pause distributions.

2. **Autoscaling** — ``api.serve(autoscale=AutoscaleConfig(...))`` fronts a
   1-shard service with a supervision thread that watches sessions/shard,
   queue depth, p99 detection latency and backpressure.  A burst of 24 jobs
   drives the shard count to the ceiling; finishing and reaping the jobs
   drains it back to the floor.  The live shard-count timeline and the
   autoscaler's decision log are read from ``GET /status`` the whole way.

Run with::

    python examples/autoscaled_service.py
"""

from __future__ import annotations

import json
import time
import urllib.request

from repro import api
from repro.analysis.benchmark import synthetic_flush_streams
from repro.core import FtioConfig
from repro.service import (
    AutoscaleConfig,
    HashRing,
    ServiceConfig,
    SessionConfig,
    ShardedService,
)

SERVICE_CONFIG = ServiceConfig(
    session=SessionConfig(
        config=FtioConfig(
            sampling_frequency=10.0,
            use_autocorrelation=False,
            compute_characterization=False,
        )
    ),
    max_workers=2,
)


def migration_pause_demo() -> None:
    """Grow 2 -> 4 live, submitting for the moving jobs mid-migration."""
    streams = synthetic_flush_streams(16, flushes_per_job=2, requests_per_flush=8, seed=3)
    moving = [
        job for job in streams if HashRing(2).shard_for(job) != HashRing(4).shard_for(job)
    ]
    print(f"16 warm jobs on 2 shards; growing to 4 moves {len(moving)} of them.\n")

    def measure(double_route: bool) -> list[float]:
        service = ShardedService(2, SERVICE_CONFIG)
        pauses: list[float] = []
        submit_at: dict[str, float] = {}

        def on_phase(phase: str) -> None:
            if phase != "parked":
                return
            for job in moving:
                started = time.perf_counter()
                service.ingest_flush(job, streams[job][1])
                if double_route:
                    pauses.append(time.perf_counter() - started)
                else:
                    submit_at[job] = started

        try:
            for job, flushes in streams.items():
                service.ingest_flush(job, flushes[0])
            service.pump()
            service.reshard(4, on_phase=on_phase, double_route=double_route)
            ended = time.perf_counter()
            if not double_route:
                pauses.extend(ended - started for started in submit_at.values())
            service.pump()
            service.drain()
            if double_route:
                routed = service.stats()["double_routed_frames"]
                print(f"  double-routed frames counted by the router: {routed}")
        finally:
            service.close()
        return pauses

    for label, double_route in (("double-routed", True), ("parked (baseline)", False)):
        pauses = sorted(measure(double_route))
        p50 = pauses[len(pauses) // 2]
        print(
            f"  {label:18} pause for a mid-migration submit: "
            f"p50 {p50 * 1e3:7.3f} ms, worst {pauses[-1] * 1e3:7.3f} ms"
        )
    print()


def status_of(base: str) -> dict:
    with urllib.request.urlopen(base + "/status") as response:
        return json.loads(response.read())


def autoscaled_ramp_demo() -> None:
    """Serve with an autoscaler and watch /status while the load ramps."""
    autoscale = AutoscaleConfig(
        min_shards=1,
        max_shards=3,
        interval_seconds=0.1,
        cooldown_seconds=0.5,
        high_sessions_per_shard=8.0,
        low_sessions_per_shard=3.0,
        low_pending_per_shard=8.0,
        high_p99_latency_seconds=10.0,
        low_p99_latency_seconds=5.0,
    )
    streams = synthetic_flush_streams(24, flushes_per_job=3, requests_per_flush=8, seed=4)
    config = api.ReproConfig(
        analysis=FtioConfig(
            sampling_frequency=10.0,
            use_autocorrelation=False,
            compute_characterization=False,
        ),
        shards=1,
        max_workers=2,
        port=0,
    )
    started = time.perf_counter()
    with api.serve(config, ops_port=0, autoscale=autoscale) as gateway:
        base = f"http://127.0.0.1:{gateway.ops_port}"
        client = api.connect(gateway.address)

        def watch(until_shards: int, deadline: float = 20.0) -> None:
            last = None
            give_up = time.perf_counter() + deadline
            while time.perf_counter() < give_up:
                document = status_of(base)
                shards = document["shards"]
                decisions = document["autoscale"]["decisions"]
                if shards != last:
                    elapsed = time.perf_counter() - started
                    print(
                        f"  t={elapsed:5.2f}s  shards={shards}  "
                        f"decisions={{grow: {decisions['grow']}, "
                        f"shrink: {decisions['shrink']}, hold: {decisions['hold']}}}"
                    )
                    last = shards
                if shards == until_shards:
                    return
                time.sleep(0.05)
            print(f"  (gave up waiting for shards={until_shards})")

        print("24 jobs burst onto 1 shard (high band: 8 sessions/shard):")
        for job, flushes in streams.items():
            client.submit_flush(job, flushes[0])
        client.pump()
        watch(until_shards=autoscale.max_shards)

        print("finishing 22 of 24 jobs, reaping their sessions:")
        for job in sorted(streams)[:-2]:
            client.finish_job(job)
        client.drain()
        reaped = gateway.engine.reap_finished()
        print(f"  reaped {len(reaped)} sessions; remaining load is 2 jobs")
        watch(until_shards=autoscale.min_shards)

        document = status_of(base)
        print("\nautoscaler decision log (from GET /status):")
        for entry in document["autoscale"]["timeline"]:
            print(
                f"  {entry['action']:6} {entry['from_shards']} -> {entry['to_shards']}"
                f"  ({entry['reason']})"
            )
        client.close()
    print("\ngateway and autoscaler shut down cleanly.")


def main() -> None:
    print("=== Act 1: zero-pause migration ===\n")
    migration_pause_demo()
    print("=== Act 2: autoscaled service ===\n")
    autoscaled_ramp_demo()


if __name__ == "__main__":
    main()
