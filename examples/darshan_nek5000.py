#!/usr/bin/env python3
"""Analysing a Darshan-style profile and choosing the analysis window (Figure 11).

The example rebuilds the Nek5000-like Darshan heatmap described in the paper
(regular ~7 GB checkpoints roughly every 4642 s plus irregular 30 GB and 75 GB
phases), stores it as a profile file, and shows how the FTIO verdict depends
on the analysis window: the full 86 000 s trace is aperiodic, while the
reduced 56 000 s window exposes the checkpoint period.

Run with::

    python examples/darshan_nek5000.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import Ftio
from repro.trace import read_heatmap, write_heatmap
from repro.workloads import nek5000_heatmap, reduced_window


def describe(label: str, result) -> None:
    print(f"\n--- {label} ---")
    print(f"verdict:    {result.periodicity.value}")
    if result.is_periodic:
        print(f"period:     {result.period:.1f} s ({result.dominant_frequency * 1000:.3f} mHz)")
        print(f"confidence: {result.best_confidence:.1%}")
    print(f"samples:    {result.signal.n_samples} at fs = {result.signal.sampling_frequency:.4f} Hz")


def main() -> None:
    # Build the profile and round-trip it through the on-disk format, exactly
    # like consuming a downloaded profile from the I/O Trace Initiative.
    profile_path = Path(tempfile.mkdtemp()) / "nek5000_heatmap.json"
    write_heatmap(nek5000_heatmap(seed=0), profile_path)
    heatmap = read_heatmap(profile_path)
    print(f"Loaded Darshan-style heatmap: {heatmap.n_bins} bins of {heatmap.bin_width:.0f} s, "
          f"{heatmap.total_bytes() / 2**30:.0f} GiB written, "
          f"application = {heatmap.metadata['application']}")

    ftio = Ftio()  # the sampling frequency is taken from the heatmap bin width

    describe("full trace (delta_t = 86 000 s)", ftio.detect(heatmap))
    describe("reduced window (delta_t = 56 000 s)", ftio.detect(heatmap, window=reduced_window()))

    print(
        "\nAs in the paper, the irregular 30 GB phases late in the run break the "
        "periodicity of the full trace; restricting the window recovers the "
        "~4642 s checkpoint period with high confidence."
    )


if __name__ == "__main__":
    main()
