#!/usr/bin/env python3
"""The TCP gateway and the unified ``repro.api`` surface, end to end.

One :func:`repro.api.serve` call stands up the whole stack — a 2-shard
prediction service behind an asyncio TCP gateway — and two
:class:`~repro.client.ServiceClient` connections drive it over loopback: a
*producer* streams four applications' flushes as FTS1 frames and pumps, and
a *monitor* subscribes and watches the live predictions arrive as push
events.  Everything on the wire is the typed, versioned control-plane
protocol of ``repro.service.protocol`` (spec: ``docs/protocol.md``).

Run with::

    python examples/gateway_client.py
"""

from __future__ import annotations

import repro.api as api
from repro.trace.jsonl import trace_to_flushes
from repro.workloads.hacc import hacc_flush_times, hacc_io_trace

TOKEN = 0xA  # tenant/auth nibble: required in the handshake and on every frame


def main() -> None:
    # --- 1. four applications with different true periods ------------------ #
    jobs = {}
    for j in range(4):
        trace = hacc_io_trace(
            ranks=8, loops=10, period=6.0 + 2.0 * j, first_phase_delay=4.0, seed=70 + j
        )
        jobs[f"app-{j}"] = (trace, trace_to_flushes(trace, hacc_flush_times(trace)))
    print("4 applications, true mean periods: "
          + ", ".join(f"{job}={t.ground_truth.average_period():.2f}s"
                      for job, (t, _) in jobs.items()))

    # --- 2. one config, one serve() ---------------------------------------- #
    config = (
        api.ReproConfig(shards=2, max_workers=2, token=TOKEN, max_samples=50_000)
        .with_analysis(sampling_frequency=10.0, use_autocorrelation=False,
                       compute_characterization=False)
    )
    with api.serve(config) as gateway:
        # --- 3. a monitor subscribes, a producer streams ------------------- #
        monitor = api.connect(gateway.address, token=TOKEN, name="monitor")
        monitor.subscribe()
        print(f"gateway listening on {gateway.address} "
              f"(protocol v{monitor.protocol_version}, {monitor.shards} shards)")

        with api.connect(gateway.address, token=TOKEN, name="producer") as producer:
            n_rounds = max(len(flushes) for _, flushes in jobs.values())
            for round_index in range(n_rounds):
                for job, (_, flushes) in jobs.items():
                    if round_index < len(flushes):
                        producer.submit_flush(job, flushes[round_index])
                producer.pump()
            producer.drain()
            stats = producer.stats()

        events = monitor.poll_predictions(timeout=5.0, min_events=stats["detections"])
        print(f"\n{stats['shards']} shards, {stats['flushes']} flushes, "
              f"{stats['detections']} detections; monitor received "
              f"{len(events)} push events\n")

        print("job     latest period [s]  (true)")
        latest = {}
        for event in events:
            latest[event.job] = event
        for job, (trace, _) in jobs.items():
            update = latest[job]
            print(f"{job:7} {update.period:17.2f}  "
                  f"({trace.ground_truth.average_period():.2f})")

        monitor.close()
    print("\ngateway and shards shut down cleanly.")


if __name__ == "__main__":
    main()
