#!/usr/bin/env python3
"""Use case: feeding the Set-10 I/O scheduler with FTIO periods (Section IV).

The example simulates the Figure 17 workload — one high-frequency application
(19.2 s period) and fifteen low-frequency applications (384 s period) sharing
a parallel file system — under four configurations:

* Set-10 with clairvoyant (ideal) period knowledge,
* Set-10 with periods estimated at runtime by FTIO,
* Set-10 with FTIO periods corrupted by ±50 %,
* the unmodified file system (fair sharing).

It prints the stretch, I/O slowdown and utilization of each configuration and
the relative improvements of the FTIO-fed scheduler over the baseline.

Run with::

    python examples/io_scheduling.py
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.scheduling import CONFIGURATIONS, SchedulingExperiment, summarize


def main() -> None:
    experiment = SchedulingExperiment()
    workload = experiment.workload
    print(
        f"Workload: {workload.n_high} high-frequency job(s) (period {workload.high_frequency_period} s) + "
        f"{workload.n_low} low-frequency jobs (period {workload.low_frequency_period} s), "
        f"I/O = {workload.io_fraction:.2%} of each period"
    )
    print("Running 5 repetitions of each configuration...\n")

    runs = experiment.run(repetitions=5, seed=2024)
    summary = summarize(runs)

    rows = [
        [
            configuration,
            f"{summary[configuration]['stretch']:.3f}",
            f"{summary[configuration]['io_slowdown']:.3f}",
            f"{summary[configuration]['utilization']:.3f}",
        ]
        for configuration in CONFIGURATIONS
    ]
    print(format_table(["configuration", "stretch", "I/O slowdown", "utilization"], rows))

    ftio = summary["set10-ftio"]
    original = summary["original"]
    print("\nSet-10 + FTIO compared to the unmodified file system (negative = reduction):")
    print(f"  stretch       {ftio['stretch'] / original['stretch'] - 1:+.0%} (paper: -20%)")
    print(f"  I/O slowdown  {ftio['io_slowdown'] / original['io_slowdown'] - 1:+.0%} (paper: -56%)")
    print(f"  utilization   {ftio['utilization'] / original['utilization'] - 1:+.0%} (paper: +26%)")


if __name__ == "__main__":
    main()
