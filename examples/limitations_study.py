#!/usr/bin/env python3
"""Mini limitation study: how robust is the detection to I/O variability?

A scaled-down version of the Section III-A evaluation (Figures 8c and 9): the
semi-synthetic generator produces applications whose compute time between I/O
phases is drawn from N(mu, sigma), and FTIO's detection error and
characterization metrics are reported as sigma/mu grows.

Run with::

    python examples/limitations_study.py
"""

from __future__ import annotations

from repro.analysis import LimitationStudy, format_sweep
from repro.constants import MIB
from repro.workloads import PhaseLibrary


def main() -> None:
    # A reduced phase library keeps the example fast (~10 s); the full-scale
    # study in benchmarks/test_fig08_limitations.py uses the paper's sizes.
    library = PhaseLibrary.generate(
        n_phases=12,
        ranks=8,
        volume_per_rank=800 * MIB,
        request_size=16 * MIB,
        aggregate_bandwidth=800e6,
        seed=3,
    )
    study = LimitationStudy(library=library, traces_per_point=8, sampling_frequency=1.0)

    points = study.variability_points(sigma_over_mu=(0.0, 0.5, 1.0, 2.0), compute_mean=11.0)
    print(f"Phase library: {library.size} phases, mean duration {library.mean_duration():.1f} s")
    print(f"Generating {study.traces_per_point} traces per point "
          f"({len(points)} points, 20 iterations each)...\n")

    results = study.run(points, seed=1)

    print("Detection error |Td - T̄| / T̄ (paper: median < 5.5% for sigma/mu <= 0.5):")
    print(format_sweep(results, metric="error"))

    print("\nsigma_vol (per-period volume variation):")
    print(format_sweep(results, metric="sigma_vol"))

    print("\nPeriodicity score 1 - sigma_vol - sigma_time "
          "(paper: 98% at sigma=0 dropping to 57% at sigma/mu=2):")
    print(format_sweep(results, metric="periodicity_score"))


if __name__ == "__main__":
    main()
