#!/usr/bin/env python3
"""Online period prediction during a (simulated) HACC-IO execution.

The example reproduces the Figure 15 workflow of the paper end to end:

1. a HACC-IO-like application runs its compute/write/read loop; a simulated
   TMIO tracer records every request and *flushes* the data to a JSON Lines
   file at the end of every loop iteration (the single added line of code the
   paper describes);
2. after every flush, FTIO re-analyses the file and predicts the period of the
   upcoming I/O phases, shrinking its analysis window once the prediction has
   stabilized;
3. the consecutive predictions are merged into frequency intervals with
   probabilities.

Run with::

    python examples/online_prediction.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import FtioConfig
from repro.core.online import predict_from_file
from repro.tracer import TmioTracer, TracerMode
from repro.workloads import hacc_flush_times, hacc_io_trace


def main() -> None:
    # --- 1. simulated application run with online tracing ----------------- #
    trace = hacc_io_trace(ranks=64, loops=10, period=8.0, first_phase_delay=6.0, seed=7)
    flush_times = hacc_flush_times(trace)
    print(f"HACC-IO-like run: {len(trace)} requests over {trace.duration:.1f} s, "
          f"{len(flush_times)} loop iterations")
    print(f"Ground-truth mean period: {trace.ground_truth.average_period():.2f} s "
          "(first phase delayed by initialization)\n")

    trace_file = Path(tempfile.mkdtemp()) / "hacc_io.jsonl"
    tracer = TmioTracer(mode=TracerMode.ONLINE, path=trace_file, metadata={"app": "hacc-io"})

    pending = sorted(trace.requests(), key=lambda r: r.end)
    cursor = 0
    for flush_time in flush_times:
        while cursor < len(pending) and pending[cursor].end <= flush_time:
            tracer.record(pending[cursor])
            cursor += 1
        tracer.flush(timestamp=flush_time)
    print(f"Tracer wrote {tracer.statistics.flushes} flushes to {trace_file}\n")

    # --- 2. FTIO online prediction over the flush file -------------------- #
    config = FtioConfig(sampling_frequency=10.0, use_autocorrelation=False,
                        compute_characterization=False)
    steps = predict_from_file(trace_file, config=config)

    print("prediction  time [s]  window [s]        period [s]  confidence")
    for step in steps:
        period = f"{step.period:.2f}" if step.period is not None else "   -"
        print(
            f"{step.index:10d}  {step.time:8.1f}  [{step.window[0]:6.1f}, {step.window[1]:6.1f}]"
            f"  {period:>10}  {step.confidence:10.0%}"
        )

    # --- 3. merged frequency intervals ------------------------------------ #
    from repro.core.intervals import merge_predictions

    predictions = [s for s in steps if s.dominant_frequency is not None]
    intervals = merge_predictions(
        [s.dominant_frequency for s in predictions],
        [s.window_length for s in predictions],
    )
    print("\nMerged frequency intervals (probability = share of predictions):")
    for interval in intervals:
        low_p, high_p = interval.period_range
        print(
            f"  [{interval.low:.4f}, {interval.high:.4f}] Hz "
            f"(periods {low_p:.2f}-{high_p:.2f} s): probability {interval.probability:.0%}"
        )


if __name__ == "__main__":
    main()
