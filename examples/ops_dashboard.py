#!/usr/bin/env python3
"""A live terminal ops dashboard over the gateway's HTTP status surface.

A 4-shard :class:`ShardedService` runs behind a :class:`ThreadedGateway`
with ``ops_port`` enabled, and twelve simulated applications stream flushes
at it round by round.  Meanwhile this script does exactly what an external
dashboard (or a ``curl`` loop) would do: poll ``GET /status`` over plain
HTTP and render the merged tree — jobs/sec, dispatcher queue depth, the
cross-shard p99 detection latency (read from the merged
``repro_dispatcher_detect_seconds`` histogram), and per-shard session
counts.  No client library, no repro imports on the "dashboard" side of
the HTTP boundary: the observer only speaks JSON.

Run with::

    python examples/ops_dashboard.py
"""

from __future__ import annotations

import json
import time
import urllib.request

from repro.core import FtioConfig
from repro.obs import Histogram
from repro.service import ServiceConfig, SessionConfig, ShardedService, ThreadedGateway
from repro.trace.framing import encode_frame
from repro.trace.jsonl import trace_to_flushes
from repro.workloads.hacc import hacc_flush_times, hacc_io_trace

N_JOBS = 12
N_SHARDS = 4


def poll_status(ops_port: int) -> dict:
    """What any external dashboard does: one HTTP GET, one JSON document."""
    with urllib.request.urlopen(f"http://127.0.0.1:{ops_port}/status", timeout=30) as resp:
        return json.loads(resp.read())


def detect_p99_ms(status: dict) -> float | None:
    """Cross-shard p99 from the merged detect-latency histogram."""
    entry = status["metrics"].get("repro_dispatcher_detect_seconds")
    if not entry or not entry["series"]:
        return None
    hist = Histogram.from_dict(entry["series"][0]["hist"])
    if hist.count == 0:
        return None
    return hist.quantile(0.99) * 1e3


def render(status: dict, jobs_per_second: float) -> str:
    stats = status["stats"]
    queue_depth = status["metrics"]["repro_dispatcher_pending_evals"]["series"]
    pending = sum(series["value"] for series in queue_depth)
    p99 = detect_p99_ms(status)
    lines = [
        f"[{status['server']}] shards={status['shards']} "
        f"jobs={stats['jobs']} detections={stats['detections']} "
        f"published={stats['published']}",
        f"  throughput {jobs_per_second:7.1f} jobs/s   queue depth {pending:3.0f}   "
        f"p99 detect {'n/a' if p99 is None else f'{p99:.2f} ms'}",
    ]
    shard_line = "   ".join(
        f"shard {entry['shard']}: {entry['jobs']} jobs"
        + ("" if entry["alive"] else " (DEAD)")
        for entry in status["shards_detail"]
    )
    lines.append(f"  {shard_line}")
    return "\n".join(lines)


def main() -> None:
    jobs = {}
    for j in range(N_JOBS):
        trace = hacc_io_trace(
            ranks=2, loops=10, period=4.0 + 1.1 * j, first_phase_delay=3.0, seed=700 + j
        )
        jobs[f"app-{j}"] = trace_to_flushes(trace, hacc_flush_times(trace))
    n_rounds = min(len(flushes) for flushes in jobs.values())

    config = ServiceConfig(
        session=SessionConfig(
            config=FtioConfig(
                sampling_frequency=10.0,
                use_autocorrelation=False,
                compute_characterization=False,
            )
        ),
        max_workers=2,
    )
    service = ShardedService(N_SHARDS, config)
    try:
        # ops_port=0 picks a free port; a deployment would pin one (e.g. 9901).
        with ThreadedGateway(service, ops_port=0) as gateway:
            print(f"ops surface: http://127.0.0.1:{gateway.ops_port}/status\n")
            for round_index in range(n_rounds):
                round_started = time.perf_counter()
                for job, flushes in jobs.items():
                    service.feed_bytes(encode_frame(flushes[round_index], job=job))
                service.pump()
                elapsed = time.perf_counter() - round_started
                status = poll_status(gateway.ops_port)
                print(f"round {round_index + 1}/{n_rounds}")
                print(render(status, N_JOBS / elapsed if elapsed > 0 else 0.0))
            service.drain()

            status = poll_status(gateway.ops_port)
            print("\nfinal state")
            print(render(status, 0.0))
            with urllib.request.urlopen(
                f"http://127.0.0.1:{gateway.ops_port}/metrics", timeout=30
            ) as resp:
                exposition = resp.read().decode()
            interesting = [
                line
                for line in exposition.splitlines()
                if line.startswith(("repro_broker_frames_total",
                                    "repro_dispatcher_detect_seconds_count",
                                    "repro_ring_stalls_total"))
            ]
            print("\nselected /metrics lines (Prometheus exposition):")
            for line in interesting:
                print(f"  {line}")
    finally:
        service.close()


if __name__ == "__main__":
    main()
