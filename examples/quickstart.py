#!/usr/bin/env python3
"""Quickstart: detect the period of a periodic I/O workload with FTIO.

The example generates an IOR-like trace (8 compute+write iterations, roughly
100 s apart), runs the offline FTIO detection on it, and prints the detected
period, the confidence metrics and the characterization of the I/O behaviour.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Ftio, FtioConfig, workloads


def main() -> None:
    # 1. Generate a periodic workload trace (stands in for a traced MPI run).
    trace = workloads.ior_trace(
        ranks=32,
        iterations=8,
        compute_time=95.0,
        io_phase_duration=12.0,
        seed=42,
    )
    true_period = trace.ground_truth.average_period()
    print(f"Generated IOR-like trace: {len(trace)} requests, "
          f"{trace.volume / 2**30:.1f} GiB, duration {trace.duration:.1f} s")
    print(f"Ground-truth mean period: {true_period:.2f} s")

    # 2. Run FTIO: discretize at 1 Hz, DFT + Z-score outliers + autocorrelation.
    config = FtioConfig(sampling_frequency=1.0)
    result = Ftio(config).detect(trace)

    # 3. Inspect the result.
    print("\n=== FTIO result ===")
    print(result.summary())
    print(f"verdict:             {result.periodicity.value}")
    print(f"detection error:     {abs(result.period - true_period) / true_period:.1%}")
    print(f"abstraction error:   {result.signal.abstraction_error:.3f}")
    print(f"analysis time:       {result.analysis_time * 1000:.1f} ms")

    print("\nDominant-frequency candidates:")
    for candidate in result.candidates:
        marker = " (harmonic, ignored)" if candidate.is_harmonic else ""
        print(
            f"  f = {candidate.frequency:.4f} Hz  period = {candidate.period:7.2f} s  "
            f"contribution = {candidate.contribution:5.1%}  confidence = {candidate.confidence:5.1%}"
            f"{marker}"
        )

    characterization = result.characterization
    if characterization is not None:
        print("\nCharacterization (Section II-C metrics):")
        print(f"  sigma_vol          = {characterization.sigma_vol:.3f}")
        print(f"  sigma_time         = {characterization.sigma_time:.3f}")
        print(f"  R_IO (time share)  = {characterization.time_ratio:.2f}")
        print(f"  B_IO               = {characterization.io_bandwidth / 1e9:.2f} GB/s")
        print(f"  bytes per period   = {characterization.bytes_per_period / 2**30:.2f} GiB")
        print(f"  periodicity score  = {characterization.periodicity_score:.2f}")


if __name__ == "__main__":
    main()
