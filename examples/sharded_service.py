#!/usr/bin/env python3
"""The sharded multi-process prediction service end to end.

Eight concurrent (simulated) applications write authenticated FTS1 frames
into one rotating spool file.  A 4-shard :class:`ShardedService` tails the
spool: the parent router classifies each frame from its header alone and
forwards the raw bytes to the subprocess shard that owns the job
(consistent hashing), where a full prediction service evaluates it.  The
example then murders one shard with SIGKILL mid-stream and shows the
recovery path — restore the lost sessions from the last merged snapshot,
replay the spool tail, keep serving — ending with the same predictions a
crash-free run produces.

Run with::

    python examples/sharded_service.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core import FtioConfig
from repro.service import ServiceConfig, SessionConfig, ShardedService
from repro.trace.framing import FrameWriter
from repro.trace.jsonl import trace_to_flushes
from repro.workloads.hacc import hacc_flush_times, hacc_io_trace

TOKEN = 0xA  # wire-level tenant/auth nibble, stamped on every frame


def main() -> None:
    # --- 1. eight applications share one authenticated, rotating spool ----- #
    directory = Path(tempfile.mkdtemp())
    spool = directory / "flushes.fts"
    writer = FrameWriter(spool, payload_format="msgpack", token=TOKEN, max_bytes=2_000_000)

    jobs = {}
    for j in range(8):
        trace = hacc_io_trace(
            ranks=2, loops=8, period=5.0 + 1.5 * j, first_phase_delay=4.0, seed=70 + j
        )
        jobs[f"app-{j}"] = (trace, trace_to_flushes(trace, hacc_flush_times(trace)))

    config = ServiceConfig(
        session=SessionConfig(
            config=FtioConfig(sampling_frequency=10.0, use_autocorrelation=False,
                              compute_characterization=False),
            max_samples=50_000,
        ),
        max_workers=2,
        token=TOKEN,
    )

    # --- 2. a 4-shard service tails the spool ------------------------------ #
    service = ShardedService(4, config)
    tail = service.tail_file(spool)
    owners = {job: service.shard_for(job) for job in jobs}
    print("job -> shard:", ", ".join(f"{job}:{shard}" for job, shard in owners.items()))

    n_rounds = max(len(flushes) for _, flushes in jobs.values())

    def stream_round(round_index: int) -> None:
        for job, (_, flushes) in jobs.items():
            if round_index < len(flushes):
                writer.write(flushes[round_index], job=job)
        tail.poll()
        service.pump()

    third = n_rounds // 3
    for round_index in range(third):
        stream_round(round_index)

    # --- 3. snapshot, then kill -9 a shard mid-stream ---------------------- #
    snapshot = service.snapshot_state()
    snapshot_position = tail.position  # rotation-proof resume point
    for round_index in range(third, 2 * third):
        stream_round(round_index)

    victim = owners["app-0"]
    service.kill_shard(victim)
    print(f"\nshard {victim} kill -9'd mid-stream; dead shards: {service.dead_shards()}")

    replayed = service.revive_shard(
        victim, state=snapshot, spool=spool, spool_position=snapshot_position
    )
    print(f"revived shard {victim}: sessions restored from snapshot, "
          f"{replayed} spool-tail frames replayed")

    for round_index in range(2 * third, n_rounds):
        stream_round(round_index)
    service.drain()

    # --- 4. aggregated state ----------------------------------------------- #
    broker = service.broker_stats
    dispatch = service.dispatcher_stats
    print(f"\nspool: {writer.frames_written} frames, {writer.rotations} rotations; "
          f"{broker.jobs} jobs, {broker.flushes} flushes, "
          f"{dispatch.completed} detections, {dispatch.failures} failures\n")
    print("job     shard  latest period [s]  (true)")
    for job, (trace, _) in jobs.items():
        period = service.publisher.latest_period(job)
        true = trace.ground_truth.average_period()
        shown = f"{period:17.2f}" if period is not None else f"{'-':>17}"
        print(f"{job:7} {owners[job]:5d}  {shown}  ({true:.2f})")

    service.close()
    print("\nall shards shut down cleanly.")


if __name__ == "__main__":
    main()
