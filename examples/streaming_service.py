#!/usr/bin/env python3
"""The streaming prediction service end to end.

Four concurrent (simulated) applications flush their I/O measurements as
length-prefixed frames into one shared spool file — the multi-tenant analogue
of the single-job online mode of ``examples/online_prediction.py``.  The
prediction service tails the spool, demultiplexes the frames into per-job
bounded-memory sessions, evaluates FTIO after every flush, and publishes the
per-job period predictions live.  The example then snapshots the service,
restores it (simulating a crash + recovery), and shows the restored instance
answering identically.

Run with::

    python examples/streaming_service.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core import FtioConfig
from repro.service import PredictionService, ServiceConfig, SessionConfig
from repro.service.snapshot import load_snapshot, save_snapshot
from repro.trace.framing import FrameWriter
from repro.trace.jsonl import trace_to_flushes
from repro.workloads.hacc import hacc_flush_times, hacc_io_trace


def main() -> None:
    # --- 1. four applications write framed flushes into one spool ---------- #
    directory = Path(tempfile.mkdtemp())
    spool = directory / "flushes.fts"
    writer = FrameWriter(spool, payload_format="msgpack")

    jobs = {}
    for j in range(4):
        trace = hacc_io_trace(
            ranks=16, loops=10, period=6.0 + 2.0 * j, first_phase_delay=4.0, seed=70 + j
        )
        jobs[f"app-{j}"] = (trace, trace_to_flushes(trace, hacc_flush_times(trace)))

    print(f"4 applications, true mean periods: "
          + ", ".join(f"{job}={t.ground_truth.average_period():.2f}s"
                      for job, (t, _) in jobs.items()))

    # --- 2. the service tails the spool and predicts live ------------------ #
    service = PredictionService(
        ServiceConfig(
            session=SessionConfig(
                config=FtioConfig(sampling_frequency=10.0, use_autocorrelation=False,
                                  compute_characterization=False),
                max_samples=50_000,
            ),
            max_workers=4,
        )
    )
    updates: list = []
    service.publisher.subscribe(updates.append)
    reader = service.tail_file(spool)

    n_rounds = max(len(flushes) for _, flushes in jobs.values())
    for round_index in range(n_rounds):
        # Applications flush concurrently (interleaved appends)...
        for job, (_, flushes) in jobs.items():
            if round_index < len(flushes):
                writer.write(flushes[round_index], job=job)
        # ... the service picks the new frames up and evaluates what is due.
        reader.poll()
        service.pump(wait_for_batch=True)
    service.dispatcher.join()

    print(f"\nspool: {writer.frames_written} frames, {writer.bytes_written / 1e6:.1f} MB; "
          f"{len(updates)} predictions published\n")
    print("job     flushes  resident  evicted  latest period [s]")
    for job, (trace, _) in jobs.items():
        session = service.session(job)
        period = service.publisher.latest_period(job)
        print(f"{job:7}  {session.ingested_flushes:6d}  {session.resident_samples:8d}"
              f"  {session.evicted_samples:7d}  {period:12.2f}"
              f"   (true {trace.ground_truth.average_period():.2f})")

    # --- 3. crash recovery: snapshot, restore, same answers ---------------- #
    snapshot_path = save_snapshot(service, directory / "service.snapshot")
    restored = load_snapshot(snapshot_path, config=service.config)
    print(f"\nsnapshot: {snapshot_path.stat().st_size / 1e6:.2f} MB -> restored "
          f"{len(restored.jobs)} sessions")
    for job in jobs:
        assert restored.publisher.latest_period(job) == service.publisher.latest_period(job)
    print("restored service answers identically — ready to keep ingesting.")
    service.close()
    restored.close()


if __name__ == "__main__":
    main()
