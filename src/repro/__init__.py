"""Reproduction of "Capturing Periodic I/O Using Frequency Techniques" (FTIO, IPDPS 2024).

The package is organized in layers:

* :mod:`repro.trace` — I/O request traces, bandwidth signals, file formats;
* :mod:`repro.tracer` — the simulated TMIO tracing library and its overhead model;
* :mod:`repro.freq` — DFT, power spectra, autocorrelation, outlier detection;
* :mod:`repro.core` — the FTIO detection/prediction pipeline, confidence and
  characterization metrics, online prediction;
* :mod:`repro.workloads` — synthetic IOR / HACC-IO / LAMMPS / Nek5000 / miniIO
  and semi-synthetic trace generators;
* :mod:`repro.cluster` / :mod:`repro.scheduling` — the shared-file-system
  simulator and the Set-10 I/O scheduling use case;
* :mod:`repro.service` — the streaming prediction service: framed multi-job
  flush ingestion, bounded-memory online sessions, the versioned
  control-plane protocol, the asyncio TCP gateway, live FTIO-driven
  scheduling;
* :mod:`repro.client` — the blocking TCP client of the service gateway;
* :mod:`repro.analysis` — detection-error sweeps and report rendering;
* :mod:`repro.api` — the unified facade: ``detect`` / ``predict`` /
  ``serve`` / ``connect`` behind one frozen :class:`~repro.api.ReproConfig`.

Quick start::

    from repro import Ftio, FtioConfig, workloads

    trace = workloads.ior_trace(ranks=8, iterations=8, seed=1)
    result = Ftio(FtioConfig(sampling_frequency=1.0)).detect(trace)
    print(result.summary())

or, through the facade::

    import repro.api as api

    result = api.detect(trace, sampling_frequency=1.0)
"""

from repro import (
    analysis,
    api,
    client,
    cluster,
    core,
    freq,
    scheduling,
    service,
    trace,
    tracer,
    workloads,
)
from repro.api import ReproConfig
from repro.core import (
    Ftio,
    FtioConfig,
    FtioResult,
    OnlinePredictor,
    Periodicity,
    detect,
)
from repro.trace import IORequest, Trace

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "api",
    "client",
    "cluster",
    "core",
    "freq",
    "scheduling",
    "service",
    "trace",
    "tracer",
    "workloads",
    "Ftio",
    "FtioConfig",
    "ReproConfig",
    "FtioResult",
    "OnlinePredictor",
    "Periodicity",
    "detect",
    "Trace",
    "IORequest",
    "__version__",
]
