"""Evaluation harness: detection error, parameter sweeps, text reports, perf timing."""

from repro.analysis.benchmark import (
    TimingResult,
    run_perf_suite,
    run_service_benchmark,
    synthetic_flush_streams,
    time_callable,
    write_report,
)
from repro.analysis.error import DetectionOutcome, detection_error, evaluate_trace
from repro.analysis.report import (
    format_boxplot,
    format_sweep,
    format_table,
    paper_comparison_table,
)
from repro.analysis.sweep import (
    BoxplotStats,
    LimitationStudy,
    SweepPoint,
    SweepPointResult,
)

__all__ = [
    "TimingResult",
    "run_perf_suite",
    "run_service_benchmark",
    "synthetic_flush_streams",
    "time_callable",
    "write_report",
    "DetectionOutcome",
    "detection_error",
    "evaluate_trace",
    "format_boxplot",
    "format_sweep",
    "format_table",
    "paper_comparison_table",
    "BoxplotStats",
    "LimitationStudy",
    "SweepPoint",
    "SweepPointResult",
]
