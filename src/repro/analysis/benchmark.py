"""Perf-regression timing harness (ROADMAP "fast as the hardware allows").

The paper's core claim (Sections II-A and III-C) is that the FTIO analysis is
cheap enough to run *online*, repeatedly, during application execution.  This
module provides the small timing utilities the perf-regression benchmark
(``benchmarks/test_perf_regression.py``) uses to keep the hot paths honest:

* :func:`time_callable` — best/mean wall-clock timing of a callable;
* reference implementations of the pre-optimization kernels
  (:func:`direct_autocorrelation`, :func:`loop_reconstruct`) so the measured
  speedups are against the real O(N²) / per-bin-loop baselines, not guesses;
* :func:`run_perf_suite` — times ACF, DFT + reconstruction, offline detection,
  online replay, one limitation-study sweep point and the streaming service
  across signal sizes and returns a JSON-serializable report;
* :func:`run_service_benchmark` — throughput and detection latency of the
  streaming prediction service under 100+ concurrent jobs;
* :func:`run_batch_detect_benchmark` — batched cross-session spectral
  kernels vs the sequential per-session path at 256 concurrent due jobs;
* :func:`run_ingest_copies_benchmark` — copy accounting (bytes copied per
  frame) and throughput of the zero-copy framing + shared-memory-ring hops;
* :func:`run_autoscale_benchmark` — double-routed migration pause vs the
  parked baseline, plus a scripted-clock autoscaler grow-then-shrink ramp;
* :func:`run_obs_overhead_benchmark` — the same service workload with the
  metrics registry on vs off, proving instrumentation stays cheap;
* :func:`write_report` — persists the report (``BENCH_perf.json`` at the repo
  root by convention).

The report schema (version 9; version 1 lacked the ``service`` section,
version 2 lacked ``service.sharded``, version 3 lacked ``service.gateway``,
version 4 lacked ``service.reshard``, version 5 lacked
``service.batch_detect`` and ``service.ingest_copies``, version 6 lacked
``obs``, version 7 lacked ``service.autoscale``, version 8 lacked
``service.federation``)::

    {
      "schema_version": 9,
      "generated_at": <unix epoch seconds>,
      "environment": {"python": "...", "numpy": "...", "platform": "..."},
      "signal_sizes": [1000, 10000, 100000],
      "results": {
        "autocorrelation": {"<n>": {"fft_seconds", "direct_seconds", "speedup"}},
        "reconstruct":     {"<n>": {"n_bins", "vectorized_seconds",
                                     "loop_seconds", "speedup"}},
        "dft":             {"<n>": {"seconds"}},
        "detect_offline":  {"<n>": {"seconds"}},
        "online_replay":   {"n_requests", "n_steps", "seconds"},
        "sweep_point":     {"traces", "seconds"},
        "service":         {"n_jobs", "n_flushes", "n_requests", "n_detections",
                            "elapsed_seconds", "jobs_per_second",
                            "flushes_per_second",
                            "p50_detection_latency_seconds",
                            "p99_detection_latency_seconds",
                            "sharded": {"<shards>": <same fields + "shards">},
                            "gateway": {"n_jobs", "n_flushes", "n_detections",
                                        "elapsed_seconds", "jobs_per_second",
                                        "flushes_per_second",
                                        "round_trip_p50_seconds",
                                        "round_trip_p99_seconds"},
                            "reshard": {"n_jobs", "n_flushes", "shard_path",
                                        "reshards", "sessions_moved",
                                        "sessions_moved_per_second",
                                        "pause_p50_seconds",
                                        "pause_p99_seconds",
                                        "pause_total_seconds", "cpu_count"},
                            "autoscale": {"n_jobs", "moving_jobs",
                                          "double_route": {"frames",
                                                           "double_routed_frames",
                                                           "pause_p50_seconds",
                                                           "pause_p99_seconds"},
                                          "parked_baseline": <same fields>,
                                          "pause_improvement",
                                          "ramp": {"tick_seconds",
                                                   "shard_counts", "actions",
                                                   "peak_shards",
                                                   "final_shards",
                                                   "decisions"},
                                          "cpu_count"},
                            "batch_detect": {"n_jobs", "window_samples",
                                             "window_groups",
                                             "kernel_sequential_seconds",
                                             "kernel_batched_seconds",
                                             "kernel_speedup",
                                             "detect_sequential_seconds",
                                             "detect_batched_seconds",
                                             "detect_speedup",
                                             "n_detections"},
                            "ingest_copies": {"n_frames", "bytes_total",
                                              "frame_bytes_mean", "chunk_bytes",
                                              "whole_chunk_bytes_copied_per_frame",
                                              "chunked_bytes_copied_per_frame",
                                              "ring_bytes",
                                              "ring_bytes_copied_per_frame",
                                              "ring_mb_per_second",
                                              "ring_frames_per_second"},
                            "federation": {"n_jobs", "n_flushes", "n_shards",
                                           "local_detections",
                                           "remote_detections",
                                           "local_elapsed_seconds",
                                           "remote_elapsed_seconds",
                                           "local_jobs_per_second",
                                           "remote_jobs_per_second",
                                           "remote_over_local",
                                           "heartbeat_rtt_p50_seconds",
                                           "heartbeat_rtt_p99_seconds",
                                           "cpu_count"}},
        "obs":             {"overhead": {"n_jobs", "n_flushes", "repeats",
                                         "metrics_on_seconds",
                                         "metrics_off_seconds",
                                         "metrics_on_flushes_per_second",
                                         "metrics_off_flushes_per_second",
                                         "overhead_fraction"}}
      }
    }

``write_report`` rounds every float to 6 significant digits and sorts the
keys, so re-running the suite produces minimal ``BENCH_perf.json`` diffs.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.analysis.sweep import LimitationStudy
from repro.core.config import FtioConfig
from repro.core.ftio import Ftio
from repro.core.online import replay_online
from repro.exceptions import InsufficientSamplesError
from repro.freq.dft import DftResult, dft, reconstruct
from repro.trace.sampling import DiscreteSignal
from repro.workloads.hacc import hacc_flush_times, hacc_io_trace
from repro.workloads.synthetic import PhaseLibrary

#: Default signal sizes of the perf suite (issue: 1k / 10k / 100k samples).
DEFAULT_SIGNAL_SIZES: tuple[int, ...] = (1_000, 10_000, 100_000)


@dataclass(frozen=True)
class TimingResult:
    """Wall-clock timing of one benchmarked callable.

    ``best`` (the minimum over the repeats) is the regression-relevant number:
    it is the least noisy estimate of the cost of the code itself.
    """

    name: str
    best: float
    mean: float
    repeats: int
    metadata: dict = field(default_factory=dict)


def time_callable(
    fn: Callable[[], object],
    *,
    name: str = "",
    repeats: int = 3,
    warmup: int = 1,
    **metadata,
) -> TimingResult:
    """Time ``fn()`` with ``warmup`` discarded runs and ``repeats`` measured ones."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    for _ in range(warmup):
        fn()
    durations = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        durations.append(time.perf_counter() - started)
    return TimingResult(
        name=name or getattr(fn, "__name__", "callable"),
        best=float(min(durations)),
        mean=float(sum(durations) / len(durations)),
        repeats=repeats,
        metadata=dict(metadata),
    )


# ---------------------------------------------------------------------- #
# reference (pre-optimization) kernels
# ---------------------------------------------------------------------- #
def direct_autocorrelation(samples: ArrayLike) -> NDArray[np.float64]:
    """O(N²) ACF via ``np.correlate`` — the pre-optimization reference."""
    x = np.asarray(samples, dtype=np.float64)
    n = len(x)
    if n < 2:
        raise InsufficientSamplesError(f"autocorrelation needs at least 2 samples, got {n}")
    centred = x - x.mean()
    energy = float(np.dot(centred, centred))
    acf = np.zeros(n)
    acf[0] = 1.0
    if energy == 0.0:
        return acf
    full = np.correlate(centred, centred, mode="full")
    return full[n - 1 :] / energy


def loop_reconstruct(
    result: DftResult,
    *,
    bins: ArrayLike | None = None,
    n_samples: int | None = None,
) -> NDArray[np.float64]:
    """Per-bin Python-loop reconstruction — the pre-optimization reference."""
    n = int(n_samples if n_samples is not None else result.n_samples)
    t_index = np.arange(n)
    total = np.full(n, result.dc_offset, dtype=np.float64)
    if bins is None:
        selected = np.arange(1, result.n_bins)
    else:
        selected = np.unique(np.asarray(bins, dtype=np.int64))
        selected = selected[selected >= 1]
    amplitudes = result.amplitudes
    phases = result.phases
    n_orig = result.n_samples
    for k in selected:
        k = int(k)
        factor = 1.0 if (n_orig % 2 == 0 and k == n_orig // 2) else 2.0
        total += (
            factor
            * amplitudes[k]
            / n_orig
            * np.cos(2.0 * np.pi * k * t_index / n_orig + phases[k])
        )
    return total


# ---------------------------------------------------------------------- #
# the suite
# ---------------------------------------------------------------------- #
def periodic_signal(n: int, *, sampling_frequency: float = 10.0, seed: int = 0) -> DiscreteSignal:
    """A noisy periodic bandwidth-like signal used by all kernel benchmarks."""
    rng = np.random.default_rng(seed)
    t = np.arange(n) / sampling_frequency
    period = max(n / sampling_frequency / 25.0, 2.0 / sampling_frequency)
    samples = np.clip(
        np.cos(2.0 * np.pi * t / period) + 0.1 * rng.standard_normal(n), 0.0, None
    )
    return DiscreteSignal(samples=samples, sampling_frequency=sampling_frequency, t_start=0.0)


def synthetic_flush_streams(
    n_jobs: int,
    *,
    flushes_per_job: int = 8,
    requests_per_flush: int = 16,
    base_period: float = 8.0,
    seed: int = 0,
) -> dict[str, list]:
    """Per-job flush streams of periodic synthetic writes (service workload).

    Each job writes one burst of ``requests_per_flush`` requests per period
    and flushes at the end of the burst; jobs get slightly different periods
    and phase offsets so the service sees genuinely heterogeneous tenants.
    Returns a mapping job id -> list of :class:`FlushRecord`.
    """
    from repro.trace.jsonl import FlushRecord
    from repro.trace.record import IORequest

    rng = np.random.default_rng(seed)
    streams: dict[str, list] = {}
    for j in range(n_jobs):
        period = base_period * float(rng.uniform(0.8, 1.25))
        offset = float(rng.uniform(0.0, period))
        burst = period / 16.0
        flushes = []
        for i in range(flushes_per_job):
            phase_start = offset + i * period
            starts = phase_start + np.arange(requests_per_flush) * (burst / requests_per_flush)
            requests = tuple(
                IORequest(
                    rank=int(r % 4),
                    start=float(starts[r]),
                    end=float(starts[r] + burst / requests_per_flush),
                    nbytes=1 << 20,
                )
                for r in range(requests_per_flush)
            )
            flushes.append(
                FlushRecord(
                    flush_index=i,
                    timestamp=float(starts[-1] + burst / requests_per_flush),
                    requests=requests,
                    metadata={"application": "synthetic", "job": j} if i == 0 else {},
                )
            )
        streams[f"job-{j:03d}"] = flushes
    return streams


def run_service_benchmark(
    *,
    n_jobs: int = 100,
    flushes_per_job: int = 8,
    requests_per_flush: int = 16,
    max_workers: int = 4,
    sampling_frequency: float = 10.0,
    shards: int = 0,
    seed: int = 0,
) -> dict:
    """Drive ``n_jobs`` concurrent flush streams through the prediction service.

    The streams are interleaved round-robin (every job has a flush in flight
    at every round, the worst case for the broker) and the dispatcher pumps
    after each round.  Reports ingest-to-publish throughput and the detection
    latency distribution — the ``service`` section of ``BENCH_perf.json``.

    With ``shards > 0`` the same workload is routed through a
    :class:`~repro.service.sharding.ShardedService` of that many worker
    subprocesses — the ``service.sharded`` block of the report shows how
    jobs/sec scales with the shard count.
    """
    from repro.core.config import FtioConfig
    from repro.service import (
        PredictionService,
        ServiceConfig,
        SessionConfig,
        ShardedService,
    )

    streams = synthetic_flush_streams(
        n_jobs,
        flushes_per_job=flushes_per_job,
        requests_per_flush=requests_per_flush,
        seed=seed,
    )
    config = ServiceConfig(
        session=SessionConfig(
            config=FtioConfig(
                sampling_frequency=sampling_frequency,
                use_autocorrelation=False,
                compute_characterization=False,
            )
        ),
        max_workers=max_workers,
    )
    if shards > 0:
        service = ShardedService(shards, config)
    else:
        service = PredictionService(config)
    started = time.perf_counter()
    for round_index in range(flushes_per_job):
        for job, flushes in streams.items():
            service.ingest_flush(job, flushes[round_index])
        service.pump()
    service.drain()
    elapsed = time.perf_counter() - started
    stats = service.stats()
    if shards > 0:
        # The sharded stats() call already merged the latency windows.
        p50 = stats["p50_detection_latency_seconds"]
        p99 = stats["p99_detection_latency_seconds"]
    else:
        p50 = service.dispatcher.latency_percentile(50.0)
        p99 = service.dispatcher.latency_percentile(99.0)
    service.close()

    n_flushes = n_jobs * flushes_per_job
    return {
        "n_jobs": int(n_jobs),
        "n_flushes": int(n_flushes),
        "n_requests": int(stats["requests"]),
        "n_detections": int(stats["detections"]),
        "max_workers": int(max_workers),
        "shards": int(shards),
        # Sharding cannot beat the hardware: with fewer cores than shards the
        # curve is flat-to-negative (routing overhead, no parallelism gained).
        "cpu_count": int(os.cpu_count() or 1),
        "elapsed_seconds": float(elapsed),
        "jobs_per_second": float(n_jobs / elapsed) if elapsed > 0 else 0.0,
        "flushes_per_second": float(n_flushes / elapsed) if elapsed > 0 else 0.0,
        "p50_detection_latency_seconds": p50,
        "p99_detection_latency_seconds": p99,
    }


def run_gateway_benchmark(
    *,
    n_jobs: int = 32,
    flushes_per_job: int = 6,
    requests_per_flush: int = 16,
    max_workers: int = 2,
    sampling_frequency: float = 10.0,
    rtt_probes: int = 50,
    seed: int = 0,
) -> dict:
    """Drive concurrent flush streams through the TCP gateway end to end.

    The same round-robin workload as :func:`run_service_benchmark`, but every
    byte crosses the network stack: a :class:`~repro.client.ServiceClient`
    submits FTS1 frames over a loopback TCP connection to a
    :class:`~repro.service.gateway.ThreadedGateway` and pumps after each
    round.  Reports end-to-end throughput plus the control-plane round-trip
    latency distribution (``Stats`` request/response probes) — the
    ``service.gateway`` block of ``BENCH_perf.json`` (schema v4).
    """
    from repro.client import ServiceClient
    from repro.core.config import FtioConfig
    from repro.service import PredictionService, ServiceConfig, SessionConfig, ThreadedGateway

    streams = synthetic_flush_streams(
        n_jobs,
        flushes_per_job=flushes_per_job,
        requests_per_flush=requests_per_flush,
        seed=seed,
    )
    config = ServiceConfig(
        session=SessionConfig(
            config=FtioConfig(
                sampling_frequency=sampling_frequency,
                use_autocorrelation=False,
                compute_characterization=False,
            )
        ),
        max_workers=max_workers,
    )
    gateway = ThreadedGateway(PredictionService(config), own_engine=True).start()
    try:
        with ServiceClient(gateway.host, gateway.port, name="bench-client") as client:
            started = time.perf_counter()
            for round_index in range(flushes_per_job):
                for job, flushes in streams.items():
                    client.submit_flush(job, flushes[round_index])
                client.pump()
            client.drain()
            elapsed = time.perf_counter() - started

            round_trips = []
            for _ in range(rtt_probes):
                probe_start = time.perf_counter()
                stats = client.stats()
                round_trips.append(time.perf_counter() - probe_start)
            rtt = np.asarray(round_trips)
    finally:
        gateway.close()

    n_flushes = n_jobs * flushes_per_job
    return {
        "n_jobs": int(n_jobs),
        "n_flushes": int(n_flushes),
        "n_detections": int(stats["detections"]),
        "max_workers": int(max_workers),
        "elapsed_seconds": float(elapsed),
        "jobs_per_second": float(n_jobs / elapsed) if elapsed > 0 else 0.0,
        "flushes_per_second": float(n_flushes / elapsed) if elapsed > 0 else 0.0,
        "round_trip_p50_seconds": float(np.percentile(rtt, 50.0)),
        "round_trip_p99_seconds": float(np.percentile(rtt, 99.0)),
    }


def run_reshard_benchmark(
    *,
    n_jobs: int = 64,
    flushes_per_job: int = 5,
    requests_per_flush: int = 16,
    max_workers: int = 2,
    sampling_frequency: float = 10.0,
    shard_path: tuple[int, ...] = (2, 4, 1, 3, 2),
    seed: int = 0,
) -> dict:
    """Measure live resharding: migration throughput and ingest pause.

    Streams ``n_jobs`` concurrent jobs through a sharded service and walks
    the shard count along ``shard_path`` between ingest rounds — every hop a
    live :meth:`~repro.service.sharding.ShardedService.reshard` while the
    sessions are warm.  Each hop's wall-clock duration is the *pause*: the
    window during which frames for moving jobs are parked instead of served.
    Reports the sessions-moved/second migration rate and the pause
    distribution (p50/p99) — the ``service.reshard`` block of
    ``BENCH_perf.json`` (schema v5).
    """
    from repro.core.config import FtioConfig
    from repro.service import ServiceConfig, SessionConfig, ShardedService

    if len(shard_path) < 2:
        raise ValueError(f"shard_path needs at least one hop, got {shard_path!r}")
    if len(shard_path) - 1 > flushes_per_job:
        raise ValueError(
            f"shard_path needs at most flushes_per_job={flushes_per_job} hops, "
            f"got {len(shard_path) - 1}"
        )
    streams = synthetic_flush_streams(
        n_jobs,
        flushes_per_job=flushes_per_job,
        requests_per_flush=requests_per_flush,
        seed=seed,
    )
    config = ServiceConfig(
        session=SessionConfig(
            config=FtioConfig(
                sampling_frequency=sampling_frequency,
                use_autocorrelation=False,
                compute_characterization=False,
            )
        ),
        max_workers=max_workers,
    )
    service = ShardedService(shard_path[0], config)
    pauses: list[float] = []
    sessions_moved = 0
    try:
        for round_index in range(flushes_per_job):
            for job, flushes in streams.items():
                service.ingest_flush(job, flushes[round_index])
            service.pump()
            if round_index + 1 < len(shard_path):
                started = time.perf_counter()
                summary = service.reshard(shard_path[round_index + 1])
                pauses.append(time.perf_counter() - started)
                sessions_moved += summary["moved_sessions"]
        service.drain()
    finally:
        service.close()

    pause_array = np.asarray(pauses)
    total_pause = float(pause_array.sum())
    return {
        "n_jobs": int(n_jobs),
        "n_flushes": int(n_jobs * flushes_per_job),
        "shard_path": [int(count) for count in shard_path],
        "reshards": len(pauses),
        "sessions_moved": int(sessions_moved),
        "sessions_moved_per_second": (
            float(sessions_moved / total_pause) if total_pause > 0 else 0.0
        ),
        "pause_p50_seconds": float(np.percentile(pause_array, 50.0)),
        "pause_p99_seconds": float(np.percentile(pause_array, 99.0)),
        "pause_total_seconds": total_pause,
        "cpu_count": int(os.cpu_count() or 1),
    }


def run_autoscale_benchmark(
    *,
    n_jobs: int = 32,
    flushes_per_job: int = 2,
    requests_per_flush: int = 16,
    max_workers: int = 2,
    sampling_frequency: float = 10.0,
    seed: int = 0,
) -> dict:
    """Measure the zero-pause double-routed handover and the autoscaler ramp.

    Two sections, the ``service.autoscale`` block of ``BENCH_perf.json``
    (schema v8):

    * **Pause** — ingest ``n_jobs`` warm sessions at 2 shards, then grow to 4
      while submitting one fresh flush for every *moving* job during the
      migration window (the ``parked`` phase callback).  With
      ``double_route=True`` the frame is delivered to the old owner
      immediately, so its pause is just the route call; with
      ``double_route=False`` the frame is parked until the handover replays
      it, so its pause runs to the end of the reshard.  Both distributions
      are reported; their ratio is the headline improvement.
    * **Ramp** — a scripted-clock :class:`~repro.service.autoscaler.Autoscaler`
      driven over a deterministic load ramp (all sessions up, then all but
      two finished and reaped).  The shard count must climb to the configured
      ceiling and descend back to the floor: grow twice, shrink twice.
    """
    from repro.core.config import FtioConfig
    from repro.service import (
        AutoscaleConfig,
        Autoscaler,
        HashRing,
        ServiceConfig,
        SessionConfig,
        ShardedService,
    )

    streams = synthetic_flush_streams(
        n_jobs,
        flushes_per_job=flushes_per_job,
        requests_per_flush=requests_per_flush,
        seed=seed,
    )
    config = ServiceConfig(
        session=SessionConfig(
            config=FtioConfig(
                sampling_frequency=sampling_frequency,
                use_autocorrelation=False,
                compute_characterization=False,
            )
        ),
        max_workers=max_workers,
    )

    def measure_pause(double_route: bool) -> dict:
        moving = [
            job
            for job in streams
            if HashRing(2).shard_for(job) != HashRing(4).shard_for(job)
        ]
        service = ShardedService(2, config)
        pauses: list[float] = []
        submit_at: dict[str, float] = {}

        def on_phase(phase: str) -> None:
            if phase != "parked":
                return
            for job in moving:
                started = time.perf_counter()
                service.ingest_flush(job, streams[job][1])
                if double_route:
                    pauses.append(time.perf_counter() - started)
                else:
                    submit_at[job] = started

        try:
            for job, flushes in streams.items():
                service.ingest_flush(job, flushes[0])
            service.pump()
            summary = service.reshard(4, on_phase=on_phase, double_route=double_route)
            ended = time.perf_counter()
            if not double_route:
                pauses.extend(ended - started for started in submit_at.values())
            service.pump()
            service.drain()
        finally:
            service.close()
        pause_array = np.asarray(pauses)
        return {
            "frames": len(pauses),
            "double_routed_frames": int(summary["double_routed_frames"]),
            "pause_p50_seconds": float(np.percentile(pause_array, 50.0)),
            "pause_p99_seconds": float(np.percentile(pause_array, 99.0)),
        }

    double = measure_pause(True)
    parked = measure_pause(False)

    # Deterministic load ramp under a scripted clock: offered load saturates
    # one shard, the autoscaler climbs to the ceiling, the load drains and it
    # descends to the floor (cooldown and hysteresis streaks included).
    ramp_config = AutoscaleConfig(
        min_shards=1,
        max_shards=3,
        cooldown_seconds=5.0,
        high_sessions_per_shard=5.0,
        low_sessions_per_shard=2.0,
        low_pending_per_shard=4.0,
        high_p99_latency_seconds=2000.0,
        low_p99_latency_seconds=1000.0,
        up_consecutive=1,
        down_consecutive=2,
        step_shards=1,
    )
    tick_seconds = (0.0, 2.0, 6.0, 12.0, 18.0, 20.0, 22.0, 26.0, 28.0)
    service = ShardedService(1, config)
    shard_counts = [service.n_shards]
    actions: list[str] = []
    try:
        scaler = Autoscaler(service, ramp_config)
        for job, flushes in streams.items():
            service.ingest_flush(job, flushes[0])
        service.pump()
        for now in tick_seconds[:4]:
            actions.append(scaler.tick(now).action)
            shard_counts.append(service.n_shards)
        for job in sorted(streams)[:-2]:
            service.finish_job(job)
        service.drain()
        service.reap_finished()
        for now in tick_seconds[4:]:
            actions.append(scaler.tick(now).action)
            shard_counts.append(service.n_shards)
        decisions = dict(scaler.decision_counts)
    finally:
        service.close()

    return {
        "n_jobs": int(n_jobs),
        "moving_jobs": int(double["frames"]),
        "double_route": double,
        "parked_baseline": parked,
        "pause_improvement": (
            float(parked["pause_p99_seconds"] / double["pause_p99_seconds"])
            if double["pause_p99_seconds"] > 0
            else 0.0
        ),
        "ramp": {
            "tick_seconds": [float(t) for t in tick_seconds],
            "shard_counts": [int(count) for count in shard_counts],
            "actions": actions,
            "peak_shards": int(max(shard_counts)),
            "final_shards": int(shard_counts[-1]),
            "decisions": decisions,
        },
        "cpu_count": int(os.cpu_count() or 1),
    }


def run_sharded_scaling_benchmark(
    *,
    shard_counts: tuple[int, ...] = (1, 2, 4),
    n_jobs: int = 64,
    flushes_per_job: int = 6,
    max_workers: int = 2,
    seed: int = 0,
) -> dict:
    """Jobs/sec of the sharded service at several shard counts.

    Returns the ``service.sharded`` block of ``BENCH_perf.json`` (schema v3):
    one :func:`run_service_benchmark` entry per shard count, keyed by the
    stringified count.
    """
    return {
        str(shards): run_service_benchmark(
            n_jobs=n_jobs,
            flushes_per_job=flushes_per_job,
            max_workers=max_workers,
            shards=shards,
            seed=seed,
        )
        for shards in shard_counts
    }


def run_batch_detect_benchmark(
    *,
    n_jobs: int = 256,
    flushes_per_job: int = 4,
    period: float = 4.0,
    requests_per_flush: int = 8,
    sampling_frequency: float = 10.0,
    repeats: int = 5,
    seed: int = 0,
) -> dict:
    """Batched vs sequential detection over ``n_jobs`` concurrent due sessions.

    Every job runs the *same* flush schedule (identical period and phase), so
    all sessions discretize to one ``(n_samples, fs)`` window group — the
    dispatcher's best case and the configuration the batched kernels are
    built for.  Two things are measured:

    * the **kernel stage** (re-runnable, pure): one
      :func:`~repro.service.batch.compute_batch_kernels` call over the whole
      fleet vs the exact per-session work it replaces — the
      ``dft`` + power-spectrum + Z-score + outlier-detect sequence
      :meth:`~repro.core.ftio.Ftio.analyze_signal` runs when no kernels are
      supplied — isolating what the 2-D FFT + shared reductions buy;
    * the **end-to-end detection pass** (single shot on fresh sessions):
      :func:`~repro.service.batch.detect_sessions_inline` vs a per-session
      ``backend.detect`` loop, claiming/committing through the same two-phase
      session protocol the dispatcher uses.

    The ``service.batch_detect`` block of ``BENCH_perf.json`` (schema v6);
    the kernel-stage speedup is floor-guarded at 5x by
    ``benchmarks/test_perf_regression.py``.
    """
    from repro.freq.outliers import make_detector
    from repro.freq.spectrum import power_spectrum_from_dft
    from repro.service import SessionConfig, ThreadBackend, detect_sessions_inline
    from repro.service.batch import compute_batch_kernels
    from repro.service.session import JobSession
    from repro.trace.jsonl import FlushRecord
    from repro.trace.record import IORequest
    from repro.utils.stats import zscores

    config = FtioConfig(
        sampling_frequency=sampling_frequency,
        use_autocorrelation=False,
        compute_characterization=False,
    )
    session_config = SessionConfig(config=config)
    rng = np.random.default_rng(seed)
    burst = period / 16.0

    def build_sessions() -> list[JobSession]:
        sessions = []
        for j in range(n_jobs):
            session = JobSession(f"job-{j:03d}", session_config)
            for i in range(flushes_per_job):
                phase_start = i * period
                starts = phase_start + np.arange(requests_per_flush) * (
                    burst / requests_per_flush
                )
                nbytes = int(rng.integers(1 << 10, 1 << 20))
                requests = tuple(
                    IORequest(
                        rank=int(r % 4),
                        start=float(starts[r]),
                        end=float(starts[r] + burst / requests_per_flush),
                        nbytes=nbytes,
                    )
                    for r in range(requests_per_flush)
                )
                session.ingest(
                    FlushRecord(
                        flush_index=i,
                        timestamp=float(phase_start + period),
                        requests=requests,
                    )
                )
            sessions.append(session)
        return sessions

    # Kernel stage: prepare every window once (outside the timed region),
    # then time the pure kernel computation both ways.
    sessions = build_sessions()
    signals = []
    configs = []
    for session in sessions:
        task = session.begin_batch_detect()
        if task is None:
            continue
        prep = session.predictor.prepare_step(task.trace, now=task.now)
        session.abort_batch_detect()
        signals.append(prep.signal)
        configs.append(config)
    if not signals or any(signal is None for signal in signals):
        raise RuntimeError("batch benchmark produced sessions with no window")
    window_samples = int(signals[0].n_samples)
    window_groups = len({(s.n_samples, float(s.sampling_frequency)) for s in signals})

    def sequential_kernels() -> list:
        # Exactly the per-session transforms ``analyze_signal`` runs when it
        # is handed no kernels (repro/core/ftio.py): single-signal DFT, power
        # spectrum, Z-scores, then the outlier detector's own pass.
        out = []
        for signal, cfg in zip(signals, configs):
            dft_result = dft(signal.samples, signal.sampling_frequency)
            spectrum = power_spectrum_from_dft(dft_result)
            power = spectrum.analysis_power
            scores = zscores(power)
            detector = make_detector(cfg.outlier_method, **cfg.outlier_kwargs)
            out.append((dft_result, scores, detector.detect(power, spectrum.analysis_frequencies)))
        return out

    batched_timing = time_callable(
        lambda: compute_batch_kernels(signals, configs),
        name=f"batch_kernels_{n_jobs}",
        repeats=repeats,
    )
    sequential_timing = time_callable(
        sequential_kernels,
        name=f"sequential_kernels_{n_jobs}",
        repeats=repeats,
    )

    # End-to-end: one full claim->prepare->kernels->commit pass over fresh
    # due sessions, through the same entry points the dispatcher uses.
    backend = ThreadBackend()
    sequential_sessions = build_sessions()
    started = time.perf_counter()
    sequential_steps = [backend.detect(session) for session in sequential_sessions]
    detect_sequential = time.perf_counter() - started

    batched_sessions = build_sessions()
    started = time.perf_counter()
    report = detect_sessions_inline(batched_sessions)
    detect_batched = time.perf_counter() - started
    if report.failures or sum(s is not None for s in report.steps) != sum(
        s is not None for s in sequential_steps
    ):
        raise RuntimeError("batched and sequential passes disagreed on detections")

    return {
        "n_jobs": int(n_jobs),
        "window_samples": window_samples,
        "window_groups": int(window_groups),
        "kernel_sequential_seconds": sequential_timing.best,
        "kernel_batched_seconds": batched_timing.best,
        "kernel_speedup": sequential_timing.best / max(batched_timing.best, 1e-12),
        "detect_sequential_seconds": float(detect_sequential),
        "detect_batched_seconds": float(detect_batched),
        "detect_speedup": float(detect_sequential) / max(float(detect_batched), 1e-12),
        "n_detections": int(sum(step is not None for step in report.steps)),
    }


def run_ingest_copies_benchmark(
    *,
    n_jobs: int = 8,
    flushes_per_job: int = 64,
    requests_per_flush: int = 16,
    chunk_bytes: int = 4096,
    ring_bytes: int = 1 << 16,
    seed: int = 0,
) -> dict:
    """Copy accounting and throughput of the zero-copy ingest path.

    One synthetic FTS1 frame stream is pushed through three hops and each
    hop's ``bytes_copied_per_frame`` counter is recorded:

    * **whole chunks** — the stream fed to a
      :class:`~repro.trace.framing.FrameSplitter` in one piece: every frame
      is emitted as a borrowed view, the counter must read exactly ``0.0``;
    * **dribbled chunks** — the same stream fed ``chunk_bytes`` at a time:
      only chunk-spanning frames pay a join, so the counter stays below one
      frame's worth of bytes;
    * **shared-memory ring** — the stream written through a
      :class:`~repro.service.shm_ring.ShmRingWriter` and split out of the
      reader's borrowed views (detaching between reclaims, as a shard does),
      with wall-clock MB/s and frames/s for the full hop.

    The ``service.ingest_copies`` block of ``BENCH_perf.json`` (schema v6).
    """
    import threading

    from repro.service.shm_ring import ShmRingReader, ShmRingWriter
    from repro.trace.framing import FrameSplitter, encode_frame

    streams = synthetic_flush_streams(
        n_jobs,
        flushes_per_job=flushes_per_job,
        requests_per_flush=requests_per_flush,
        seed=seed,
    )
    payload = b"".join(
        encode_frame(flush, job=job)
        for job, flushes in streams.items()
        for flush in flushes
    )
    n_frames = n_jobs * flushes_per_job

    whole = FrameSplitter()
    whole.feed(payload)
    assert sum(1 for _ in whole.raw_frames()) == n_frames

    chunked = FrameSplitter()
    chunked_frames = 0
    for offset in range(0, len(payload), chunk_bytes):
        chunked.feed(payload[offset : offset + chunk_bytes])
        chunked_frames += sum(1 for _ in chunked.raw_frames())
    assert chunked_frames == n_frames

    ring_splitter = FrameSplitter()
    ring_frames = 0

    def consume(reader: ShmRingReader) -> None:
        nonlocal ring_frames
        while not reader.eof:
            reader.pump_doorbell()
            views = reader.views()
            for view in views:
                ring_splitter.feed(view)
                ring_frames += sum(1 for _ in ring_splitter.raw_frames())
                # The ring reclaims this span at ack(): materialize any
                # buffered partial frame before letting go of the view.
                ring_splitter.detach()
                view.release()
            reader.ack()

    import socket

    writer = ShmRingWriter(capacity=ring_bytes)
    parent_end, shard_end = socket.socketpair()
    reader = ShmRingReader(writer.handle, shard_end)
    consumer = threading.Thread(target=consume, args=(reader,))
    started = time.perf_counter()
    consumer.start()
    try:
        writer.bind(parent_end)
        writer.write(payload)
    finally:
        parent_end.close()
        consumer.join(timeout=60)
    elapsed = time.perf_counter() - started
    reader.close()
    shard_end.close()
    writer.close()
    if consumer.is_alive() or ring_frames != n_frames:
        raise RuntimeError(
            f"ring hop delivered {ring_frames}/{n_frames} frames "
            f"(consumer alive: {consumer.is_alive()})"
        )

    return {
        "n_frames": int(n_frames),
        "bytes_total": int(len(payload)),
        "frame_bytes_mean": float(len(payload) / n_frames),
        "chunk_bytes": int(chunk_bytes),
        "whole_chunk_bytes_copied_per_frame": float(whole.bytes_copied_per_frame),
        "chunked_bytes_copied_per_frame": float(chunked.bytes_copied_per_frame),
        "ring_bytes": int(ring_bytes),
        "ring_bytes_copied_per_frame": float(ring_splitter.bytes_copied_per_frame),
        "ring_mb_per_second": (
            float(len(payload) / elapsed / 1e6) if elapsed > 0 else 0.0
        ),
        "ring_frames_per_second": float(n_frames / elapsed) if elapsed > 0 else 0.0,
    }


def run_obs_overhead_benchmark(
    *,
    n_jobs: int = 64,
    flushes_per_job: int = 6,
    requests_per_flush: int = 16,
    repeats: int = 5,
    sampling_frequency: float = 10.0,
    seed: int = 0,
) -> dict:
    """Cost of the unified metrics layer: the same workload, registry on vs off.

    Runs the round-robin service workload twice per repeat — once with
    ``ServiceConfig(metrics=True)`` (the default: counter views plus the
    dispatcher/kernel latency histograms) and once with ``metrics=False`` —
    **interleaved**, so thermal or scheduler drift hits both variants alike,
    and takes the best of ``repeats`` for each.  Inline dispatch
    (``max_workers=0``) keeps the run deterministic and puts every
    instrumented hot path on the measured thread, the worst case for
    instrumentation cost.

    Reports ``overhead_fraction`` — best-instrumented over best-bare, minus
    one.  The perf-regression floor asserts it stays below 5 %; by design it
    should be far lower, since counters are snapshot-time views and only
    histogram ``observe`` calls (per evaluation, not per frame) touch the
    hot path.  The ``obs.overhead`` block of ``BENCH_perf.json`` (schema v7).
    """
    from repro.core.config import FtioConfig
    from repro.service import PredictionService, ServiceConfig, SessionConfig

    streams = synthetic_flush_streams(
        n_jobs,
        flushes_per_job=flushes_per_job,
        requests_per_flush=requests_per_flush,
        seed=seed,
    )

    def run_once(metrics: bool) -> float:
        config = ServiceConfig(
            session=SessionConfig(
                config=FtioConfig(
                    sampling_frequency=sampling_frequency,
                    use_autocorrelation=False,
                    compute_characterization=False,
                )
            ),
            metrics=metrics,
        )
        service = PredictionService(config)
        try:
            started = time.perf_counter()
            for round_index in range(flushes_per_job):
                for job, flushes in streams.items():
                    service.ingest_flush(job, flushes[round_index])
                service.pump(wait_for_batch=True)
            service.drain()
            return time.perf_counter() - started
        finally:
            service.close()

    run_once(True)  # warmup both code paths (imports, numpy caches)
    run_once(False)
    enabled: list[float] = []
    disabled: list[float] = []
    for _ in range(max(1, repeats)):
        enabled.append(run_once(True))
        disabled.append(run_once(False))
    best_on = min(enabled)
    best_off = min(disabled)
    n_flushes = n_jobs * flushes_per_job
    return {
        "n_jobs": int(n_jobs),
        "n_flushes": int(n_flushes),
        "repeats": int(max(1, repeats)),
        "metrics_on_seconds": float(best_on),
        "metrics_off_seconds": float(best_off),
        "metrics_on_flushes_per_second": (
            float(n_flushes / best_on) if best_on > 0 else 0.0
        ),
        "metrics_off_flushes_per_second": (
            float(n_flushes / best_off) if best_off > 0 else 0.0
        ),
        "overhead_fraction": (
            float(best_on / best_off - 1.0) if best_off > 0 else 0.0
        ),
    }


def run_federation_benchmark(
    *,
    n_jobs: int = 32,
    flushes_per_job: int = 6,
    requests_per_flush: int = 16,
    n_shards: int = 2,
    max_workers: int = 2,
    sampling_frequency: float = 10.0,
    heartbeat_probes: int = 50,
    seed: int = 0,
) -> dict:
    """Federated topology vs local forks: gateway throughput + heartbeat RTT.

    Drives the :func:`run_gateway_benchmark` workload through a
    :class:`~repro.service.gateway.ThreadedGateway` twice — once over
    ``n_shards`` local forks, once over ``n_shards`` real ``repro-shard``
    worker *processes* dialing home over 127.0.0.1 TCP (the full federation
    wire path: registration handshake, framed-TCP data plane, read-plane
    stats) — and probes the remote topology's heartbeat round trip.
    Reports both jobs/sec figures, their ratio, and the heartbeat RTT
    p50/p99: the ``service.federation`` block of ``BENCH_perf.json``
    (schema v9).  Loopback TCP stands in for the network; the benchmark
    pins the protocol overhead, not the speed of light.
    """
    import subprocess
    import sys

    from repro.client import ServiceClient
    from repro.core.config import FtioConfig
    from repro.service import (
        ServiceConfig,
        SessionConfig,
        ShardedService,
        ThreadedGateway,
    )

    streams = synthetic_flush_streams(
        n_jobs,
        flushes_per_job=flushes_per_job,
        requests_per_flush=requests_per_flush,
        seed=seed,
    )

    def config(**extra) -> ServiceConfig:
        return ServiceConfig(
            session=SessionConfig(
                config=FtioConfig(
                    sampling_frequency=sampling_frequency,
                    use_autocorrelation=False,
                    compute_characterization=False,
                )
            ),
            max_workers=max_workers,
            **extra,
        )

    def drive(engine) -> tuple[float, dict]:
        gateway = ThreadedGateway(engine, own_engine=True).start()
        try:
            with ServiceClient(gateway.host, gateway.port, name="fed-bench") as client:
                started = time.perf_counter()
                for round_index in range(flushes_per_job):
                    for job, flushes in streams.items():
                        client.submit_flush(job, flushes[round_index])
                    client.pump()
                client.drain()
                elapsed = time.perf_counter() - started
                stats = client.stats()
        finally:
            gateway.close()
        return elapsed, stats

    local_elapsed, local_stats = drive(ShardedService(n_shards, config()))

    import socket as socket_module

    probe = socket_module.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    src_root = str(Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    workers = [
        subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.shard",
                "--connect",
                f"127.0.0.1:{port}",
                "--name",
                f"bench-w{index}",
            ],
            env=env,
        )
        for index in range(n_shards)
    ]
    rtts = np.zeros(0)
    try:
        engine = ShardedService(
            n_shards,
            config(shard_port=port),
            placement=["remote"] * n_shards,
        )
        samples: list[float] = []
        gateway = ThreadedGateway(engine, own_engine=True).start()
        try:
            with ServiceClient(gateway.host, gateway.port, name="fed-bench") as client:
                started = time.perf_counter()
                for round_index in range(flushes_per_job):
                    for job, flushes in streams.items():
                        client.submit_flush(job, flushes[round_index])
                    client.pump()
                client.drain()
                remote_elapsed = time.perf_counter() - started
                remote_stats = client.stats()
            for _ in range(max(1, heartbeat_probes)):
                round_rtts = engine.heartbeat()
                samples.extend(rtt for rtt in round_rtts.values() if rtt is not None)
        finally:
            gateway.close()
        rtts = np.asarray(samples if samples else [0.0])
    finally:
        for worker in workers:
            if worker.poll() is None:
                worker.kill()
            worker.wait()

    n_flushes = n_jobs * flushes_per_job
    local_jps = float(n_jobs / local_elapsed) if local_elapsed > 0 else 0.0
    remote_jps = float(n_jobs / remote_elapsed) if remote_elapsed > 0 else 0.0
    return {
        "n_jobs": int(n_jobs),
        "n_flushes": int(n_flushes),
        "n_shards": int(n_shards),
        "local_detections": int(local_stats["detections"]),
        "remote_detections": int(remote_stats["detections"]),
        "local_elapsed_seconds": float(local_elapsed),
        "remote_elapsed_seconds": float(remote_elapsed),
        "local_jobs_per_second": local_jps,
        "remote_jobs_per_second": remote_jps,
        "remote_over_local": (
            float(remote_jps / local_jps) if local_jps > 0 else 0.0
        ),
        "heartbeat_rtt_p50_seconds": float(np.percentile(rtts, 50.0)),
        "heartbeat_rtt_p99_seconds": float(np.percentile(rtts, 99.0)),
        "cpu_count": int(os.cpu_count() or 1),
    }


def run_perf_suite(
    sizes: tuple[int, ...] = DEFAULT_SIGNAL_SIZES,
    *,
    repeats: int = 3,
    reconstruct_bins: int = 64,
    seed: int = 0,
    include_direct: bool = True,
) -> dict:
    """Run the full perf suite and return the BENCH_perf report dict.

    ``include_direct=False`` skips the O(N²) reference timings (useful for a
    quick smoke run); the ``speedup`` entries are then omitted.
    """
    from repro.freq.autocorr import autocorrelation

    results: dict = {
        "autocorrelation": {},
        "reconstruct": {},
        "dft": {},
        "detect_offline": {},
    }

    ftio = Ftio(FtioConfig(sampling_frequency=10.0, use_autocorrelation=False))
    for n in sizes:
        signal = periodic_signal(n, seed=seed)
        samples = signal.samples

        fft_timing = time_callable(
            lambda: autocorrelation(samples), name=f"acf_fft_{n}", repeats=repeats
        )
        entry: dict = {"fft_seconds": fft_timing.best}
        if include_direct:
            # The direct method is quadratic; a single cold run is plenty at
            # 100k (no warmup either — it would double the suite's cost).
            large = n >= 50_000
            direct_timing = time_callable(
                lambda: direct_autocorrelation(samples),
                name=f"acf_direct_{n}",
                repeats=1 if large else repeats,
                warmup=0 if large else 1,
            )
            entry["direct_seconds"] = direct_timing.best
            entry["speedup"] = direct_timing.best / max(fft_timing.best, 1e-12)
        results["autocorrelation"][str(n)] = entry

        spectrum = dft(samples, signal.sampling_frequency)
        dft_timing = time_callable(
            lambda: dft(samples, signal.sampling_frequency), name=f"dft_{n}", repeats=repeats
        )
        results["dft"][str(n)] = {"seconds": dft_timing.best}

        n_bins = min(reconstruct_bins, spectrum.n_bins - 1)
        bins = np.arange(1, n_bins + 1)
        vec_timing = time_callable(
            lambda: reconstruct(spectrum, bins=bins), name=f"reconstruct_{n}", repeats=repeats
        )
        rec_entry: dict = {"n_bins": int(n_bins), "vectorized_seconds": vec_timing.best}
        if include_direct:
            loop_timing = time_callable(
                lambda: loop_reconstruct(spectrum, bins=bins),
                name=f"reconstruct_loop_{n}",
                repeats=repeats,
            )
            rec_entry["loop_seconds"] = loop_timing.best
            rec_entry["speedup"] = loop_timing.best / max(vec_timing.best, 1e-12)
        results["reconstruct"][str(n)] = rec_entry

        detect_timing = time_callable(
            lambda: ftio.detect(signal), name=f"detect_{n}", repeats=repeats
        )
        results["detect_offline"][str(n)] = {"seconds": detect_timing.best}

    # Online replay over a finished HACC-IO-style trace (the Figure 15 loop).
    trace = hacc_io_trace(ranks=32, loops=12, period=8.0, first_phase_delay=6.0, seed=seed)
    flush_times = hacc_flush_times(trace)
    config = FtioConfig(
        sampling_frequency=10.0, use_autocorrelation=False, compute_characterization=False
    )
    replay_timing = time_callable(
        lambda: replay_online(trace, flush_times, config=config),
        name="online_replay",
        repeats=max(1, repeats - 1),
    )
    results["online_replay"] = {
        "n_requests": int(len(trace)),
        "n_steps": int(len(flush_times)),
        "seconds": replay_timing.best,
    }

    # One limitation-study sweep point (Figure 8 unit of work).
    study = LimitationStudy(
        library=PhaseLibrary.generate(n_phases=10, seed=seed),
        traces_per_point=3,
        sampling_frequency=1.0,
    )
    point = study.variability_points(sigma_over_mu=(0.5,), iterations=10)[0]
    sweep_timing = time_callable(
        lambda: study.run_point(point, seed=seed), name="sweep_point", repeats=1, warmup=0
    )
    results["sweep_point"] = {
        "traces": study.traces_per_point,
        "seconds": sweep_timing.best,
    }

    # Streaming service under 100+ concurrent jobs (jobs/sec, p99 latency),
    # plus the multi-process scaling curve at shards = 1 / 2 / 4, the
    # TCP-gateway end-to-end throughput / round-trip latency, and the live
    # resharding migration rate / ingest-pause distribution.
    results["service"] = run_service_benchmark(seed=seed)
    results["service"]["sharded"] = run_sharded_scaling_benchmark(seed=seed)
    results["service"]["gateway"] = run_gateway_benchmark(seed=seed)
    results["service"]["reshard"] = run_reshard_benchmark(seed=seed)
    # Autoscaler: zero-pause double-routed handover vs the parked baseline,
    # and the scripted grow-then-shrink ramp (schema v8).
    results["service"]["autoscale"] = run_autoscale_benchmark(seed=seed)
    # Batched cross-session kernels vs the sequential path at 256 due jobs,
    # and the copy accounting of the zero-copy ingest hops (schema v6).
    results["service"]["batch_detect"] = run_batch_detect_benchmark(seed=seed)
    results["service"]["ingest_copies"] = run_ingest_copies_benchmark(seed=seed)
    # Federation: dial-home TCP workers vs local forks behind the same
    # gateway, plus the heartbeat round-trip distribution (schema v9).
    results["service"]["federation"] = run_federation_benchmark(seed=seed)
    # Observability cost: the same workload with the metrics registry on vs
    # off, interleaved — instrumentation must stay within the 5 % floor.
    results["obs"] = {"overhead": run_obs_overhead_benchmark(seed=seed)}

    return {
        "schema_version": 9,
        "generated_at": int(time.time()),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "signal_sizes": [int(n) for n in sizes],
        "results": results,
    }


def _round_floats(value, *, significant_digits: int = 6):
    """Round every float in a nested report to N significant digits.

    Timings on shared runners fluctuate far beyond 6 significant digits, so
    keeping full ``repr`` precision only produces diff churn: two back-to-back
    runs rewrite every line of ``BENCH_perf.json`` without carrying
    information.  Rounding (plus sorted keys) keeps reruns minimal-diff.
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return float(f"{value:.{significant_digits}g}")
    if isinstance(value, dict):
        return {
            key: _round_floats(item, significant_digits=significant_digits)
            for key, item in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [_round_floats(item, significant_digits=significant_digits) for item in value]
    return value


#: Relative change below which a re-measured float keeps its previous value.
NOISE_TOLERANCE = 1.0 / 3.0
#: Absolute seconds below which any change is noise (mirrors bench_compare).
NOISE_ABS_SECONDS = 1e-3


def _within_noise(new: float, old: float, *, tolerance: float) -> bool:
    if abs(new - old) < NOISE_ABS_SECONDS:
        return True
    return old != 0 and abs(new / old - 1.0) <= tolerance


def _is_float_list(value) -> bool:
    """A list of measurements: at least one float, nothing but numbers."""
    return (
        isinstance(value, list)
        and any(isinstance(item, float) for item in value)
        and all(
            isinstance(item, (int, float)) and not isinstance(item, bool)
            for item in value
        )
    )


def _list_within_noise(new: list, old, *, tolerance: float) -> bool:
    """Whether every element of a re-measured float list is within noise."""
    if not isinstance(old, list) or len(old) != len(new):
        return False
    return all(
        isinstance(previous, (int, float))
        and not isinstance(previous, bool)
        and _within_noise(float(item), float(previous), tolerance=tolerance)
        for item, previous in zip(new, old)
    )


def _stable_merge(new, old, *, tolerance: float):
    """Prefer ``old`` values whenever ``new`` only moved within noise.

    Counts and structure always follow ``new``; floats fall back to the
    previously written value when the relative change is under ``tolerance``
    or the absolute change is tiny — so a rerun with no real perf change
    rewrites nothing.

    Float siblings in one dict are a single measurement group from a single
    run: derived values live next to their inputs (``speedup`` next to
    ``direct_seconds``/``fft_seconds``, ``jobs_per_second`` next to
    ``n_jobs``/``elapsed_seconds``), so keeping some old and some new would
    write a file whose numbers contradict each other — e.g. a sub-millisecond
    FFT timing frozen by the absolute slack while the speedup ratio moved
    beyond tolerance and was refreshed.  The old floats survive only when the
    *entire* group is within noise; one real move refreshes them all.
    """
    if isinstance(new, dict) and isinstance(old, dict):
        merged = {
            key: _stable_merge(value, old[key], tolerance=tolerance)
            if key in old and isinstance(value, dict)
            else value
            for key, value in new.items()
        }
        # Floats only: floats are *measurements* (noisy by nature); ints are
        # facts (counts, cpu_count, schema versions) and must always be
        # current — a 30% drop in n_detections is a real signal, not jitter.
        # Float *lists* (latency distributions, per-step timings) are
        # measurements too and join the same group: a list that merely
        # wobbled within noise must not refresh the group — that was the
        # hole that made every rerun rewrite the file (and its
        # ``generated_at`` stamp) whenever a group had a float-list sibling.
        floats = {
            key: value for key, value in new.items() if isinstance(value, float)
        }
        float_lists = {
            key: value for key, value in new.items() if _is_float_list(value)
        }
        group_stable = (
            (floats or float_lists)
            and all(
                key in old
                and isinstance(old[key], (int, float))
                and not isinstance(old[key], bool)
                and _within_noise(value, old[key], tolerance=tolerance)
                for key, value in floats.items()
            )
            and all(
                key in old
                and _list_within_noise(value, old[key], tolerance=tolerance)
                for key, value in float_lists.items()
            )
        )
        if group_stable:
            for key in floats:
                merged[key] = old[key]
            for key in float_lists:
                merged[key] = old[key]
        return merged
    if isinstance(new, float) and isinstance(old, (int, float)) and not isinstance(old, bool):
        if _within_noise(new, old, tolerance=tolerance):
            return old
    return new


def write_report(
    report: dict, path: str | Path, *, noise_tolerance: float = NOISE_TOLERANCE
) -> Path:
    """Write a perf report as stable JSON and return the path.

    Stability is deliberate (reruns used to rewrite every line of
    ``BENCH_perf.json`` as pure noise): keys are sorted, floats are rounded
    to 6 significant digits, and a dict whose float entries all moved within
    ``noise_tolerance`` of the previously written values keeps the old
    values (whole groups only, never field-by-field, so derived ratios stay
    consistent with their inputs).  When nothing at all changed, the
    previous file — ``generated_at`` included — is left byte-identical.
    """
    path = Path(path)
    payload = _round_floats(report)
    previous: dict | None = None
    if path.exists():
        try:
            previous = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):  # pragma: no cover - corrupt file
            previous = None
    if isinstance(previous, dict):
        payload = _stable_merge(payload, previous, tolerance=noise_tolerance)
        without_stamp = {k: v for k, v in payload.items() if k != "generated_at"}
        previous_without_stamp = {k: v for k, v in previous.items() if k != "generated_at"}
        if without_stamp == previous_without_stamp:
            payload = previous
        elif "generated_at" in report:
            # Something really moved: stamp the file with this run's time
            # (the merge would otherwise keep the old stamp as "unchanged").
            payload["generated_at"] = report["generated_at"]
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path
