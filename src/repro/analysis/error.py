"""Detection-error computation (Section III-A).

For every generated trace the limitation study compares the period Td found by
FTIO with the ground-truth average period T̄ of the trace (known only to the
generator): error = |Td − T̄| / T̄.  A trace for which FTIO finds no dominant
frequency is counted with an error of 1 (100 %), which is how non-detections
show up in the paper's box plots.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import FtioConfig
from repro.core.ftio import Ftio
from repro.core.result import FtioResult
from repro.exceptions import WorkloadError
from repro.trace.trace import Trace
from repro.workloads.synthetic import mean_period


def detection_error(detected_period: float | None, true_period: float) -> float:
    """Relative period error |Td − T̄| / T̄; 1.0 when nothing was detected."""
    if true_period <= 0:
        raise ValueError(f"true_period must be positive, got {true_period}")
    if detected_period is None or detected_period <= 0:
        return 1.0
    return abs(detected_period - true_period) / true_period


@dataclass(frozen=True)
class DetectionOutcome:
    """FTIO result of one trace together with its ground-truth comparison."""

    true_period: float
    detected_period: float | None
    error: float
    confidence: float
    refined_confidence: float | None
    sigma_vol: float | None
    sigma_time: float | None
    periodicity_score: float | None
    time_ratio: float | None
    result: FtioResult

    @property
    def detected(self) -> bool:
        """True when FTIO found a dominant frequency."""
        return self.detected_period is not None


def evaluate_trace(
    trace: Trace,
    *,
    config: FtioConfig | None = None,
    ftio: Ftio | None = None,
) -> DetectionOutcome:
    """Run FTIO on a generated trace and compare against its ground truth.

    Raises
    ------
    WorkloadError
        If the trace carries no usable ground truth.
    """
    if trace.ground_truth is None:
        raise WorkloadError("evaluate_trace needs a trace with ground truth")
    true = mean_period(trace)
    engine = ftio if ftio is not None else Ftio(config or FtioConfig(sampling_frequency=1.0))
    result = engine.detect(trace)
    characterization = result.characterization
    return DetectionOutcome(
        true_period=true,
        detected_period=result.period,
        error=detection_error(result.period, true),
        confidence=result.confidence,
        refined_confidence=result.refined_confidence,
        sigma_vol=characterization.sigma_vol if characterization else None,
        sigma_time=characterization.sigma_time if characterization else None,
        periodicity_score=characterization.periodicity_score if characterization else None,
        time_ratio=characterization.time_ratio if characterization else None,
        result=result,
    )
