"""Plain-text rendering of experiment results.

The benchmark harness regenerates the paper's tables and figure series as
text: aligned tables for per-configuration metrics and compact "series" lines
for box-plot style sweeps.  Keeping the rendering in the library (instead of
inside each benchmark) makes the output uniform and testable.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.analysis.sweep import BoxplotStats, SweepPointResult


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render ``rows`` as an aligned text table with the given ``headers``.

    Floats are shown with 4 significant digits; every other value uses ``str``.
    """
    rendered_rows = [[_format_cell(cell) for cell in row] for row in rows]
    all_rows = [list(map(str, headers)), *rendered_rows]
    widths = [max(len(row[i]) for row in all_rows) for i in range(len(headers))]

    def render(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()

    lines = [render(all_rows[0]), render(["-" * w for w in widths])]
    lines.extend(render(row) for row in rendered_rows)
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, bool) or cell is None:
        return str(cell)
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def format_boxplot(stats: BoxplotStats, *, as_percent: bool = False) -> str:
    """One-line summary of a box-plot distribution (median [q1, q3], mean)."""
    scale = 100.0 if as_percent else 1.0
    unit = "%" if as_percent else ""
    return (
        f"median {stats.median * scale:.3g}{unit} "
        f"[q1 {stats.q1 * scale:.3g}{unit}, q3 {stats.q3 * scale:.3g}{unit}], "
        f"mean {stats.mean * scale:.3g}{unit} (n={stats.count})"
    )


def format_sweep(results: Sequence[SweepPointResult], *, metric: str = "error") -> str:
    """Render a sweep as a table: one row per point with box-plot statistics.

    ``metric`` may be ``"error"`` or any :class:`DetectionOutcome` field name
    with numeric values (``sigma_vol``, ``sigma_time``, ``periodicity_score``,
    ``confidence``).
    """
    headers = ["point", "value", "median", "q1", "q3", "mean", "max", "n"]
    rows = []
    for result in results:
        if metric == "error":
            stats = result.error_stats()
        elif metric == "confidence":
            stats = BoxplotStats.from_values(result.confidences)
        else:
            stats = result.metric_stats(metric)
        rows.append(
            [
                result.point.label,
                result.point.value,
                stats.median,
                stats.q1,
                stats.q3,
                stats.mean,
                stats.maximum,
                stats.count,
            ]
        )
    return format_table(headers, rows)


def paper_comparison_table(rows: Iterable[tuple[str, object, object]]) -> str:
    """Render (quantity, paper value, measured value) triples as a table.

    Used by every benchmark to print the paper-vs-measured summary that is
    recorded in EXPERIMENTS.md.
    """
    return format_table(["quantity", "paper", "measured"], rows)
