"""Parameter sweeps of the limitation study (Figures 8 and 9).

Three sweeps are defined, one per panel of Figure 8 (the third also produces
Figure 9):

* :func:`phase_ratio_sweep` — the time between I/O phases relative to their
  length, with and without background noise (Figure 8a);
* :func:`desync_sweep` — the mean per-process delay ϕ added to the I/O phases
  (Figure 8b);
* :func:`variability_sweep` — the variability σ/µ of the compute time between
  I/O phases (Figures 8c and 9).

Each sweep point generates ``traces_per_point`` semi-synthetic traces, runs
FTIO on every one of them, and reports box-plot statistics of the detection
error and of the characterization metrics.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.error import DetectionOutcome, evaluate_trace
from repro.core.config import FtioConfig
from repro.core.ftio import Ftio
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int
from repro.workloads.noise import NoiseLevel
from repro.workloads.synthetic import (
    PhaseLibrary,
    SemiSyntheticGenerator,
    SyntheticAppConfig,
)


def _run_point_task(study: "LimitationStudy", point: "SweepPoint", seed: int) -> "SweepPointResult":
    """Module-level trampoline so sweep points can run in worker processes."""
    return study.run_point(point, seed=seed)


@dataclass(frozen=True)
class BoxplotStats:
    """Summary statistics of one distribution (mirrors the paper's box plots)."""

    mean: float
    median: float
    q1: float
    q3: float
    minimum: float
    maximum: float
    count: int

    @classmethod
    def from_values(cls, values: list[float] | np.ndarray) -> "BoxplotStats":
        """Compute the statistics of ``values`` (which must be non-empty)."""
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            raise ValueError("cannot summarize an empty distribution")
        return cls(
            mean=float(arr.mean()),
            median=float(np.median(arr)),
            q1=float(np.percentile(arr, 25)),
            q3=float(np.percentile(arr, 75)),
            minimum=float(arr.min()),
            maximum=float(arr.max()),
            count=int(arr.size),
        )


@dataclass(frozen=True)
class SweepPoint:
    """One x-axis position of a sweep."""

    label: str
    value: float
    app_config: SyntheticAppConfig


@dataclass(frozen=True)
class SweepPointResult:
    """All outcomes collected for one sweep point."""

    point: SweepPoint
    outcomes: tuple[DetectionOutcome, ...]

    @property
    def errors(self) -> np.ndarray:
        """Detection errors of all traces at this point."""
        return np.array([o.error for o in self.outcomes])

    @property
    def confidences(self) -> np.ndarray:
        """DFT confidences of all traces at this point."""
        return np.array([o.confidence for o in self.outcomes])

    def error_stats(self) -> BoxplotStats:
        """Box-plot statistics of the detection error."""
        return BoxplotStats.from_values(self.errors)

    def metric_stats(self, name: str) -> BoxplotStats:
        """Box-plot statistics of a characterization metric (sigma_vol, sigma_time, ...)."""
        values = [getattr(o, name) for o in self.outcomes if getattr(o, name) is not None]
        if not values:
            return BoxplotStats(
                mean=float("nan"),
                median=float("nan"),
                q1=float("nan"),
                q3=float("nan"),
                minimum=float("nan"),
                maximum=float("nan"),
                count=0,
            )
        return BoxplotStats.from_values(values)


@dataclass
class LimitationStudy:
    """Runs the semi-synthetic sweeps of Section III-A.

    Parameters
    ----------
    library:
        Phase library shared by every generated trace (the paper reuses the
        same 99 traced IOR phases for all experiments).
    traces_per_point:
        Number of traces per parameter combination (paper: 100).
    sampling_frequency:
        fs used by FTIO in the study (paper: 1 Hz).
    n_workers:
        Default worker-process count for :meth:`run`.  ``None`` or ``1`` keeps
        the serial path; larger values fan the sweep points out over a
        :class:`~concurrent.futures.ProcessPoolExecutor`.
    """

    library: PhaseLibrary = field(default_factory=lambda: PhaseLibrary.generate(seed=0))
    traces_per_point: int = 20
    sampling_frequency: float = 1.0
    use_autocorrelation: bool = False
    n_workers: int | None = None

    def __post_init__(self) -> None:
        check_positive_int(self.traces_per_point, "traces_per_point")
        self._generator = SemiSyntheticGenerator(library=self.library)
        self._ftio = Ftio(
            FtioConfig(
                sampling_frequency=self.sampling_frequency,
                use_autocorrelation=self.use_autocorrelation,
            )
        )

    # ------------------------------------------------------------------ #
    def run_point(self, point: SweepPoint, *, seed: SeedLike = None) -> SweepPointResult:
        """Generate and evaluate all traces of one sweep point."""
        rng = as_generator(seed)
        outcomes = []
        for _ in range(self.traces_per_point):
            trace = self._generator.generate(point.app_config, seed=rng)
            outcomes.append(evaluate_trace(trace, ftio=self._ftio))
        return SweepPointResult(point=point, outcomes=tuple(outcomes))

    def run(
        self,
        points: list[SweepPoint],
        *,
        seed: SeedLike = 0,
        n_workers: int | None = None,
    ) -> list[SweepPointResult]:
        """Run every sweep point with independent RNG streams.

        The per-point seeds are always drawn from ``seed`` in point order, so
        the serial path and every worker count produce bit-identical results.
        ``n_workers`` overrides the instance default; ``None``/``1`` runs
        serially in-process.
        """
        rng = as_generator(seed)
        point_seeds = [int(rng.integers(0, 2**31 - 1)) for _ in points]
        workers = n_workers if n_workers is not None else self.n_workers
        if workers is not None and workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {workers}")
        if workers is None or workers == 1 or len(points) <= 1:
            return [self.run_point(p, seed=s) for p, s in zip(points, point_seeds)]
        with ProcessPoolExecutor(max_workers=min(workers, len(points))) as pool:
            futures = [
                pool.submit(_run_point_task, self, p, s) for p, s in zip(points, point_seeds)
            ]
            return [future.result() for future in futures]

    def __getstate__(self) -> dict:
        # The generator and engine are rebuilt in the worker so the pickled
        # payload stays small (the library alone defines them).
        state = dict(self.__dict__)
        state.pop("_generator", None)
        state.pop("_ftio", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.__post_init__()

    # ------------------------------------------------------------------ #
    # the three sweeps of the paper
    # ------------------------------------------------------------------ #
    def phase_ratio_points(
        self,
        ratios: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0),
        *,
        noise: NoiseLevel | str = NoiseLevel.NONE,
        iterations: int = 20,
    ) -> list[SweepPoint]:
        """Figure 8a: compute time as a multiple of the I/O phase duration."""
        io_duration = self.library.mean_duration()
        points = []
        for ratio in ratios:
            points.append(
                SweepPoint(
                    label=f"tcpu={ratio:g}x tio, noise={NoiseLevel(noise).value}",
                    value=ratio,
                    app_config=SyntheticAppConfig(
                        iterations=iterations,
                        compute_mean=ratio * io_duration,
                        compute_std=0.0,
                        desync_mean=0.0,
                        noise=noise,
                    ),
                )
            )
        return points

    def desync_points(
        self,
        phis: tuple[float, ...] = (0.0, 5.5, 11.0, 22.0, 44.0),
        *,
        compute_mean: float = 11.0,
        iterations: int = 20,
    ) -> list[SweepPoint]:
        """Figure 8b: mean per-process delay ϕ added to the I/O phases."""
        return [
            SweepPoint(
                label=f"phi={phi:g}s",
                value=phi,
                app_config=SyntheticAppConfig(
                    iterations=iterations,
                    compute_mean=compute_mean,
                    compute_std=0.0,
                    desync_mean=phi,
                    noise=NoiseLevel.NONE,
                ),
            )
            for phi in phis
        ]

    def variability_points(
        self,
        sigma_over_mu: tuple[float, ...] = (0.0, 0.25, 0.5, 1.0, 2.0),
        *,
        compute_mean: float = 11.0,
        iterations: int = 20,
    ) -> list[SweepPoint]:
        """Figures 8c and 9: variability σ/µ of the compute time."""
        return [
            SweepPoint(
                label=f"sigma/mu={ratio:g}",
                value=ratio,
                app_config=SyntheticAppConfig(
                    iterations=iterations,
                    compute_mean=compute_mean,
                    compute_std=ratio * compute_mean,
                    desync_mean=0.0,
                    noise=NoiseLevel.NONE,
                ),
            )
            for ratio in sigma_over_mu
        ]
