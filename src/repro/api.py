"""The unified public API of the FTIO reproduction.

One frozen configuration object and four verbs cover the library's offline
and streaming entry points::

    import repro.api as api

    config = api.ReproConfig().with_analysis(sampling_frequency=10.0)

    result = api.detect(trace, config=config)          # offline detection
    steps = api.predict(trace, flush_times, config=config)  # online replay

    with api.serve(config.with_(shards=2)) as gateway:  # TCP service
        with api.connect(gateway.address) as client:    # blocking client
            client.submit_flush("job-0", flush)
            client.pump()

:class:`ReproConfig` subsumes the constructor kwargs previously scattered
across :class:`~repro.core.config.FtioConfig`,
:class:`~repro.service.session.SessionConfig`,
:class:`~repro.service.service.ServiceConfig` and the
:class:`~repro.service.sharding.ShardedService` /
:class:`~repro.service.gateway.ServiceGateway` constructors.  It is frozen;
derive variants with :meth:`ReproConfig.with_` /
:meth:`ReproConfig.with_analysis`, and lower it to the layer-specific
configs with :meth:`ReproConfig.session_config` /
:meth:`ReproConfig.service_config` when working with those layers directly
(they all remain public and fully supported).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any

from repro.core.config import FtioConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.client import ServiceClient
    from repro.core.ftio import FtioResult
    from repro.core.online import PredictionStep
    from repro.service.autoscaler import AutoscaleConfig
    from repro.service.gateway import ThreadedGateway
    from repro.service.service import PredictionService, ServiceConfig
    from repro.service.session import SessionConfig
    from repro.service.sharding import ShardedService


@dataclass(frozen=True)
class ReproConfig:
    """Every knob of the detect → predict → serve pipeline, in one place.

    Attributes
    ----------
    analysis:
        The FTIO analysis configuration (sampling frequency, outlier method,
        autocorrelation refinement, ...).
    adaptive_window:
        Online mode: enable the adaptive analysis window (Section II-D).
    max_samples:
        Per-job hard cap on resident requests in a streaming session.
    eviction_margin_periods:
        Extra periods of history kept behind the predictor's evictable cutoff.
    min_detection_interval:
        Minimum trace-time seconds between evaluations of one job.
    min_requests:
        Evaluations are skipped while fewer requests are resident.
    max_workers:
        Detection worker threads (0 = inline, deterministic).
    max_pending:
        Backpressure bound on in-flight evaluations.
    latency_window:
        Recent detection latencies retained for percentile statistics.
    backend:
        Detection backend: ``"thread"`` or ``"process"``.
    backend_workers:
        Worker count of a process backend (``None`` = CPU count).
    shards:
        Worker shards of the service; 0 runs single-process, N >= 1 spawns a
        :class:`~repro.service.sharding.ShardedService` of N subprocesses
        (the count is live-resizable afterwards — see
        :meth:`~repro.service.sharding.ShardedService.reshard` and
        :meth:`~repro.client.ServiceClient.resize`).
    replicas:
        Virtual nodes per shard on the consistent-hash ring.
    token:
        Wire-level tenant/auth nibble (0..15) required of frames and peers.
    auto_compact:
        Compact tailed spools after every successful snapshot.
    auto_revive:
        Transparently revive crashed shards from the last snapshot.
    revive_budget:
        Maximum automatic revives before crashes surface again.
    metrics:
        Maintain the unified metrics registry (counters, gauges, latency
        histograms; see :mod:`repro.obs`).
    spans:
        Record frame-lifecycle spans into a bounded journal (off by default;
        a debugging aid, not a production counter).
    span_capacity:
        Ring-buffer capacity of the span journal.
    host, port:
        TCP listen address of :func:`serve` (port 0 picks a free port).
    ops_port:
        When not ``None``, :func:`serve` also exposes the HTTP ops surface
        (``/healthz``, ``/status``, ``/metrics``) on this port (0 picks a
        free one; read ``gateway.ops_port`` afterwards).
    autoscale:
        When not ``None`` (and ``shards > 0``), :func:`serve` runs an
        :class:`~repro.service.autoscaler.Autoscaler` with this
        :class:`~repro.service.autoscaler.AutoscaleConfig`, growing and
        shrinking the shard topology with the offered load (zero-pause
        double-routed migrations; decisions on ``/status``).
    shard_port:
        When not ``None`` (and ``shards > 0``), the router listens on this
        TCP port for dial-home ``repro-shard`` workers (``python -m
        repro.shard --connect host:port``) so shards can run on other
        machines.
    placement:
        Per-shard placement (``"local"`` / ``"remote"``); remote slots adopt
        dial-home workers from ``shard_port``.  ``None`` = all local.
    heartbeat_timeout:
        Seconds without a read-plane heartbeat answer before a shard is
        declared dead (catches hung workers and lost connections, not just
        local process exits).
    """

    analysis: FtioConfig = field(default_factory=FtioConfig)
    # --- streaming session ------------------------------------------------ #
    adaptive_window: bool = True
    max_samples: int = 65_536
    eviction_margin_periods: float = 2.0
    min_detection_interval: float = 0.0
    min_requests: int = 1
    # --- service ----------------------------------------------------------- #
    max_workers: int = 0
    max_pending: int = 64
    latency_window: int = 4096
    backend: str = "thread"
    backend_workers: int | None = None
    shards: int = 0
    replicas: int = 64
    token: int | None = None
    auto_compact: bool = False
    auto_revive: bool = False
    revive_budget: int = 3
    # --- federation --------------------------------------------------------- #
    shard_port: int | None = None
    placement: tuple[str, ...] | None = None
    heartbeat_timeout: float = 5.0
    # --- observability ------------------------------------------------------ #
    metrics: bool = True
    spans: bool = False
    span_capacity: int = 2048
    # --- gateway ----------------------------------------------------------- #
    host: str = "127.0.0.1"
    port: int = 0
    ops_port: int | None = None
    autoscale: "AutoscaleConfig | None" = None

    # ------------------------------------------------------------------ #
    # builders
    # ------------------------------------------------------------------ #
    def with_(self, **changes: Any) -> "ReproConfig":
        """A copy with the given top-level fields replaced."""
        return replace(self, **changes)

    def with_analysis(self, **changes: Any) -> "ReproConfig":
        """A copy with the given :class:`FtioConfig` fields replaced."""
        return replace(self, analysis=self.analysis.with_updates(**changes))

    # ------------------------------------------------------------------ #
    # lowering to the layer configs
    # ------------------------------------------------------------------ #
    def session_config(self) -> "SessionConfig":
        """The per-job :class:`SessionConfig` this configuration describes."""
        from repro.service.session import SessionConfig

        return SessionConfig(
            config=self.analysis,
            adaptive_window=self.adaptive_window,
            max_samples=self.max_samples,
            eviction_margin_periods=self.eviction_margin_periods,
            min_detection_interval=self.min_detection_interval,
            min_requests=self.min_requests,
        )

    def service_config(self) -> "ServiceConfig":
        """The :class:`ServiceConfig` this configuration describes."""
        from repro.service.service import ServiceConfig

        return ServiceConfig(
            session=self.session_config(),
            max_workers=self.max_workers,
            max_pending=self.max_pending,
            latency_window=self.latency_window,
            backend=self.backend,
            backend_workers=self.backend_workers,
            token=self.token,
            auto_compact=self.auto_compact,
            auto_revive=self.auto_revive,
            revive_budget=self.revive_budget,
            metrics=self.metrics,
            spans=self.spans,
            span_capacity=self.span_capacity,
            ops_port=self.ops_port,
            autoscale=self.autoscale,
            shard_port=self.shard_port,
            heartbeat_timeout=self.heartbeat_timeout,
        )

    def build_service(self) -> "PredictionService | ShardedService":
        """Build the configured engine: single-process or sharded."""
        from repro.service.service import PredictionService
        from repro.service.sharding import ShardedService

        if self.shards > 0:
            return ShardedService(
                self.shards,
                self.service_config(),
                replicas=self.replicas,
                placement=None if self.placement is None else list(self.placement),
            )
        return PredictionService(self.service_config())


def _analysis_config(
    config: "ReproConfig | FtioConfig | None", overrides: dict[str, Any]
) -> FtioConfig:
    if config is None:
        return FtioConfig(**overrides)
    if isinstance(config, ReproConfig):
        config = config.analysis
    return config.with_updates(**overrides) if overrides else config


# --------------------------------------------------------------------- #
# the four verbs
# --------------------------------------------------------------------- #
def detect(
    source: Any, *, config: "ReproConfig | FtioConfig | None" = None, **overrides: Any
) -> "FtioResult":
    """Offline FTIO detection over a finished trace or signal.

    ``source`` is anything :meth:`repro.core.ftio.Ftio.detect` accepts (a
    :class:`~repro.trace.trace.Trace`, a bandwidth or discrete signal, a
    Darshan heatmap).  ``overrides`` tweak individual analysis fields on top
    of ``config`` — ``detect(trace, sampling_frequency=1.0)`` works without
    building any config object.
    """
    from repro.core.ftio import Ftio

    return Ftio(_analysis_config(config, overrides)).detect(source)


def predict(
    trace: Any,
    prediction_times: list[float],
    *,
    config: "ReproConfig | FtioConfig | None" = None,
    **overrides: Any,
) -> "list[PredictionStep]":
    """Online prediction replay: reveal ``trace`` flush by flush.

    Runs :func:`repro.core.online.replay_online` with the analysis settings
    of ``config`` (adaptive window included when a :class:`ReproConfig` is
    given).
    """
    from repro.core.online import replay_online

    adaptive = config.adaptive_window if isinstance(config, ReproConfig) else True
    return replay_online(
        trace,
        prediction_times,
        config=_analysis_config(config, overrides),
        adaptive_window=adaptive,
    )


def serve(
    config: "ReproConfig | None" = None,
    *,
    service: "PredictionService | ShardedService | None" = None,
    host: str | None = None,
    port: int | None = None,
    ops_port: int | None = None,
    autoscale: "AutoscaleConfig | None" = None,
) -> "ThreadedGateway":
    """Start a TCP gateway serving the configured prediction service.

    Builds the engine from ``config`` (single-process, or sharded when
    ``config.shards > 0``) — or fronts an existing ``service`` — and returns
    a started :class:`~repro.service.gateway.ThreadedGateway`.  The gateway
    owns an engine it built (closing the gateway closes it) but never an
    engine that was passed in.

    For a sharded engine the shard count is only the *initial* topology:
    it is mutable at runtime, locally via
    :meth:`~repro.service.gateway.ThreadedGateway.resize` or from any
    connected client via :meth:`~repro.client.ServiceClient.resize` — a
    live, minimal-movement reshard (sessions migrate over the protocol-v2
    chunked snapshot transfer; in-flight frames are parked and replayed).

    Use as a context manager::

        with api.serve(api.ReproConfig(shards=2)) as gateway:
            client = api.connect(gateway.address)
            client.resize(4)          # grow the live service to 4 shards

    Pass ``autoscale=AutoscaleConfig(...)`` (or set it on the config) to let
    the service drive those resizes itself from its own load signals.
    """
    from repro.service.gateway import ThreadedGateway

    config = config or ReproConfig()
    own_engine = service is None
    engine = config.build_service() if service is None else service
    gateway = ThreadedGateway(
        engine,
        host=host if host is not None else config.host,
        port=port if port is not None else config.port,
        token=config.token,
        ops_port=ops_port if ops_port is not None else config.ops_port,
        own_engine=own_engine,
        autoscale=autoscale if autoscale is not None else config.autoscale,
    )
    return gateway.start()


def connect(
    address: str,
    port: int | None = None,
    *,
    token: int | None = None,
    timeout: float = 30.0,
    name: str = "repro-client",
) -> "ServiceClient":
    """Connect a blocking :class:`~repro.client.ServiceClient` to a gateway.

    ``address`` is either a ``"host:port"`` string (the
    :attr:`~repro.service.gateway.ThreadedGateway.address` of a running
    gateway) or a bare host with ``port`` passed separately.
    """
    from repro.client import ServiceClient

    if port is None:
        host, _, port_text = address.rpartition(":")
        if not host or not port_text.isdigit():
            raise ValueError(
                f"connect() needs 'host:port' or (host, port), got {address!r}"
            )
        address, port = host, int(port_text)
    return ServiceClient(address, port, token=token, timeout=timeout, name=name)


__all__ = ["ReproConfig", "detect", "predict", "serve", "connect"]
