"""Client-side access to a running prediction service.

:class:`ServiceClient` is the blocking TCP client of the service gateway
(:mod:`repro.service.gateway`): connect, stream flushes, pump, read stats,
snapshot/restore, and subscribe to live predictions — all over the typed,
versioned control-plane protocol of :mod:`repro.service.protocol`.
"""

from repro.client.client import ServiceClient

__all__ = ["ServiceClient"]
