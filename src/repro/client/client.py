"""Blocking TCP client of the prediction-service gateway.

:class:`ServiceClient` connects to a :class:`~repro.service.gateway.
ServiceGateway`, performs the :class:`~repro.service.protocol.Hello` version
negotiation, and then exposes the service's whole control surface as plain
method calls: stream flushes in, pump, read stats, snapshot/restore, resize
the shard topology, and subscribe to the live prediction stream.

The conversation is strictly typed (:mod:`repro.service.protocol`); flush
payloads travel as ordinary FTS1 frames inside
:class:`~repro.service.protocol.SubmitFrames`, so the client is wire-format
compatible with every other producer (spool writers, socket feeds).

Asynchronous :class:`~repro.service.protocol.PredictionEvent` messages may
interleave with request/response pairs once :meth:`ServiceClient.subscribe`
ran; the client transparently queues them, and :meth:`ServiceClient.
predictions` / :meth:`ServiceClient.poll_predictions` hand them out in
arrival order.

Connection loss is handled per request: *idempotent* control calls
(``stats``, ``snapshot``, ``subscribe``, ``finish_job``, ``resize``)
transparently reconnect — a fresh socket, a fresh handshake, the
subscription re-established — and retry once; calls whose effect on the
server is unknowable after a drop (``submit``, ``pump``, ``drain``,
``restore``) raise the typed
:class:`~repro.exceptions.ConnectionLostError` instead of hanging or
silently double-applying.
"""

from __future__ import annotations

import socket
import time
from collections import deque
from collections.abc import Iterator, Sequence
from typing import TypeVar

from repro.exceptions import ConnectionLostError, ProtocolError, ServiceError
from repro.service import protocol as proto
from repro.service.publisher import PredictionUpdate
from repro.trace.framing import encode_frame
from repro.trace.jsonl import FlushRecord
from repro.trace.msgpack import packb

#: Socket read size of the reply loop.
_READ_CHUNK = 1 << 16

#: Requests that are safe to repeat after a reconnect: re-running them
#: against a server that already served the lost first attempt changes
#: nothing (``ResizeShards`` to the same count is a no-op; ``Subscribe`` and
#: ``FinishJob`` are naturally idempotent).
_IDEMPOTENT: tuple[type[proto.Message], ...] = (
    proto.Stats,
    proto.Snapshot,
    proto.Subscribe,
    proto.FinishJob,
    proto.ResizeShards,
)

R = TypeVar("R", bound=proto.Message)


class ServiceClient:
    """Blocking client of a prediction-service TCP gateway.

    Parameters
    ----------
    host, port:
        Gateway address (see :attr:`~repro.service.gateway.ThreadedGateway.
        host` / ``port``).
    token:
        Tenant/auth nibble presented in the handshake and stamped on every
        frame this client encodes (must match the server's token, if any).
    timeout:
        Socket timeout in seconds for connecting and for every reply.
    name:
        Client name reported in the handshake (diagnostics).
    versions:
        Protocol versions to offer in the handshake (defaults to everything
        this implementation speaks; pass ``(1,)`` to talk to — or test
        against — a v1-only server).
    reconnect:
        Transparently reconnect and retry idempotent calls after a dropped
        connection (one retry per call).  ``False`` makes every drop raise
        :class:`~repro.exceptions.ConnectionLostError`.

    The client is a context manager; leaving the ``with`` block sends
    :class:`~repro.service.protocol.Close` and disconnects.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        token: int | None = None,
        timeout: float = 30.0,
        name: str = "repro-client",
        versions: Sequence[int] | None = None,
        reconnect: bool = True,
    ) -> None:
        self._host = host
        self._port = int(port)
        self._token = token
        self._timeout = float(timeout)
        self._name = name
        self._versions: tuple[int, ...] = (
            tuple(int(v) for v in versions) if versions is not None
            else proto.SUPPORTED_VERSIONS
        )
        self._reconnect_enabled = bool(reconnect)
        self._decoder = proto.MessageDecoder()
        self._events: deque[PredictionUpdate] = deque()
        self._closed = False
        self._subscribed = False
        self._subscription_jobs: tuple[str, ...] | None = None
        #: Number of transparent reconnects performed so far.
        self.reconnects = 0
        #: Negotiated control-plane protocol version.
        self.protocol_version: int = 0
        #: Server name from the handshake.
        self.server: str = ""
        #: Shard count of the engine behind the gateway (0 = single process).
        self.shards: int = 0
        self._sock = self._connect()

    # ------------------------------------------------------------------ #
    # connection management
    # ------------------------------------------------------------------ #
    def _connect(self) -> socket.socket:
        # The handshake runs against a *local* socket and decoder so that a
        # rejected Hello (wrong token, no common version) never replaces
        # self._sock/self._decoder with a closed socket and half-fed decoder
        # — the previous connection state stays intact until the new one is
        # fully negotiated.
        sock = socket.create_connection((self._host, self._port), timeout=self._timeout)
        decoder = proto.MessageDecoder()
        try:
            hello = proto.Hello(
                versions=self._versions, token=self._token, client=self._name
            )
            sock.sendall(proto.encode_message(hello))
            reply = self._handshake_reply(sock, decoder)
        except BaseException:
            # A rejected handshake must not leak the connected socket —
            # __exit__/close are unreachable when __init__ raises.
            sock.close()
            raise
        self.protocol_version = reply.version
        self.server = reply.server
        self.shards = reply.shards
        self._decoder = decoder
        self._sock = sock
        return sock

    def _handshake_reply(
        self, sock: socket.socket, decoder: proto.MessageDecoder
    ) -> proto.HelloReply:
        """Read the HelloReply from a not-yet-adopted connection."""
        while True:
            for message in decoder.messages():
                if isinstance(message, proto.HelloReply):
                    return message
                if isinstance(message, proto.Error):
                    raise ServiceError(
                        f"Hello failed ({message.code}): {message.message}"
                    )
                raise ProtocolError(
                    f"expected HelloReply in reply to Hello, "
                    f"got {type(message).__name__}"
                )
            try:
                data = sock.recv(_READ_CHUNK)
            except TimeoutError:
                raise
            except OSError as exc:
                raise ConnectionLostError(f"connection lost: {exc}") from exc
            if not data:
                raise ConnectionLostError("server closed the connection")
            decoder.feed(data)

    def _reconnect(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already gone
            pass
        try:
            self._connect()
        except ConnectionLostError:
            raise
        except (OSError, ServiceError, ProtocolError) as exc:
            # The retry contract is typed end to end: a server that is gone,
            # still restarting, or rejecting the fresh handshake surfaces as
            # ConnectionLostError, never as a raw socket/handshake error from
            # inside the transparent retry.
            raise ConnectionLostError(
                f"reconnect to {self._host}:{self._port} failed: {exc}"
            ) from exc
        self.reconnects += 1
        if self._subscribed:
            # The push stream does not survive the old connection; restore
            # it before the retried request so no gap goes unnoticed.
            self._rpc_once(
                proto.Subscribe(jobs=self._subscription_jobs), proto.SubscribeReply
            )

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    def _send(self, message: proto.Message) -> None:
        if self._closed:
            raise ServiceError("client is closed")
        try:
            self._sock.sendall(proto.encode_message(message))
        except OSError as exc:
            raise ConnectionLostError(
                f"connection lost while sending {type(message).__name__}: {exc}"
            ) from exc

    def _read_message(self) -> proto.Message:
        """Next complete message from the stream (blocking, honors timeout)."""
        while True:
            for message in self._decoder.messages():
                return message
            try:
                data = self._sock.recv(_READ_CHUNK)
            except TimeoutError:
                raise
            except OSError as exc:
                raise ConnectionLostError(f"connection lost: {exc}") from exc
            if not data:
                raise ConnectionLostError("server closed the connection")
            self._decoder.feed(data)

    def _await_reply(self, reply_type: type[R], *, request_name: str) -> R:
        """Read messages until the typed reply (queueing prediction events).

        An :class:`~repro.service.protocol.Error` reply raises
        :class:`~repro.exceptions.ServiceError`; any other message type is a
        protocol violation.
        """
        while True:
            message = self._read_message()
            if isinstance(message, proto.PredictionEvent):
                self._events.append(PredictionUpdate.from_dict(message.update))
                continue
            if isinstance(message, proto.Error):
                raise ServiceError(
                    f"{request_name} failed ({message.code}): {message.message}"
                )
            if isinstance(message, reply_type):
                return message
            raise ProtocolError(
                f"expected {reply_type.__name__} in reply to {request_name}, "
                f"got {type(message).__name__}"
            )

    def _rpc_once(self, request: proto.Message, reply_type: type[R]) -> R:
        self._send(request)
        return self._await_reply(reply_type, request_name=type(request).__name__)

    def _rpc(self, request: proto.Message, reply_type: type[R]) -> R:
        """Send one request and return its typed reply.

        A connection drop mid-call reconnects and retries once when the
        request is idempotent; otherwise the typed
        :class:`~repro.exceptions.ConnectionLostError` propagates.
        """
        try:
            return self._rpc_once(request, reply_type)
        except ConnectionLostError:
            if (
                self._closed
                or not self._reconnect_enabled
                or not isinstance(request, _IDEMPOTENT)
            ):
                raise
            self._reconnect()
            return self._rpc_once(request, reply_type)

    # ------------------------------------------------------------------ #
    # data plane
    # ------------------------------------------------------------------ #
    def submit_flush(
        self, job: str, flush: FlushRecord, *, payload_format: str = "msgpack"
    ) -> int:
        """Encode one flush as an FTS1 frame and submit it; returns frames routed."""
        frame = encode_frame(flush, job=job, payload_format=payload_format, token=self._token)
        return self.submit_bytes(frame)

    def submit_bytes(self, data: bytes) -> int:
        """Submit raw FTS1-framed bytes; returns the frames completed by them."""
        return self._rpc(proto.SubmitFrames(data=data), proto.SubmitReply).frames

    # ------------------------------------------------------------------ #
    # evaluation and results
    # ------------------------------------------------------------------ #
    def pump(self) -> int:
        """Evaluate every due session; returns the number of evaluations.

        The updates published during the pump are queued as predictions
        (available via :meth:`predictions`).
        """
        reply = self._rpc(proto.Pump(), proto.PumpReply)
        self._queue_updates(reply.updates)
        return reply.submitted

    def drain(self) -> None:
        """Pump until nothing is due and nothing is in flight."""
        reply = self._rpc(proto.Drain(), proto.DrainReply)
        self._queue_updates(reply.updates)

    def finish_job(self, job: str) -> None:
        """Mark ``job`` finished (pending data is still evaluated, then idle)."""
        self._rpc(proto.FinishJob(job=job), proto.FinishJobReply)

    def stats(self) -> dict:
        """Service-wide counters of the engine behind the gateway."""
        return self._rpc(proto.Stats(), proto.StatsReply).stats

    def resize(self, n_shards: int) -> dict:
        """Live-reshard the engine to ``n_shards`` worker shards (protocol v2).

        Returns a summary dict (``n_shards``, ``moved_sessions``,
        ``moved_jobs``) and refreshes :attr:`shards`.  Safe to retry — and
        therefore transparently retried after a connection drop: resizing to
        a count the engine already has is a no-op.
        """
        if self.protocol_version < 2:
            raise ServiceError(
                f"the server negotiated protocol v{self.protocol_version}; "
                f"resize requires v2"
            )
        reply = self._rpc(proto.ResizeShards(n_shards=n_shards), proto.ResizeShardsReply)
        self.shards = reply.n_shards
        return {
            "n_shards": reply.n_shards,
            "moved_sessions": reply.moved_sessions,
            "moved_jobs": reply.moved_jobs,
        }

    # ------------------------------------------------------------------ #
    # snapshot transfer
    # ------------------------------------------------------------------ #
    def snapshot(self, *, max_chunk: int | None = None) -> dict:
        """Full service snapshot state (see :mod:`repro.service.snapshot`).

        Against a v2 server the state travels as a bounded
        :class:`~repro.service.protocol.SnapshotChunk` stream
        (``max_chunk`` payload bytes each, default
        :data:`~repro.service.protocol.DEFAULT_CHUNK_BYTES`) whenever it
        exceeds one chunk; a v1 server replies with a single
        :class:`~repro.service.protocol.SnapshotReply` and the client
        accepts both shapes.
        """
        if self.protocol_version < 2:
            return self._rpc(proto.Snapshot(), proto.SnapshotReply).state
        request = proto.Snapshot(
            max_chunk=(
                max(1, int(max_chunk)) if max_chunk is not None else proto.DEFAULT_CHUNK_BYTES
            )
        )
        try:
            return self._collect_state(request)
        except ConnectionLostError:
            if self._closed or not self._reconnect_enabled:
                raise
            self._reconnect()
            return self._collect_state(request)

    def _collect_state(self, request: proto.Snapshot) -> dict:
        self._send(request)
        assembler = proto.ChunkAssembler(expected_kind="snapshot")
        while True:
            message = self._read_message()
            if isinstance(message, proto.PredictionEvent):
                self._events.append(PredictionUpdate.from_dict(message.update))
                continue
            if isinstance(message, proto.Error):
                raise ServiceError(
                    f"Snapshot failed ({message.code}): {message.message}"
                )
            if isinstance(message, proto.SnapshotReply):
                if assembler.receiving:
                    raise ProtocolError(
                        "server interleaved a SnapshotReply into a chunk stream"
                    )
                return message.state
            if isinstance(message, proto.SnapshotChunk):
                state = assembler.feed(message)
                if state is not None:
                    return state
                continue
            raise ProtocolError(
                f"unexpected {type(message).__name__} in reply to Snapshot"
            )

    def restore(self, state: dict, *, max_chunk: int | None = None) -> int:
        """Load a snapshot into the engine; returns the sessions restored.

        Against a v2 server a state larger than one chunk streams as
        ``kind="restore"`` chunks; the final chunk triggers the apply and is
        answered with a single :class:`~repro.service.protocol.RestoreReply`.
        Not retried after a connection drop (whether the server applied the
        state is unknowable) — :class:`~repro.exceptions.ConnectionLostError`
        surfaces instead.
        """
        if self.protocol_version >= 2:
            bound = max(1, int(max_chunk)) if max_chunk is not None else proto.DEFAULT_CHUNK_BYTES
            packed = packb(state)
            if len(packed) > bound:
                for chunk in proto.iter_state_chunks(
                    packed, kind="restore", max_chunk=bound
                ):
                    self._send(chunk)
                return self._await_reply(
                    proto.RestoreReply, request_name="Restore (chunked)"
                ).restored
        return self._rpc(proto.Restore(state=state), proto.RestoreReply).restored

    # ------------------------------------------------------------------ #
    # prediction stream
    # ------------------------------------------------------------------ #
    def subscribe(self, jobs: Sequence[str] | None = None) -> int:
        """Stream every published prediction to this connection.

        ``jobs`` restricts the stream to the given job ids.  Events are
        queued as they arrive and handed out by :meth:`predictions` /
        :meth:`poll_predictions`.  A client that both subscribes and pumps
        sees each update twice (once pushed, once in the pump reply) — use
        one mode or the other per connection.  The subscription is
        re-established automatically after a transparent reconnect.
        """
        job_filter = None if jobs is None else tuple(jobs)
        reply = self._rpc(proto.Subscribe(jobs=job_filter), proto.SubscribeReply)
        self._subscribed = True
        self._subscription_jobs = job_filter
        return reply.subscription

    def _queue_updates(self, updates: tuple[dict, ...]) -> None:
        for entry in updates:
            self._events.append(PredictionUpdate.from_dict(entry))

    def predictions(self) -> list[PredictionUpdate]:
        """Drain the already-received predictions (never blocks)."""
        drained = list(self._events)
        self._events.clear()
        return drained

    def poll_predictions(
        self, *, timeout: float = 0.5, min_events: int = 1
    ) -> list[PredictionUpdate]:
        """Wait up to ``timeout`` seconds for ``min_events`` predictions.

        Returns everything received (possibly more than ``min_events``, or
        fewer when the timeout strikes first).  Only useful on a subscribed
        connection — without a subscription nothing ever arrives unasked.  A
        connection drop mid-poll reconnects (the subscription is restored)
        and keeps waiting out the deadline.
        """
        deadline = time.monotonic() + timeout
        while len(self._events) < min_events:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            self._sock.settimeout(remaining)
            try:
                message = self._read_message()
            except TimeoutError:
                break
            except ConnectionLostError:
                if self._closed or not (self._reconnect_enabled and self._subscribed):
                    raise
                self._reconnect()
                continue
            finally:
                # After a *failed* reconnect the old socket is closed; the
                # typed error in flight must not be masked by an EBADF here.
                try:
                    self._sock.settimeout(self._timeout)
                except OSError:
                    pass
            if isinstance(message, proto.PredictionEvent):
                self._events.append(PredictionUpdate.from_dict(message.update))
            elif isinstance(message, proto.Error):
                raise ServiceError(f"server error ({message.code}): {message.message}")
            else:
                raise ProtocolError(
                    f"unexpected {type(message).__name__} outside a request"
                )
        return self.predictions()

    def iter_predictions(self, *, timeout: float = 0.5) -> Iterator[PredictionUpdate]:
        """Yield predictions as they arrive until ``timeout`` passes silently."""
        while True:
            batch = self.poll_predictions(timeout=timeout, min_events=1)
            if not batch:
                return
            yield from batch

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Say goodbye (best effort) and disconnect."""
        if self._closed:
            return
        try:
            self._rpc_once(proto.Close(), proto.CloseReply)
        except (OSError, ServiceError, ProtocolError):  # pragma: no cover - best effort
            pass
        self._closed = True
        self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
