"""Blocking TCP client of the prediction-service gateway.

:class:`ServiceClient` connects to a :class:`~repro.service.gateway.
ServiceGateway`, performs the :class:`~repro.service.protocol.Hello` version
negotiation, and then exposes the service's whole control surface as plain
method calls: stream flushes in, pump, read stats, snapshot/restore, and
subscribe to the live prediction stream.

The conversation is strictly typed (:mod:`repro.service.protocol`); flush
payloads travel as ordinary FTS1 frames inside
:class:`~repro.service.protocol.SubmitFrames`, so the client is wire-format
compatible with every other producer (spool writers, socket feeds).

Asynchronous :class:`~repro.service.protocol.PredictionEvent` messages may
interleave with request/response pairs once :meth:`ServiceClient.subscribe`
ran; the client transparently queues them, and :meth:`ServiceClient.
predictions` / :meth:`ServiceClient.poll_predictions` hand them out in
arrival order.
"""

from __future__ import annotations

import socket
import time
from collections import deque
from collections.abc import Iterator, Sequence
from typing import TypeVar

from repro.exceptions import ProtocolError, ServiceError
from repro.service import protocol as proto
from repro.service.publisher import PredictionUpdate
from repro.trace.framing import encode_frame
from repro.trace.jsonl import FlushRecord

#: Socket read size of the reply loop.
_READ_CHUNK = 1 << 16

R = TypeVar("R", bound=proto.Message)


class ServiceClient:
    """Blocking client of a prediction-service TCP gateway.

    Parameters
    ----------
    host, port:
        Gateway address (see :attr:`~repro.service.gateway.ThreadedGateway.
        host` / ``port``).
    token:
        Tenant/auth nibble presented in the handshake and stamped on every
        frame this client encodes (must match the server's token, if any).
    timeout:
        Socket timeout in seconds for connecting and for every reply.
    name:
        Client name reported in the handshake (diagnostics).

    The client is a context manager; leaving the ``with`` block sends
    :class:`~repro.service.protocol.Close` and disconnects.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        token: int | None = None,
        timeout: float = 30.0,
        name: str = "repro-client",
    ) -> None:
        self._token = token
        self._timeout = float(timeout)
        self._decoder = proto.MessageDecoder()
        self._events: deque[PredictionUpdate] = deque()
        self._closed = False
        self._sock = socket.create_connection((host, port), timeout=self._timeout)
        try:
            reply = self._rpc(
                proto.Hello(versions=proto.SUPPORTED_VERSIONS, token=token, client=name),
                proto.HelloReply,
            )
        except BaseException:
            # A rejected handshake (wrong token, no common version) must not
            # leak the connected socket — __exit__/close are unreachable when
            # __init__ raises.
            self._sock.close()
            raise
        #: Negotiated control-plane protocol version.
        self.protocol_version: int = reply.version
        #: Server name from the handshake.
        self.server: str = reply.server
        #: Shard count of the engine behind the gateway (0 = single process).
        self.shards: int = reply.shards

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    def _send(self, message: proto.Message) -> None:
        if self._closed:
            raise ServiceError("client is closed")
        self._sock.sendall(proto.encode_message(message))

    def _read_message(self) -> proto.Message:
        """Next complete message from the stream (blocking, honors timeout)."""
        while True:
            for message in self._decoder.messages():
                return message
            data = self._sock.recv(_READ_CHUNK)
            if not data:
                raise ProtocolError("server closed the connection")
            self._decoder.feed(data)

    def _rpc(self, request: proto.Message, reply_type: type[R]) -> R:
        """Send one request and return its typed reply.

        Prediction events arriving in between are queued, an
        :class:`~repro.service.protocol.Error` reply raises
        :class:`~repro.exceptions.ServiceError`, and any other message type
        is a protocol violation.
        """
        self._send(request)
        while True:
            message = self._read_message()
            if isinstance(message, proto.PredictionEvent):
                self._events.append(PredictionUpdate.from_dict(message.update))
                continue
            if isinstance(message, proto.Error):
                raise ServiceError(
                    f"{type(request).__name__} failed ({message.code}): {message.message}"
                )
            if isinstance(message, reply_type):
                return message
            raise ProtocolError(
                f"expected {reply_type.__name__} in reply to {type(request).__name__}, "
                f"got {type(message).__name__}"
            )

    # ------------------------------------------------------------------ #
    # data plane
    # ------------------------------------------------------------------ #
    def submit_flush(
        self, job: str, flush: FlushRecord, *, payload_format: str = "msgpack"
    ) -> int:
        """Encode one flush as an FTS1 frame and submit it; returns frames routed."""
        frame = encode_frame(flush, job=job, payload_format=payload_format, token=self._token)
        return self.submit_bytes(frame)

    def submit_bytes(self, data: bytes) -> int:
        """Submit raw FTS1-framed bytes; returns the frames completed by them."""
        return self._rpc(proto.SubmitFrames(data=data), proto.SubmitReply).frames

    # ------------------------------------------------------------------ #
    # evaluation and results
    # ------------------------------------------------------------------ #
    def pump(self) -> int:
        """Evaluate every due session; returns the number of evaluations.

        The updates published during the pump are queued as predictions
        (available via :meth:`predictions`).
        """
        reply = self._rpc(proto.Pump(), proto.PumpReply)
        self._queue_updates(reply.updates)
        return reply.submitted

    def drain(self) -> None:
        """Pump until nothing is due and nothing is in flight."""
        reply = self._rpc(proto.Drain(), proto.DrainReply)
        self._queue_updates(reply.updates)

    def finish_job(self, job: str) -> None:
        """Mark ``job`` finished (pending data is still evaluated, then idle)."""
        self._rpc(proto.FinishJob(job=job), proto.FinishJobReply)

    def stats(self) -> dict:
        """Service-wide counters of the engine behind the gateway."""
        return self._rpc(proto.Stats(), proto.StatsReply).stats

    def snapshot(self) -> dict:
        """Full service snapshot state (see :mod:`repro.service.snapshot`)."""
        return self._rpc(proto.Snapshot(), proto.SnapshotReply).state

    def restore(self, state: dict) -> int:
        """Load a snapshot into the engine; returns the sessions restored."""
        return self._rpc(proto.Restore(state=state), proto.RestoreReply).restored

    # ------------------------------------------------------------------ #
    # prediction stream
    # ------------------------------------------------------------------ #
    def subscribe(self, jobs: Sequence[str] | None = None) -> int:
        """Stream every published prediction to this connection.

        ``jobs`` restricts the stream to the given job ids.  Events are
        queued as they arrive and handed out by :meth:`predictions` /
        :meth:`poll_predictions`.  A client that both subscribes and pumps
        sees each update twice (once pushed, once in the pump reply) — use
        one mode or the other per connection.
        """
        reply = self._rpc(
            proto.Subscribe(jobs=None if jobs is None else tuple(jobs)), proto.SubscribeReply
        )
        return reply.subscription

    def _queue_updates(self, updates: tuple[dict, ...]) -> None:
        for entry in updates:
            self._events.append(PredictionUpdate.from_dict(entry))

    def predictions(self) -> list[PredictionUpdate]:
        """Drain the already-received predictions (never blocks)."""
        drained = list(self._events)
        self._events.clear()
        return drained

    def poll_predictions(
        self, *, timeout: float = 0.5, min_events: int = 1
    ) -> list[PredictionUpdate]:
        """Wait up to ``timeout`` seconds for ``min_events`` predictions.

        Returns everything received (possibly more than ``min_events``, or
        fewer when the timeout strikes first).  Only useful on a subscribed
        connection — without a subscription nothing ever arrives unasked.
        """
        deadline = time.monotonic() + timeout
        while len(self._events) < min_events:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            self._sock.settimeout(remaining)
            try:
                message = self._read_message()
            except (socket.timeout, TimeoutError):
                break
            finally:
                self._sock.settimeout(self._timeout)
            if isinstance(message, proto.PredictionEvent):
                self._events.append(PredictionUpdate.from_dict(message.update))
            elif isinstance(message, proto.Error):
                raise ServiceError(f"server error ({message.code}): {message.message}")
            else:
                raise ProtocolError(
                    f"unexpected {type(message).__name__} outside a request"
                )
        return self.predictions()

    def iter_predictions(self, *, timeout: float = 0.5) -> Iterator[PredictionUpdate]:
        """Yield predictions as they arrive until ``timeout`` passes silently."""
        while True:
            batch = self.poll_predictions(timeout=timeout, min_events=1)
            if not batch:
                return
            yield from batch

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Say goodbye (best effort) and disconnect."""
        if self._closed:
            return
        try:
            self._rpc(proto.Close(), proto.CloseReply)
        except (OSError, ServiceError, ProtocolError):  # pragma: no cover - best effort
            pass
        self._closed = True
        self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
