"""Cluster substrate: shared file system, periodic jobs, event-driven simulator."""

from repro.cluster.filesystem import SharedFileSystem
from repro.cluster.job import JobPhase, JobSpec, JobState, PhaseRecord
from repro.cluster.scheduler import IOScheduler
from repro.cluster.simulator import (
    ClusterSimulator,
    JobResult,
    SimulationResult,
    run_isolated,
)

__all__ = [
    "SharedFileSystem",
    "JobPhase",
    "JobSpec",
    "JobState",
    "PhaseRecord",
    "IOScheduler",
    "ClusterSimulator",
    "JobResult",
    "SimulationResult",
    "run_isolated",
]
