"""Shared parallel-file-system model.

The Set-10 experiments of the paper run on a BeeGFS deployment whose bandwidth
is shared by the concurrently writing jobs.  This model captures the part that
matters for contention: a single aggregate bandwidth capacity that the
scheduler divides among the jobs currently performing I/O.  A job granted a
fraction ``s`` of the capacity progresses through its I/O phase at
``min(s × capacity, job.io_bandwidth)`` bytes/s.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import SchedulingError
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class SharedFileSystem:
    """A shared file system with a fixed aggregate bandwidth capacity.

    Attributes
    ----------
    capacity:
        Peak aggregate bandwidth in bytes/s.
    name:
        Label used in reports.
    """

    capacity: float
    name: str = "pfs"

    def __post_init__(self) -> None:
        check_positive(self.capacity, "capacity")

    def effective_bandwidth(self, share: float, job_bandwidth: float) -> float:
        """Bandwidth a job actually achieves given its granted ``share``.

        The job can never exceed its own achievable bandwidth, nor the share
        of the file-system capacity it was granted.
        """
        if share < 0.0 or share > 1.0 + 1e-9:
            raise SchedulingError(f"bandwidth share must be in [0, 1], got {share}")
        return min(share * self.capacity, job_bandwidth)

    def validate_allocation(self, shares: dict[str, float]) -> None:
        """Check that an allocation does not exceed the capacity (sum of shares <= 1)."""
        total = sum(shares.values())
        if total > 1.0 + 1e-6:
            raise SchedulingError(
                f"scheduler allocated {total:.3f} of the file-system capacity (> 1.0)"
            )
        for job, share in shares.items():
            if share < -1e-12:
                raise SchedulingError(f"negative bandwidth share for job {job!r}: {share}")
