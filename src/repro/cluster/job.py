"""Job model of the cluster simulator (Section IV substrate).

A job alternates compute phases and I/O phases, like the IOR-derived
applications of the Set-10 experiment: in isolation every iteration lasts
``period`` seconds of which ``io_fraction`` is spent writing to the shared
file system at the job's full achievable bandwidth.  Under contention the
scheduler grants only part of the file-system bandwidth, so the I/O phase
stretches and the job's iterations — and total runtime — grow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.exceptions import SchedulingError
from repro.utils.validation import check_non_negative, check_positive, check_positive_int


class JobPhase(str, Enum):
    """Lifecycle states of a simulated job."""

    PENDING = "pending"  # before start_time
    COMPUTING = "computing"
    IO = "io"
    FINISHED = "finished"


@dataclass(frozen=True)
class JobSpec:
    """Static description of a periodic job.

    Attributes
    ----------
    name:
        Unique job identifier.
    period:
        Iteration length in isolation (compute + I/O), seconds.
    io_fraction:
        Fraction of the period spent on I/O in isolation (paper: 6.25 %).
    iterations:
        Number of iterations the job executes.
    io_bandwidth:
        Bandwidth the job achieves when granted exclusive file-system access
        (bytes/s); the per-phase volume follows from it.
    nodes:
        Number of nodes the job occupies (weights the utilization metric).
    start_time:
        Time at which the job is released.
    """

    name: str
    period: float
    io_fraction: float
    iterations: int
    io_bandwidth: float
    nodes: int = 1
    start_time: float = 0.0

    def __post_init__(self) -> None:
        check_positive(self.period, "period")
        if not 0.0 < self.io_fraction < 1.0:
            raise SchedulingError(f"io_fraction must be in (0, 1), got {self.io_fraction}")
        check_positive_int(self.iterations, "iterations")
        check_positive(self.io_bandwidth, "io_bandwidth")
        check_positive_int(self.nodes, "nodes")
        check_non_negative(self.start_time, "start_time")

    @property
    def compute_time(self) -> float:
        """Length of one compute phase in isolation."""
        return self.period * (1.0 - self.io_fraction)

    @property
    def io_time_isolated(self) -> float:
        """Length of one I/O phase in isolation."""
        return self.period * self.io_fraction

    @property
    def io_volume(self) -> float:
        """Bytes written per I/O phase (volume = isolated time × full bandwidth)."""
        return self.io_time_isolated * self.io_bandwidth

    @property
    def isolated_makespan(self) -> float:
        """Total runtime of the job when it never experiences contention."""
        return self.iterations * self.period

    @property
    def isolated_io_time(self) -> float:
        """Total time spent on I/O when the job never experiences contention."""
        return self.iterations * self.io_time_isolated


@dataclass(frozen=True)
class PhaseRecord:
    """One completed I/O phase of a job (what the tracer would have recorded)."""

    job: str
    iteration: int
    start: float
    end: float
    nbytes: float

    @property
    def duration(self) -> float:
        """Wall-clock length of the phase (including contention slowdown)."""
        return self.end - self.start


@dataclass
class JobState:
    """Mutable runtime state of a job inside the simulator."""

    spec: JobSpec
    phase: JobPhase = JobPhase.PENDING
    iteration: int = 0
    remaining_compute: float = 0.0
    remaining_io_bytes: float = 0.0
    io_phase_start: float | None = None
    finish_time: float | None = None
    total_io_time: float = 0.0
    phase_records: list[PhaseRecord] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Job identifier (delegates to the spec)."""
        return self.spec.name

    @property
    def is_active(self) -> bool:
        """True while the job still has work to do."""
        return self.phase not in (JobPhase.FINISHED,)

    def start(self, time: float) -> None:
        """Release the job: begin its first compute phase."""
        if self.phase is not JobPhase.PENDING:
            raise SchedulingError(f"job {self.name} was already started")
        self.phase = JobPhase.COMPUTING
        self.remaining_compute = self.spec.compute_time
        self.iteration = 0

    def begin_io(self, time: float) -> None:
        """Transition from compute to the I/O phase of the current iteration."""
        if self.phase is not JobPhase.COMPUTING:
            raise SchedulingError(f"job {self.name} cannot start I/O from phase {self.phase}")
        self.phase = JobPhase.IO
        self.remaining_io_bytes = self.spec.io_volume
        self.io_phase_start = time

    def complete_io(self, time: float) -> PhaseRecord:
        """Finish the current I/O phase; returns its record and advances the job."""
        if self.phase is not JobPhase.IO or self.io_phase_start is None:
            raise SchedulingError(f"job {self.name} is not in an I/O phase")
        record = PhaseRecord(
            job=self.name,
            iteration=self.iteration,
            start=self.io_phase_start,
            end=time,
            nbytes=self.spec.io_volume,
        )
        self.phase_records.append(record)
        self.total_io_time += record.duration
        self.io_phase_start = None
        self.iteration += 1
        if self.iteration >= self.spec.iterations:
            self.phase = JobPhase.FINISHED
            self.finish_time = time
        else:
            self.phase = JobPhase.COMPUTING
            self.remaining_compute = self.spec.compute_time
        return record

    # ------------------------------------------------------------------ #
    @property
    def makespan(self) -> float | None:
        """Total runtime (finish − release), or ``None`` while still running."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.spec.start_time

    def io_waiting_since(self) -> float | None:
        """Start time of the current (pending) I/O phase, used for FCFS ordering."""
        return self.io_phase_start
