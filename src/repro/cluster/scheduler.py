"""I/O scheduler interface used by the cluster simulator.

Concrete policies (fair sharing, exclusive FCFS, Set-10) live in
:mod:`repro.scheduling`; the simulator only depends on this small interface so
that new policies can be plugged in without touching the event loop.
"""

from __future__ import annotations

import abc

from repro.cluster.job import JobState, PhaseRecord


class IOScheduler(abc.ABC):
    """Decides how the shared file-system bandwidth is divided among jobs."""

    #: Identifier used in reports and experiment tables.
    name: str = "scheduler"

    @abc.abstractmethod
    def allocate(self, io_jobs: list[JobState], time: float) -> dict[str, float]:
        """Return the bandwidth share (in [0, 1]) granted to each job doing I/O.

        Parameters
        ----------
        io_jobs:
            The jobs currently in an I/O phase (non-empty).
        time:
            Current simulation time.

        Returns
        -------
        dict
            Mapping of job name to its share of the file-system capacity.  The
            shares must sum to at most 1; jobs omitted from the mapping receive
            no bandwidth this interval.
        """

    def on_phase_complete(self, job: JobState, record: PhaseRecord, time: float) -> None:
        """Hook invoked whenever a job completes an I/O phase (optional)."""

    def on_job_finished(self, job: JobState, time: float) -> None:
        """Hook invoked whenever a job finishes its last iteration (optional)."""
