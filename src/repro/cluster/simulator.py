"""Event-driven simulation of periodic jobs sharing a parallel file system.

This is the substrate of the Section IV use case: a set of periodic jobs (the
paper uses 1 high-frequency and 15 low-frequency IOR-derived applications)
runs concurrently; whenever several of them perform I/O at the same time they
compete for the shared file-system bandwidth, and the configured
:class:`~repro.cluster.scheduler.IOScheduler` decides who gets how much.

The simulation advances from event to event (job release, compute-phase end,
I/O-phase end); between two events the bandwidth allocation is constant, so
the progress of every job can be integrated exactly — there is no fixed time
step and no discretization error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.cluster.filesystem import SharedFileSystem
from repro.cluster.job import JobPhase, JobSpec, JobState, PhaseRecord
from repro.cluster.scheduler import IOScheduler
from repro.exceptions import SchedulingError

#: Observer callback signature: (job, completed phase record, time).
PhaseObserver = Callable[[JobState, PhaseRecord, float], None]

#: Observer callback signature for job completion: (job, time).
FinishObserver = Callable[[JobState, float], None]

_EPS = 1e-9


@dataclass(frozen=True)
class JobResult:
    """Per-job outcome of a simulation run."""

    spec: JobSpec
    makespan: float
    total_io_time: float
    phase_records: tuple[PhaseRecord, ...]

    @property
    def stretch(self) -> float:
        """Makespan divided by the isolated makespan (>= 1 under contention)."""
        return self.makespan / self.spec.isolated_makespan

    @property
    def io_slowdown(self) -> float:
        """Total I/O time divided by the isolated I/O time (>= 1 under contention)."""
        return self.total_io_time / self.spec.isolated_io_time

    @property
    def compute_time(self) -> float:
        """Time the job spent NOT doing I/O."""
        return self.makespan - self.total_io_time


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one cluster simulation."""

    jobs: tuple[JobResult, ...]
    end_time: float
    scheduler_name: str

    def job(self, name: str) -> JobResult:
        """Look up one job's result by name."""
        for result in self.jobs:
            if result.spec.name == name:
                return result
        raise KeyError(f"no job named {name!r} in this simulation")

    @property
    def utilization(self) -> float:
        """Fraction of node time spent on computation instead of I/O.

        Node-weighted, as in the paper: utilization = 1 − Σ nodes·io_time /
        Σ nodes·makespan.
        """
        node_time = sum(r.spec.nodes * r.makespan for r in self.jobs)
        io_node_time = sum(r.spec.nodes * r.total_io_time for r in self.jobs)
        if node_time == 0:
            return 0.0
        return 1.0 - io_node_time / node_time


class ClusterSimulator:
    """Simulates jobs alternating compute and I/O phases on a shared file system."""

    def __init__(
        self,
        filesystem: SharedFileSystem,
        scheduler: IOScheduler,
        jobs: list[JobSpec],
        *,
        phase_observers: list[PhaseObserver] | None = None,
        finish_observers: list[FinishObserver] | None = None,
    ):
        if not jobs:
            raise SchedulingError("the simulation needs at least one job")
        names = [j.name for j in jobs]
        if len(set(names)) != len(names):
            raise SchedulingError("job names must be unique")
        self._filesystem = filesystem
        self._scheduler = scheduler
        self._specs = list(jobs)
        self._observers = list(phase_observers or [])
        self._finish_observers = list(finish_observers or [])

    # ------------------------------------------------------------------ #
    def add_phase_observer(self, observer: PhaseObserver) -> None:
        """Register a callback fired after every completed I/O phase."""
        self._observers.append(observer)

    def add_finish_observer(self, observer: FinishObserver) -> None:
        """Register a callback fired when a job finishes its last iteration.

        The streaming-service flush bridge uses this to close the job's
        prediction session once no further phases can arrive.
        """
        self._finish_observers.append(observer)

    def run(self, *, max_time: float = 1e9) -> SimulationResult:
        """Run the simulation until every job finished (or ``max_time`` is hit)."""
        states = {spec.name: JobState(spec=spec) for spec in self._specs}
        time = 0.0

        while True:
            active = [s for s in states.values() if s.is_active]
            if not active:
                break
            if time > max_time:
                raise SchedulingError(
                    f"simulation exceeded max_time={max_time}; "
                    "a job is likely starved of bandwidth"
                )

            # Release pending jobs whose start time has arrived.
            for state in active:
                if state.phase is JobPhase.PENDING and state.spec.start_time <= time + _EPS:
                    state.start(time)

            io_jobs = [s for s in active if s.phase is JobPhase.IO]
            shares: dict[str, float] = {}
            if io_jobs:
                shares = self._scheduler.allocate(io_jobs, time)
                self._filesystem.validate_allocation(shares)

            # Work out the time until the next event.
            dt = self._next_event_delta(active, shares, time)
            if not np.isfinite(dt):
                raise SchedulingError(
                    "deadlock: no job can make progress "
                    f"(time={time:.1f}, {len(io_jobs)} jobs waiting for I/O)"
                )
            dt = max(dt, 0.0)
            time += dt

            # Advance every job by dt and handle phase transitions.
            self._advance(active, shares, dt, time)

        results = tuple(
            JobResult(
                spec=state.spec,
                makespan=state.makespan if state.makespan is not None else max_time,
                total_io_time=state.total_io_time,
                phase_records=tuple(state.phase_records),
            )
            for state in states.values()
        )
        return SimulationResult(
            jobs=results,
            end_time=time,
            scheduler_name=getattr(self._scheduler, "name", type(self._scheduler).__name__),
        )

    # ------------------------------------------------------------------ #
    def _bandwidth_for(self, state: JobState, shares: dict[str, float]) -> float:
        share = shares.get(state.name, 0.0)
        return self._filesystem.effective_bandwidth(share, state.spec.io_bandwidth)

    def _next_event_delta(
        self,
        active: list[JobState],
        shares: dict[str, float],
        time: float,
    ) -> float:
        deltas: list[float] = []
        for state in active:
            if state.phase is JobPhase.PENDING:
                deltas.append(max(state.spec.start_time - time, 0.0))
            elif state.phase is JobPhase.COMPUTING:
                deltas.append(state.remaining_compute)
            elif state.phase is JobPhase.IO:
                bandwidth = self._bandwidth_for(state, shares)
                if bandwidth > 0:
                    deltas.append(state.remaining_io_bytes / bandwidth)
        if not deltas:
            return float("inf")
        return float(min(deltas))

    def _advance(
        self,
        active: list[JobState],
        shares: dict[str, float],
        dt: float,
        time: float,
    ) -> None:
        for state in active:
            if state.phase is JobPhase.COMPUTING:
                state.remaining_compute -= dt
                if state.remaining_compute <= _EPS:
                    state.remaining_compute = 0.0
                    state.begin_io(time)
            elif state.phase is JobPhase.IO:
                bandwidth = self._bandwidth_for(state, shares)
                state.remaining_io_bytes -= bandwidth * dt
                if state.remaining_io_bytes <= max(_EPS, bandwidth * _EPS):
                    state.remaining_io_bytes = 0.0
                    record = state.complete_io(time)
                    self._scheduler.on_phase_complete(state, record, time)
                    for observer in self._observers:
                        observer(state, record, time)
                    if state.phase is JobPhase.FINISHED:
                        self._scheduler.on_job_finished(state, time)
                        for observer in self._finish_observers:
                            observer(state, time)


def run_isolated(spec: JobSpec, filesystem: SharedFileSystem) -> JobResult:
    """Run a single job alone on the file system (the baseline for stretch/slowdown).

    In isolation every I/O phase proceeds at the job's full achievable
    bandwidth (capped by the file-system capacity), so the result can also be
    obtained analytically; running it through the simulator keeps the two code
    paths consistent.
    """
    from repro.scheduling.baseline import FairShareScheduler

    simulator = ClusterSimulator(filesystem, FairShareScheduler(), [spec])
    result = simulator.run()
    return result.jobs[0]
