"""Shared default constants of the FTIO reproduction.

The values mirror the defaults used in the paper (Section II): a Z-score of 3
marks an outlier, candidate frequencies must reach 80 % of the maximum Z-score,
and the default sampling frequency used in most experiments is 10 Hz.
"""

from __future__ import annotations

#: Z-score above which a power-spectrum bin is considered an outlier (Sec. II-B2).
ZSCORE_OUTLIER_THRESHOLD: float = 3.0

#: A candidate must have a Z-score within this fraction of the maximum Z-score.
DOMINANT_TOLERANCE: float = 0.8

#: Default sampling frequency [Hz] used for discretizing the bandwidth signal.
DEFAULT_SAMPLING_FREQUENCY: float = 10.0

#: Default relative threshold used by SciPy ``find_peaks`` on the ACF (Sec. II-C).
ACF_PEAK_THRESHOLD: float = 0.15

#: Maximum number of dominant-frequency candidates for a signal to be called periodic.
MAX_PERIODIC_CANDIDATES: int = 2

#: Number of consecutive detections after which the online window is shrunk (Sec. II-D).
ONLINE_WINDOW_HITS: int = 3

#: Bytes per gibibyte / mebibyte, used by the workload generators.
GIB: int = 1024**3
MIB: int = 1024**2

#: Peak write bandwidth of the simulated shared file system [bytes/s].
#: (The Lichtenberg IBM Spectrum Scale system peaks at 106 GB/s for writes.)
DEFAULT_FILESYSTEM_BANDWIDTH: float = 106 * 10**9

#: Default error injected into FTIO periods in the "Set-10 + error" configuration.
SET10_ERROR_FACTOR: float = 0.5
