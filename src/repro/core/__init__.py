"""FTIO core: detection pipeline, confidence, characterization, online prediction."""

from repro.core.characterization import (
    characterize,
    substantial_io_threshold,
    time_ratio_and_bandwidth,
)
from repro.core.config import FtioConfig
from repro.core.confidence import (
    candidate_confidence,
    confidence_index_sets,
    refined_confidence,
)
from repro.core.ftio import Ftio, detect
from repro.core.intervals import (
    FrequencyInterval,
    merge_predictions,
    most_probable_interval,
    resolution_eps,
)
from repro.core.online import (
    OnlinePredictor,
    PredictionStep,
    RestoredResult,
    predict_from_file,
    predict_from_flushes,
    replay_online,
)
from repro.core.result import (
    CharacterizationResult,
    FrequencyCandidate,
    FtioResult,
    Periodicity,
)

__all__ = [
    "characterize",
    "substantial_io_threshold",
    "time_ratio_and_bandwidth",
    "FtioConfig",
    "candidate_confidence",
    "confidence_index_sets",
    "refined_confidence",
    "Ftio",
    "detect",
    "FrequencyInterval",
    "merge_predictions",
    "most_probable_interval",
    "resolution_eps",
    "OnlinePredictor",
    "PredictionStep",
    "RestoredResult",
    "predict_from_file",
    "predict_from_flushes",
    "replay_online",
    "CharacterizationResult",
    "FrequencyCandidate",
    "FtioResult",
    "Periodicity",
]
