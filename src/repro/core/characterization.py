"""Characterization metrics given a detected period (Section II-C).

Once FTIO has found the period 1/f_d, the signal can be further characterized:

* ``sigma_vol`` — how similar the amount of data per period is,
* ``R_IO``      — which fraction of the time is spent on *substantial* I/O,
* ``B_IO``      — the bandwidth that characterizes that substantial I/O,
* ``sigma_time``— how similar the per-period time share of substantial I/O is,
* the periodicity score 1 − sigma_vol − sigma_time.

The noise threshold separating substantial I/O from background activity is
V(T)/L(T): the mean data rate of the whole trace.  All metrics are computed on
the discretized signal, which is what FTIO has available online.
"""

from __future__ import annotations

import numpy as np

from repro.core.result import CharacterizationResult
from repro.exceptions import AnalysisError
from repro.trace.sampling import DiscreteSignal
from repro.utils.validation import check_positive


def substantial_io_threshold(signal: DiscreteSignal) -> float:
    """Return the noise threshold V(T)/L(T) in bytes/s for ``signal``.

    Because the samples are bandwidth values, the mean sample value equals the
    total volume divided by the trace length.
    """
    if signal.n_samples == 0:
        return 0.0
    return float(signal.samples.mean())


def time_ratio_and_bandwidth(signal: DiscreteSignal) -> tuple[float, float, float]:
    """Compute (R_IO, B_IO, threshold) for ``signal``.

    R_IO is the fraction of samples whose bandwidth exceeds the threshold;
    B_IO is the mean bandwidth over those samples (0 when there are none).
    """
    threshold = substantial_io_threshold(signal)
    samples = signal.samples
    if signal.n_samples == 0:
        return 0.0, 0.0, threshold
    substantial = samples > threshold
    r_io = float(substantial.mean())
    b_io = float(samples[substantial].mean()) if substantial.any() else 0.0
    return r_io, b_io, threshold


def characterize(signal: DiscreteSignal, dominant_frequency: float) -> CharacterizationResult:
    """Compute all characterization metrics for ``signal`` and the given f_d.

    Raises
    ------
    AnalysisError
        If the signal is shorter than one period (no sub-trace can be formed).
    """
    check_positive(dominant_frequency, "dominant_frequency")
    period = 1.0 / dominant_frequency
    fs = signal.sampling_frequency
    samples_per_period = int(round(period * fs))
    if samples_per_period < 1:
        raise AnalysisError(
            f"period {period:.3g} s is below the sampling resolution 1/fs = {1.0 / fs:.3g} s"
        )
    n_periods = signal.n_samples // samples_per_period
    if n_periods < 1:
        raise AnalysisError(
            f"signal of {signal.n_samples} samples is shorter than one period "
            f"({samples_per_period} samples)"
        )

    r_io, b_io, threshold = time_ratio_and_bandwidth(signal)

    usable = signal.samples[: n_periods * samples_per_period]
    periods = usable.reshape(n_periods, samples_per_period)

    # sigma_vol: std of per-period volume normalized by the maximum volume.
    volumes = periods.sum(axis=1) / fs
    max_volume = float(volumes.max())
    if max_volume > 0:
        sigma_vol = float(np.std(volumes / max_volume))
    else:
        sigma_vol = 0.0

    # sigma_time: std of the per-period fraction of time above the threshold,
    # measured against the global ratio R_IO (Eq. 4).
    per_period_ratio = (periods > threshold).mean(axis=1)
    sigma_time = float(np.sqrt(np.mean((per_period_ratio - r_io) ** 2)))

    # Average bytes moved per period: V(S) / (L(T) * f_d).
    substantial = signal.samples > threshold
    volume_substantial = float(signal.samples[substantial].sum() / fs)
    duration = signal.duration
    bytes_per_period = volume_substantial / (duration * dominant_frequency) if duration > 0 else 0.0

    periodicity_score = float(np.clip(1.0 - sigma_vol - sigma_time, 0.0, 1.0))

    return CharacterizationResult(
        sigma_vol=sigma_vol,
        sigma_time=sigma_time,
        time_ratio=r_io,
        io_bandwidth=b_io,
        bytes_per_period=bytes_per_period,
        threshold=threshold,
        periodicity_score=periodicity_score,
    )
