"""Confidence metrics of Section II-C.

For at most two candidates, FTIO reports a confidence c_k per candidate
frequency f_k:

    c_k = 1/2 * ( z_k / sum_{i in I1} z_i  +  z_k / sum_{i in I2} z_i )

where I1 is the set of outlier bins (z_i >= 3) and I2 the set of bins whose
Z-score is within the tolerance of the maximum (z_i / z_max >= 0.8).  The
confidence of the dominant frequency is c_d.

When the autocorrelation refinement is enabled, the refined confidence is the
plain average of (c_d, c_a, c_s): the DFT confidence, the ACF confidence and
the similarity between the DFT period and the ACF candidates.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.constants import DOMINANT_TOLERANCE, ZSCORE_OUTLIER_THRESHOLD


def confidence_index_sets(
    scores: ArrayLike,
    *,
    zscore_threshold: float = ZSCORE_OUTLIER_THRESHOLD,
    tolerance: float = DOMINANT_TOLERANCE,
) -> tuple[NDArray[np.int64], NDArray[np.int64]]:
    """Return the index sets I1 (outliers) and I2 (within tolerance of z_max).

    Both sets are indices into the *analysis* array (non-DC bins).  When no
    bin reaches the outlier threshold, I1 is empty; when every Z-score is zero
    (flat spectrum), I2 is empty as well.
    """
    z = np.asarray(scores, dtype=np.float64)
    if z.size == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    i1 = np.flatnonzero(z >= zscore_threshold).astype(np.int64)
    z_max = float(z.max())
    if z_max <= 0:
        i2 = np.zeros(0, dtype=np.int64)
    else:
        i2 = np.flatnonzero(z / z_max >= tolerance).astype(np.int64)
    return i1, i2


def candidate_confidence(
    k: int,
    scores: ArrayLike,
    *,
    zscore_threshold: float = ZSCORE_OUTLIER_THRESHOLD,
    tolerance: float = DOMINANT_TOLERANCE,
) -> float:
    """Confidence c_k of the candidate at index ``k`` of the analysis array.

    Follows the formula of Section II-C.  If either index set is empty (or has
    zero total Z-score), the corresponding term contributes 0, so the
    confidence degrades gracefully instead of dividing by zero.
    """
    z = np.asarray(scores, dtype=np.float64)
    if k < 0 or k >= z.size:
        raise IndexError(f"candidate index {k} out of range for {z.size} bins")
    i1, i2 = confidence_index_sets(z, zscore_threshold=zscore_threshold, tolerance=tolerance)
    zk = float(z[k])
    terms = []
    for index_set in (i1, i2):
        total = float(z[index_set].sum()) if index_set.size else 0.0
        terms.append(zk / total if total > 0 else 0.0)
    return float(0.5 * sum(terms))


def refined_confidence(
    dft_confidence: float,
    acf_confidence: float,
    similarity: float,
) -> float:
    """Refined confidence: the average of (c_d, c_a, c_s), clipped to [0, 1]."""
    values = np.clip([dft_confidence, acf_confidence, similarity], 0.0, 1.0)
    return float(values.mean())
