"""Configuration of the FTIO analysis.

The knobs mirror Section II of the paper: the sampling frequency fs, the
analysis window Δt, the Z-score threshold (3), the dominant-candidate
tolerance (0.8), the choice of outlier detector, and whether the
autocorrelation refinement and the characterization metrics are computed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.constants import (
    ACF_PEAK_THRESHOLD,
    DEFAULT_SAMPLING_FREQUENCY,
    DOMINANT_TOLERANCE,
    ONLINE_WINDOW_HITS,
    ZSCORE_OUTLIER_THRESHOLD,
)
from repro.exceptions import ConfigurationError
from repro.freq.outliers import DETECTOR_REGISTRY
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_positive_int,
    check_probability,
)


@dataclass(frozen=True)
class FtioConfig:
    """Parameters of one FTIO analysis.

    Attributes
    ----------
    sampling_frequency:
        fs in Hz used to discretize the bandwidth signal (paper default: 10 Hz
        for the case studies, 1 Hz for the limitation study).
    tolerance:
        Fraction of the maximum Z-score a candidate must reach (paper: 0.8).
    zscore_threshold:
        Z-score above which a bin is an outlier (paper: 3).
    outlier_method:
        Which detector decides the outlier set: ``"zscore"`` (default),
        ``"dbscan"``, ``"isolation_forest"``, ``"lof"`` or ``"find_peaks"``.
    outlier_kwargs:
        Extra keyword arguments forwarded to the detector constructor.
    use_autocorrelation:
        Whether to run the ACF refinement and report a refined confidence.
    acf_peak_threshold:
        Threshold of the ACF peak detection (paper: 0.15).
    compute_characterization:
        Whether to compute sigma_vol / sigma_time / R_IO / B_IO.
    io_kind:
        Restrict the analysis to ``"write"`` (default) or ``"read"`` requests,
        or ``None`` for both.
    sampling_mode:
        ``"point"`` (paper formula) or ``"bin"`` (volume conserving).
    window:
        Optional (t0, t1) analysis window Δt; ``None`` analyses the whole trace.
    skip_first_phase:
        Drop everything before the end of the first detected I/O burst; the
        paper offers this because the first phase is often prolonged by
        initialization overheads.
    harmonic_tolerance:
        Relative tolerance when deciding whether a candidate is a multiple of
        two of another candidate.
    online_window_hits:
        Number of consecutive identical detections after which the online mode
        shrinks its analysis window (Section II-D).
    """

    sampling_frequency: float = DEFAULT_SAMPLING_FREQUENCY
    tolerance: float = DOMINANT_TOLERANCE
    zscore_threshold: float = ZSCORE_OUTLIER_THRESHOLD
    outlier_method: str = "zscore"
    outlier_kwargs: dict[str, Any] = field(default_factory=dict)
    use_autocorrelation: bool = True
    acf_peak_threshold: float = ACF_PEAK_THRESHOLD
    compute_characterization: bool = True
    io_kind: str | None = "write"
    sampling_mode: str = "point"
    window: tuple[float, float] | None = None
    skip_first_phase: bool = False
    harmonic_tolerance: float = 0.05
    online_window_hits: int = ONLINE_WINDOW_HITS

    def __post_init__(self) -> None:
        check_positive(self.sampling_frequency, "sampling_frequency")
        check_probability(self.tolerance, "tolerance")
        check_positive(self.zscore_threshold, "zscore_threshold")
        check_in_range(self.acf_peak_threshold, "acf_peak_threshold", low=0.0, high=1.0)
        check_in_range(self.harmonic_tolerance, "harmonic_tolerance", low=0.0, high=0.5)
        check_positive_int(self.online_window_hits, "online_window_hits")
        if self.outlier_method not in DETECTOR_REGISTRY:
            known = ", ".join(sorted(DETECTOR_REGISTRY))
            raise ConfigurationError(
                f"unknown outlier_method {self.outlier_method!r}; known methods: {known}"
            )
        if self.io_kind not in (None, "write", "read"):
            raise ConfigurationError(f"io_kind must be 'write', 'read' or None, got {self.io_kind!r}")
        if self.sampling_mode not in ("point", "bin"):
            raise ConfigurationError(
                f"sampling_mode must be 'point' or 'bin', got {self.sampling_mode!r}"
            )
        if self.window is not None:
            t0, t1 = self.window
            if t1 <= t0:
                raise ConfigurationError(f"window end ({t1}) must be > start ({t0})")

    def with_updates(self, **changes: Any) -> "FtioConfig":
        """Return a copy of the configuration with the given fields replaced."""
        return replace(self, **changes)
