"""The FTIO detection pipeline (offline mode, Sections II-B and II-C).

The pipeline takes a trace (or any of the supported signal representations),
discretizes it, computes the single-sided power spectrum, finds outlier bins,
selects the dominant-frequency candidates D_f, applies the harmonic rule, and
derives the confidence and characterization metrics.  The online prediction
mode (:mod:`repro.core.online`) repeatedly invokes the same pipeline on a
growing — and adaptively shrinking — time window.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
from numpy.typing import NDArray

from repro.constants import MAX_PERIODIC_CANDIDATES
from repro.core.characterization import characterize
from repro.core.config import FtioConfig
from repro.core.confidence import candidate_confidence, refined_confidence
from repro.core.result import (
    CharacterizationResult,
    FrequencyCandidate,
    FtioResult,
    Periodicity,
)
from repro.exceptions import AnalysisError
from repro.freq.autocorr import detect_period_autocorrelation, similarity_to_candidates
from repro.freq.dft import DftResult, dft
from repro.freq.outliers import OutlierResult, make_detector
from repro.freq.spectrum import PowerSpectrum, power_spectrum_from_dft
from repro.trace.bandwidth import BandwidthSignal
from repro.trace.darshan import DarshanHeatmap, heatmap_to_signal
from repro.trace.sampling import DiscreteSignal, discretize_signal, discretize_trace
from repro.trace.trace import Trace
from repro.utils.stats import zscores

#: Union of the source types :meth:`Ftio.detect` accepts.
TraceLike = Trace | BandwidthSignal | DiscreteSignal | DarshanHeatmap


@dataclass(frozen=True)
class SpectralKernels:
    """Precomputed spectral building blocks for one :meth:`Ftio.analyze_signal` call.

    The batched detection engine (:mod:`repro.service.batch`) evaluates the
    expensive transforms of many sessions at once — a single 2-D ``rfft``, a
    batched Wiener–Khinchin ACF, one vectorized Z-score pass — and then feeds
    each session's slice back into the ordinary pipeline through this
    container.  Every field must be bit-identical to what the sequential path
    would have computed from ``signal``; the caller guarantees that, and the
    equivalence test suite enforces it.

    Attributes
    ----------
    signal:
        The *prepared* signal the kernels were computed from (after the
        configured ``skip_first_phase`` trimming).
    dft:
        Single-sided DFT of ``signal.samples``.
    scores:
        Z-scores of the non-DC power bins, or ``None`` to compute them.
    outliers:
        Prebuilt outlier decision (only when the configured detector's
        decision is batchable, e.g. ``"zscore"``), or ``None`` to run the
        detector per session.
    acf:
        Normalized autocorrelation of ``signal.samples``, or ``None``.
    """

    signal: DiscreteSignal
    dft: DftResult
    scores: NDArray[np.float64] | None = None
    outliers: OutlierResult | None = None
    acf: NDArray[np.float64] | None = None


class Ftio:
    """Frequency Techniques for I/O: period detection on an I/O trace.

    Parameters
    ----------
    config:
        Analysis parameters; defaults reproduce the paper's settings.

    Examples
    --------
    >>> from repro import Ftio, workloads
    >>> trace = workloads.ior_trace(ranks=4, iterations=8, seed=1)
    >>> result = Ftio().detect(trace)
    >>> result.is_periodic
    True
    """

    def __init__(self, config: FtioConfig | None = None):
        self.config = config or FtioConfig()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def detect(
        self,
        source: TraceLike,
        *,
        window: tuple[float, float] | None = None,
        sampling_frequency: float | None = None,
    ) -> FtioResult:
        """Run the offline detection on ``source`` and return an :class:`FtioResult`.

        Parameters
        ----------
        source:
            A :class:`Trace`, a :class:`BandwidthSignal`, an already
            discretized :class:`DiscreteSignal`, or a :class:`DarshanHeatmap`.
        window:
            Optional (t0, t1) analysis window overriding the configured one.
        sampling_frequency:
            Optional fs override (ignored for heatmaps and pre-discretized
            signals, which carry their own sampling frequency).
        """
        started = time.perf_counter()
        signal = self._to_signal(source, window=window, sampling_frequency=sampling_frequency)
        result = self.analyze_signal(signal)
        elapsed = time.perf_counter() - started
        metadata = dict(result.metadata)
        if isinstance(source, Trace):
            metadata.setdefault("trace_metadata", dict(source.metadata))
        return FtioResult(
            periodicity=result.periodicity,
            dominant_frequency=result.dominant_frequency,
            confidence=result.confidence,
            refined_confidence=result.refined_confidence,
            candidates=result.candidates,
            spectrum=result.spectrum,
            signal=result.signal,
            outliers=result.outliers,
            autocorrelation=result.autocorrelation,
            characterization=result.characterization,
            analysis_time=elapsed,
            metadata=metadata,
        )

    def analyze_signal(
        self,
        signal: DiscreteSignal,
        *,
        kernels: SpectralKernels | None = None,
        prepared: bool = False,
    ) -> FtioResult:
        """Run the frequency analysis on an already discretized signal.

        Parameters
        ----------
        signal:
            The discretized bandwidth signal.
        kernels:
            Optional precomputed transforms from the batched engine; every
            provided field replaces the equivalent per-call computation and
            must be bit-identical to it.  ``kernels.signal`` is analysed in
            place of ``signal`` (it already carries the configured trimming).
        prepared:
            Set when ``signal`` already went through :meth:`prepare_signal`,
            so the trimming is not applied a second time.
        """
        cfg = self.config
        if kernels is not None:
            signal = kernels.signal
        elif not prepared:
            signal = self.prepare_signal(signal)

        dft_result = kernels.dft if kernels is not None else dft(
            signal.samples, signal.sampling_frequency
        )
        spectrum = power_spectrum_from_dft(dft_result)
        power = spectrum.analysis_power
        scores = kernels.scores if kernels is not None and kernels.scores is not None else (
            zscores(power)
        )

        if kernels is not None and kernels.outliers is not None:
            outliers = kernels.outliers
        else:
            detector = make_detector(cfg.outlier_method, **cfg.outlier_kwargs)
            outliers = detector.detect(power, spectrum.analysis_frequencies)

        candidates = self._select_candidates(spectrum, scores, outliers.is_outlier)
        periodicity, dominant = self._classify(candidates)

        confidence = 0.0
        if dominant is not None:
            confidence = dominant.confidence

        autocorr = None
        refined = None
        if cfg.use_autocorrelation:
            autocorr = detect_period_autocorrelation(
                signal.samples,
                signal.sampling_frequency,
                peak_threshold=cfg.acf_peak_threshold,
                zscore_threshold=cfg.zscore_threshold,
                acf=kernels.acf if kernels is not None else None,
            )
            if dominant is not None and autocorr.period is not None:
                similarity = similarity_to_candidates(
                    dominant.frequency, autocorr.candidate_periods
                )
                refined = refined_confidence(confidence, autocorr.confidence, similarity)

        characterization: CharacterizationResult | None = None
        if cfg.compute_characterization and dominant is not None:
            try:
                characterization = characterize(signal, dominant.frequency)
            except AnalysisError:
                characterization = None

        return FtioResult(
            periodicity=periodicity,
            dominant_frequency=dominant.frequency if dominant is not None else None,
            confidence=confidence,
            refined_confidence=refined,
            candidates=tuple(candidates),
            spectrum=spectrum,
            signal=signal,
            outliers=outliers,
            autocorrelation=autocorr,
            characterization=characterization,
            metadata={
                "outlier_method": cfg.outlier_method,
                "tolerance": cfg.tolerance,
                "n_samples": signal.n_samples,
                "abstraction_error": signal.abstraction_error,
            },
        )

    def prepare_signal(self, signal: DiscreteSignal) -> DiscreteSignal:
        """Apply the configured pre-analysis trimming (``skip_first_phase``).

        This is the exact preparation :meth:`analyze_signal` performs before
        its transforms; the batched engine calls it first so the kernels it
        stacks are computed from the same samples the analysis will see.
        """
        if self.config.skip_first_phase:
            return _skip_first_phase(signal)
        return signal

    def to_signal(
        self,
        source: TraceLike,
        *,
        window: tuple[float, float] | None = None,
        sampling_frequency: float | None = None,
    ) -> DiscreteSignal:
        """Discretize ``source`` exactly as :meth:`detect` would (without analysing it)."""
        return self._to_signal(source, window=window, sampling_frequency=sampling_frequency)

    # ------------------------------------------------------------------ #
    # pipeline stages
    # ------------------------------------------------------------------ #
    def _to_signal(
        self,
        source: TraceLike,
        *,
        window: tuple[float, float] | None,
        sampling_frequency: float | None,
    ) -> DiscreteSignal:
        cfg = self.config
        window = window if window is not None else cfg.window
        fs = sampling_frequency if sampling_frequency is not None else cfg.sampling_frequency
        if isinstance(source, DiscreteSignal):
            if window is not None:
                return source.window(*window)
            return source
        if isinstance(source, DarshanHeatmap):
            kind = cfg.io_kind or "write"
            signal = heatmap_to_signal(source, kind=kind)
            if window is not None:
                return signal.window(*window)
            return signal
        if isinstance(source, BandwidthSignal):
            return discretize_signal(source, fs, mode=cfg.sampling_mode, window=window)
        if isinstance(source, Trace):
            return discretize_trace(
                source, fs, kind=cfg.io_kind, mode=cfg.sampling_mode, window=window
            )
        raise TypeError(
            "detect() expects a Trace, BandwidthSignal, DiscreteSignal or DarshanHeatmap, "
            f"got {type(source).__name__}"
        )

    def _select_candidates(
        self,
        spectrum: PowerSpectrum,
        scores: np.ndarray,
        outlier_mask: np.ndarray,
    ) -> list[FrequencyCandidate]:
        """Build the candidate set D_f (Eq. 3) and mark harmonics."""
        cfg = self.config
        if scores.size == 0:
            return []
        # A (near-)constant signal has essentially all of its power in the DC
        # bin; whatever remains is floating-point dust, not periodic activity.
        if spectrum.total_power <= max(spectrum.dc_power, 1.0) * 1e-12:
            return []
        z_max = float(scores.max())
        if z_max <= 0:
            return []
        within_tolerance = scores / z_max >= cfg.tolerance
        candidate_mask = outlier_mask & within_tolerance
        indices = np.flatnonzero(candidate_mask)
        if indices.size == 0:
            return []

        total_power = spectrum.total_power
        candidates: list[FrequencyCandidate] = []
        for idx in indices:
            k = int(idx) + 1  # analysis arrays exclude the DC bin
            candidates.append(
                FrequencyCandidate(
                    bin_index=k,
                    frequency=float(spectrum.frequencies[k]),
                    power=float(spectrum.power[k]),
                    contribution=float(spectrum.power[k] / total_power) if total_power else 0.0,
                    zscore=float(scores[idx]),
                    confidence=candidate_confidence(
                        int(idx),
                        scores,
                        zscore_threshold=cfg.zscore_threshold,
                        tolerance=cfg.tolerance,
                    ),
                )
            )
        candidates.sort(key=lambda c: c.frequency)
        return self._mark_harmonics(candidates)

    def _mark_harmonics(self, candidates: list[FrequencyCandidate]) -> list[FrequencyCandidate]:
        """Mark candidates that are integer multiples of a lower candidate as harmonics.

        Section II-B2: when extra candidates are multiples of a lower one, the
        higher frequencies are ignored; their presence indicates periodic I/O
        bursts rather than a separate period.  (The paper discusses the
        "multiple of two" case seen in its IOR example; bursty signals also
        produce odd harmonics, so any integer multiple is treated the same.)
        """
        tol = self.config.harmonic_tolerance
        marked: list[FrequencyCandidate] = []
        base_frequencies: list[float] = []
        for candidate in candidates:
            is_harmonic = False
            for base in base_frequencies:
                if base <= 0:
                    continue
                ratio = candidate.frequency / base
                nearest = round(ratio)
                if nearest >= 2 and abs(ratio - nearest) <= tol * nearest:
                    is_harmonic = True
                    break
            if is_harmonic:
                marked.append(
                    FrequencyCandidate(
                        bin_index=candidate.bin_index,
                        frequency=candidate.frequency,
                        power=candidate.power,
                        contribution=candidate.contribution,
                        zscore=candidate.zscore,
                        confidence=candidate.confidence,
                        is_harmonic=True,
                    )
                )
            else:
                marked.append(candidate)
                base_frequencies.append(candidate.frequency)
        return marked

    @staticmethod
    def _classify(
        candidates: list[FrequencyCandidate],
    ) -> tuple[Periodicity, FrequencyCandidate | None]:
        """Apply the 0 / 1 / 2 / more candidate rule of Section II-B2."""
        active = [c for c in candidates if not c.is_harmonic]
        if len(active) == 1:
            return Periodicity.PERIODIC, active[0]
        if len(active) == MAX_PERIODIC_CANDIDATES:
            dominant = max(active, key=lambda c: c.power)
            return Periodicity.PERIODIC_WITH_VARIATION, dominant
        return Periodicity.NOT_PERIODIC, None


def _skip_first_phase(signal: DiscreteSignal) -> DiscreteSignal:
    """Drop everything up to the end of the first substantial I/O burst.

    The first I/O phase of an application is often prolonged by initialization
    overheads (observed for HACC-IO in Section III-B); FTIO offers the option
    to skip it.  The burst boundary is the first sample where the bandwidth
    falls back below the mean after having exceeded it.
    """
    samples = signal.samples
    if len(samples) < 4:
        return signal
    threshold = samples.mean()
    above = samples > threshold
    if not above.any():
        return signal
    first_high = int(np.argmax(above))
    after = np.flatnonzero(~above[first_high:])
    if after.size == 0:
        return signal
    cut = first_high + int(after[0])
    if cut >= len(samples) - 4:
        return signal
    return DiscreteSignal(
        samples=samples[cut:],
        sampling_frequency=signal.sampling_frequency,
        t_start=signal.t_start + cut / signal.sampling_frequency,
        abstraction_error=signal.abstraction_error,
        mode=signal.mode,
    )


def detect(source: TraceLike, **config_kwargs) -> FtioResult:
    """Convenience function: run FTIO with the given configuration overrides.

    ``detect(trace, sampling_frequency=1.0, use_autocorrelation=False)`` is
    shorthand for building an :class:`FtioConfig` and an :class:`Ftio` object.
    """
    config = FtioConfig(**config_kwargs)
    return Ftio(config).detect(source)
