"""Merging consecutive online predictions into frequency intervals (Section II-D).

Different online evaluations use different time windows, so their frequency
resolution differs and the dominant frequencies they report do not coincide
exactly.  FTIO therefore merges the predictions with DBSCAN — eps set to the
resolution difference implied by the window lengths — and reports, per
cluster, the frequency interval [min, max] together with a probability equal
to the fraction of predictions that fall into the cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.freq.outliers.dbscan import NOISE, dbscan_labels
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class FrequencyInterval:
    """A merged cluster of dominant-frequency predictions.

    Attributes
    ----------
    low, high:
        Interval bounds in Hz (min and max of the clustered predictions).
    probability:
        Fraction of all predictions that fall into this cluster.
    count:
        Number of predictions in the cluster.
    """

    low: float
    high: float
    probability: float
    count: int

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError(f"interval high ({self.high}) must be >= low ({self.low})")

    @property
    def center(self) -> float:
        """Midpoint of the interval in Hz."""
        return 0.5 * (self.low + self.high)

    @property
    def period_range(self) -> tuple[float, float]:
        """The corresponding period interval (seconds), widest first."""
        if self.low <= 0:
            return (float("inf"), 1.0 / self.high if self.high > 0 else float("inf"))
        return (1.0 / self.high, 1.0 / self.low)

    def contains(self, frequency: float, *, slack: float = 0.0) -> bool:
        """True when ``frequency`` lies inside the (optionally widened) interval."""
        return (self.low - slack) <= frequency <= (self.high + slack)


def resolution_eps(window_lengths: list[float]) -> float:
    """Derive DBSCAN's eps from the analysis-window lengths of the predictions.

    The frequency resolution of a window of length Δt is 1/Δt, so predictions
    from windows Δt1 and Δt2 can legitimately differ by about
    |1/Δt1 − 1/Δt2|; the largest such difference is used as eps.  A minimum of
    the finest resolution is enforced so identical windows still cluster.
    """
    lengths = [w for w in window_lengths if w > 0]
    if not lengths:
        return 1e-6
    resolutions = np.array([1.0 / w for w in lengths])
    spread = float(resolutions.max() - resolutions.min())
    return max(spread, float(resolutions.min()), 1e-9)


def merge_predictions(
    frequencies: list[float],
    window_lengths: list[float] | None = None,
    *,
    eps: float | None = None,
    min_samples: int = 1,
) -> list[FrequencyInterval]:
    """Cluster dominant-frequency predictions into probability-weighted intervals.

    Parameters
    ----------
    frequencies:
        The dominant frequencies of the individual predictions (Hz).
    window_lengths:
        The Δt of each prediction; used to derive eps when not given.
    eps:
        Explicit DBSCAN radius in Hz (overrides the derived value).
    min_samples:
        DBSCAN core threshold; 1 means every prediction forms at least a
        singleton cluster, matching the paper's probability bookkeeping.

    Returns
    -------
    list[FrequencyInterval]
        Intervals sorted by descending probability (ties: lower frequency first).
    """
    freqs = np.asarray([f for f in frequencies if f is not None], dtype=np.float64)
    if freqs.size == 0:
        return []
    if eps is None:
        eps = resolution_eps(list(window_lengths or []) or [1.0 / max(freqs.max(), 1e-9)])
    check_positive(eps, "eps")
    labels = dbscan_labels(freqs, eps=eps, min_samples=min_samples)

    total = freqs.size
    intervals: list[FrequencyInterval] = []
    # Noise points (possible only when min_samples > 1) become singleton intervals.
    for label in np.unique(labels):
        if label == NOISE:
            for value in freqs[labels == NOISE]:
                intervals.append(
                    FrequencyInterval(low=float(value), high=float(value), probability=1.0 / total, count=1)
                )
            continue
        members = freqs[labels == label]
        intervals.append(
            FrequencyInterval(
                low=float(members.min()),
                high=float(members.max()),
                probability=float(len(members) / total),
                count=int(len(members)),
            )
        )
    intervals.sort(key=lambda iv: (-iv.probability, iv.low))
    return intervals


def most_probable_interval(intervals: list[FrequencyInterval]) -> FrequencyInterval | None:
    """Return the interval with the highest probability, or ``None`` when empty."""
    if not intervals:
        return None
    return intervals[0]
