"""Online period prediction (Section II-D).

During the execution of an application, the tracer appends new measurements to
the trace file at every flush.  FTIO is then re-executed on the data collected
so far to *predict* the period of the upcoming I/O phases.  Two enhancements
adapt the prediction to changing behaviour:

1. **Adaptive time windows** — after a dominant frequency has been found in
   ``k`` consecutive evaluations, the analysis window is shrunk to
   ``k × (last found period)`` so stale history stops diluting the spectrum.
2. **Frequency intervals** — the dominant frequencies of consecutive
   evaluations are merged with DBSCAN into intervals with probabilities
   (:mod:`repro.core.intervals`).

:class:`OnlinePredictor` implements both on top of the offline pipeline;
:func:`replay_online` drives it over a finished trace as if it were arriving
flush by flush, which is how the HACC-IO online experiment (Figure 15) is
reproduced without a live MPI application.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.core.config import FtioConfig
from repro.core.ftio import Ftio, SpectralKernels
from repro.core.intervals import FrequencyInterval, merge_predictions
from repro.core.result import FtioResult
from repro.exceptions import AnalysisError, EmptyTraceError, InsufficientSamplesError
from repro.trace.jsonl import FlushRecord, iter_flushes
from repro.trace.sampling import DiscreteSignal
from repro.trace.trace import Trace, merge_traces


@dataclass(frozen=True)
class PredictionStep:
    """Outcome of one online evaluation.

    Attributes
    ----------
    index:
        Sequence number of the evaluation (0-based).
    time:
        Wall-clock time at which the evaluation was triggered (the flush time).
    window:
        (t0, t1) analysis window that was used.
    result:
        Full FTIO result of the evaluation (a compact :class:`RestoredResult`
        after a snapshot restore), or ``None`` when the window held too little
        data to analyse.
    """

    index: int
    time: float
    window: tuple[float, float]
    result: FtioResult | RestoredResult | None

    @property
    def dominant_frequency(self) -> float | None:
        """Dominant frequency of this step, if any."""
        if self.result is None:
            return None
        return self.result.dominant_frequency

    @property
    def period(self) -> float | None:
        """Predicted period of this step, if any."""
        if self.result is None:
            return None
        return self.result.period

    @property
    def confidence(self) -> float:
        """Confidence of this step (0 when no result)."""
        if self.result is None:
            return 0.0
        return self.result.best_confidence

    @property
    def window_length(self) -> float:
        """Length Δt of the analysis window."""
        return self.window[1] - self.window[0]


@dataclass(frozen=True)
class PreparedStep:
    """Phase 1 of one online evaluation: the window and the discretized signal.

    :meth:`OnlinePredictor.prepare_step` computes the adaptive analysis
    window and discretizes the trace; :meth:`OnlinePredictor.complete_step`
    then runs the spectral analysis and commits the outcome to the history.
    The split exists so the batched detection engine can discretize many
    sessions, stack the resulting windows and evaluate their transforms in
    one batch between the two phases — ``step()`` is exactly
    ``complete_step(prepare_step(...))``.

    Attributes
    ----------
    time:
        Trigger time of the evaluation.
    window:
        (t0, t1) analysis window that will be recorded for the step.
    signal:
        The prepared (trimmed) discrete signal to analyse, or ``None`` when
        the window held too little data to discretize.
    trace_metadata:
        Metadata of the source trace, merged into the result's metadata.
    """

    time: float
    window: tuple[float, float]
    signal: DiscreteSignal | None
    trace_metadata: dict | None = None


@dataclass(frozen=True)
class RestoredResult:
    """Stand-in for an :class:`FtioResult` rebuilt from a snapshot.

    A full result holds the spectrum, the discretized signal and the outlier
    masks — far more than a crash-recovery snapshot needs to carry.  This
    shim preserves exactly the fields the online consumers read
    (:attr:`PredictionStep.dominant_frequency` / ``period`` / ``confidence``),
    so a restored predictor keeps answering ``latest_period()`` and
    ``merged_intervals()`` correctly.
    """

    dominant_frequency: float | None
    period: float | None
    best_confidence: float


@dataclass
class OnlinePredictor:
    """Stateful online predictor: call :meth:`step` after every flush.

    Parameters
    ----------
    config:
        Analysis configuration (shared with the offline pipeline).
    adaptive_window:
        Enable the time-window adaptation (enhancement 1 above).
    compact_history:
        Keep only a compact :class:`RestoredResult` per past evaluation
        instead of the full :class:`FtioResult` (which holds the spectrum and
        the discretized signal).  :meth:`step` still *returns* the full
        result; long-running callers that evaluate repeatedly (the streaming
        service sessions) enable this so predictor memory stays O(1) per
        evaluation instead of O(window).
    """

    config: FtioConfig = field(default_factory=FtioConfig)
    adaptive_window: bool = True
    compact_history: bool = False
    _ftio: Ftio = field(init=False, repr=False)
    _history: list[PredictionStep] = field(init=False, default_factory=list, repr=False)
    _consecutive_hits: int = field(init=False, default=0, repr=False)
    _last_period: float | None = field(init=False, default=None, repr=False)
    _window_start: float | None = field(init=False, default=None, repr=False)

    def __post_init__(self) -> None:
        self._ftio = Ftio(self.config)

    # ------------------------------------------------------------------ #
    @property
    def history(self) -> tuple[PredictionStep, ...]:
        """All evaluations performed so far."""
        return tuple(self._history)

    @property
    def predictions(self) -> tuple[PredictionStep, ...]:
        """The evaluations that produced a dominant frequency."""
        return tuple(s for s in self._history if s.dominant_frequency is not None)

    def latest(self) -> PredictionStep | None:
        """Most recent evaluation, or ``None`` before the first step."""
        return self._history[-1] if self._history else None

    def latest_period(self) -> float | None:
        """Most recent predicted period, or ``None`` if none was ever found."""
        for step in reversed(self._history):
            if step.period is not None:
                return step.period
        return None

    # ------------------------------------------------------------------ #
    def step(self, trace: Trace, *, now: float | None = None) -> PredictionStep:
        """Run one online evaluation on the data available in ``trace``.

        Parameters
        ----------
        trace:
            Everything the tracer has flushed so far (the predictor restricts
            it to the adaptive window itself).
        now:
            Trigger time of the evaluation; defaults to the end of the trace.
        """
        return self.complete_step(self.prepare_step(trace, now=now))

    def prepare_step(self, trace: Trace, *, now: float | None = None) -> PreparedStep:
        """Phase 1 of :meth:`step`: pick the adaptive window and discretize.

        Raises :class:`AnalysisError` on an empty trace, exactly like
        :meth:`step`; a window that holds too little data to discretize
        yields a prepared step with ``signal=None`` ("no result", not a
        crash).
        """
        if trace.is_empty:
            raise AnalysisError("cannot run an online prediction on an empty trace")
        t_end = float(now if now is not None else trace.t_end)
        t_begin = trace.t_start
        window_start = t_begin
        if self.adaptive_window and self._window_start is not None:
            window_start = max(t_begin, self._window_start)
        if window_start >= t_end:
            window_start = t_begin
        window = (window_start, t_end)

        signal: DiscreteSignal | None
        try:
            signal = self._ftio.prepare_signal(self._ftio.to_signal(trace, window=window))
        except (InsufficientSamplesError, AnalysisError, EmptyTraceError):
            # An analysis window that holds no analysable requests (e.g. only
            # reads under io_kind="write") is "no result", not a crash.
            signal = None
        return PreparedStep(
            time=t_end, window=window, signal=signal, trace_metadata=dict(trace.metadata)
        )

    def complete_step(
        self, prepared: PreparedStep, *, kernels: SpectralKernels | None = None
    ) -> PredictionStep:
        """Phase 2 of :meth:`step`: analyse the prepared signal and commit the outcome.

        Parameters
        ----------
        prepared:
            The output of :meth:`prepare_step`.
        kernels:
            Optional precomputed transforms (see :class:`SpectralKernels`);
            they must have been computed from ``prepared.signal``.
        """
        result: FtioResult | None = None
        if prepared.signal is not None:
            started = time.perf_counter()
            try:
                result = self._ftio.analyze_signal(
                    prepared.signal, kernels=kernels, prepared=True
                )
            except (InsufficientSamplesError, AnalysisError, EmptyTraceError):
                result = None
            if result is not None:
                metadata = dict(result.metadata)
                if prepared.trace_metadata is not None:
                    metadata.setdefault("trace_metadata", prepared.trace_metadata)
                result = replace(
                    result,
                    analysis_time=time.perf_counter() - started,
                    metadata=metadata,
                )

        step = PredictionStep(
            index=len(self._history), time=prepared.time, window=prepared.window, result=result
        )
        self._history.append(step)
        self._update_adaptive_state(step)
        if self.compact_history and result is not None:
            self._history[-1] = PredictionStep(
                index=step.index,
                time=step.time,
                window=step.window,
                result=RestoredResult(
                    dominant_frequency=result.dominant_frequency,
                    period=result.period,
                    best_confidence=result.best_confidence,
                ),
            )
        return step

    # ------------------------------------------------------------------ #
    # incremental-ingestion hooks (used by the streaming service sessions)
    # ------------------------------------------------------------------ #
    def evictable_before(self) -> float | None:
        """Timestamp before which no future evaluation will look, or ``None``.

        Once the adaptive window has shrunk, every subsequent :meth:`step`
        restricts its analysis to ``[window_start, now]``; a caller that owns
        the accumulated trace (e.g. a bounded-memory service session) may
        therefore drop requests that completed before this timestamp without
        changing any future prediction.
        """
        return self._window_start

    def state_dict(self) -> dict:
        """Serializable snapshot of the predictor state (crash recovery).

        The snapshot keeps the adaptive-window state and a compact record of
        every evaluation (enough for :meth:`latest_period` and
        :meth:`merged_intervals`); the heavyweight per-step spectra are not
        retained.  Restore with :meth:`load_state_dict`.
        """
        return {
            "consecutive_hits": self._consecutive_hits,
            "last_period": self._last_period,
            "window_start": self._window_start,
            "adaptive_window": self.adaptive_window,
            "steps": [
                {
                    "index": s.index,
                    "time": s.time,
                    "window": [s.window[0], s.window[1]],
                    "frequency": s.dominant_frequency,
                    "period": s.period,
                    "confidence": s.confidence,
                }
                for s in self._history
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore the predictor from a :meth:`state_dict` snapshot.

        The snapshot's ``adaptive_window`` flag overrides the constructor's:
        the restored predictor must shrink (or not shrink) its windows exactly
        as the snapshotted one would have.
        """
        self.adaptive_window = bool(state.get("adaptive_window", self.adaptive_window))
        self._consecutive_hits = int(state["consecutive_hits"])
        self._last_period = state["last_period"]
        self._window_start = state["window_start"]
        self._history.clear()
        for entry in state["steps"]:
            result: RestoredResult | None = None
            if entry["frequency"] is not None or entry["period"] is not None:
                result = RestoredResult(
                    dominant_frequency=entry["frequency"],
                    period=entry["period"],
                    best_confidence=float(entry["confidence"]),
                )
            self._history.append(
                PredictionStep(
                    index=int(entry["index"]),
                    time=float(entry["time"]),
                    window=(float(entry["window"][0]), float(entry["window"][1])),
                    result=result,
                )
            )

    def merged_intervals(self) -> list[FrequencyInterval]:
        """Merge all predictions so far into frequency intervals with probabilities."""
        preds = self.predictions
        freqs = [s.dominant_frequency for s in preds]
        windows = [s.window_length for s in preds]
        return merge_predictions(freqs, windows)

    # ------------------------------------------------------------------ #
    def _update_adaptive_state(self, step: PredictionStep) -> None:
        if step.period is None:
            self._consecutive_hits = 0
            return
        self._consecutive_hits += 1
        self._last_period = step.period
        if not self.adaptive_window:
            return
        hits_needed = self.config.online_window_hits
        if self._consecutive_hits >= hits_needed:
            # Keep only the last `hits_needed` periods of history for the next
            # evaluation: window_start = now - k * (last found period).
            self._window_start = step.time - hits_needed * step.period


def replay_online(
    trace: Trace,
    prediction_times: list[float],
    *,
    config: FtioConfig | None = None,
    adaptive_window: bool = True,
) -> list[PredictionStep]:
    """Replay the online prediction over a finished trace.

    The trace is revealed incrementally: at every time in ``prediction_times``
    only the requests that have *ended* by then are visible to the predictor,
    exactly as if the tracer had just flushed them.
    """
    predictor = OnlinePredictor(config=config or FtioConfig(), adaptive_window=adaptive_window)
    steps: list[PredictionStep] = []
    for t in sorted(prediction_times):
        if trace.is_empty:
            continue
        visible = trace.window(trace.t_start, t)
        if visible.is_empty:
            continue
        # Only requests that completed by t have been flushed.
        completed = visible.completed_before(t)
        if completed.is_empty:
            continue
        steps.append(predictor.step(completed, now=t))
    return steps


def predict_from_flushes(
    flushes: list[FlushRecord],
    *,
    config: FtioConfig | None = None,
    adaptive_window: bool = True,
) -> list[PredictionStep]:
    """Run one online evaluation after every flush record (the paper's Figure 5 loop).

    The accumulated trace is grown *incrementally*: each flush's requests are
    converted to a columnar trace exactly once and appended (stable
    merge-sort) to the running trace.  Each step still touches the full
    accumulated arrays — the asymptotics are unchanged — but the per-step work
    is now a vectorized numpy merge instead of re-converting every previously
    seen flush through Python ``IORequest`` objects, a large constant-factor
    win that grows with the flush count.
    """
    predictor = OnlinePredictor(config=config or FtioConfig(), adaptive_window=adaptive_window)
    steps: list[PredictionStep] = []
    accumulated = Trace.empty()
    for flush in sorted(flushes, key=lambda f: f.flush_index):
        if flush.requests:
            # Merge metadata only when the flush actually carries some; most
            # flushes repeat the same dict, so the running metadata can be
            # passed through unchanged instead of being rebuilt every step.
            if flush.metadata:
                metadata = {**accumulated.metadata, **flush.metadata}
            else:
                metadata = accumulated.metadata
            accumulated = merge_traces(
                [accumulated, Trace.from_requests(flush.requests)], metadata=metadata
            )
        elif flush.metadata:
            accumulated = accumulated.with_metadata(**flush.metadata)
        if accumulated.is_empty:
            continue
        steps.append(predictor.step(accumulated, now=flush.timestamp))
    return steps


def predict_from_file(
    path: str | Path,
    *,
    config: FtioConfig | None = None,
    adaptive_window: bool = True,
) -> list[PredictionStep]:
    """Run the online prediction over a JSON Lines trace file flush by flush."""
    return predict_from_flushes(
        list(iter_flushes(path)), config=config, adaptive_window=adaptive_window
    )
