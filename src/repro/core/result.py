"""Result types returned by the FTIO analysis."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.freq.autocorr import AutocorrelationResult
from repro.freq.outliers import OutlierResult
from repro.freq.spectrum import PowerSpectrum
from repro.trace.sampling import DiscreteSignal


class Periodicity(str, Enum):
    """Qualitative verdict on the periodicity of a signal (Section II-B2)."""

    #: Exactly one dominant-frequency candidate: confidently periodic.
    PERIODIC = "periodic"
    #: Two candidates: periodic with some variation in behaviour.
    PERIODIC_WITH_VARIATION = "periodic_with_variation"
    #: Zero or more than two candidates: most likely not periodic.
    NOT_PERIODIC = "not_periodic"

    @property
    def is_periodic(self) -> bool:
        """True for both periodic verdicts."""
        return self is not Periodicity.NOT_PERIODIC


@dataclass(frozen=True)
class FrequencyCandidate:
    """One dominant-frequency candidate f_k from the set D_f.

    Attributes
    ----------
    bin_index:
        Index k of the bin in the single-sided spectrum.
    frequency:
        f_k in Hz.
    power:
        p_k (unnormalized power of the bin).
    contribution:
        p_k / total power: the bin's share of the signal power.
    zscore:
        z_k of the bin.
    confidence:
        c_k as defined in Section II-C.
    is_harmonic:
        True when the candidate was discarded for being a multiple of two of a
        lower candidate.
    """

    bin_index: int
    frequency: float
    power: float
    contribution: float
    zscore: float
    confidence: float
    is_harmonic: bool = False

    @property
    def period(self) -> float:
        """1 / f_k in seconds."""
        return 1.0 / self.frequency


@dataclass(frozen=True)
class CharacterizationResult:
    """Further characterization of the signal given the detected period (Section II-C).

    Attributes
    ----------
    sigma_vol:
        Standard deviation of the per-period volume normalized by the maximum.
    sigma_time:
        Standard deviation of the per-period fraction of time spent on
        substantial I/O (Eq. 4).
    time_ratio:
        R_IO: fraction of the trace spent on substantial I/O.
    io_bandwidth:
        B_IO: bandwidth that characterizes the substantial I/O (bytes/s).
    bytes_per_period:
        Average amount of data transferred per period, V(S) / (L(T)·f_d).
    threshold:
        The noise threshold V(T) / L(T) in bytes/s.
    periodicity_score:
        1 − sigma_vol − sigma_time, clipped to [0, 1].
    """

    sigma_vol: float
    sigma_time: float
    time_ratio: float
    io_bandwidth: float
    bytes_per_period: float
    threshold: float
    periodicity_score: float


@dataclass(frozen=True)
class FtioResult:
    """Complete outcome of one FTIO evaluation (offline detection or one online step).

    Attributes
    ----------
    periodicity:
        Qualitative verdict (periodic / periodic with variation / not periodic).
    dominant_frequency:
        The dominant frequency f_d in Hz, or ``None`` when not periodic.
    confidence:
        c_d: confidence in the dominant frequency from the DFT analysis alone.
    refined_confidence:
        Average of (c_d, c_a, c_s) when autocorrelation was used, else ``None``.
    candidates:
        All dominant-frequency candidates (including discarded harmonics).
    spectrum:
        The single-sided power spectrum that was analysed.
    signal:
        The discretized signal the spectrum was computed from.
    outliers:
        Raw output of the configured outlier detector.
    autocorrelation:
        ACF refinement result, when enabled.
    characterization:
        sigma_vol / sigma_time / R_IO / B_IO metrics, when enabled and periodic.
    analysis_time:
        Wall-clock seconds spent in the analysis (the paper reports these).
    metadata:
        Extra information (window used, trace metadata, ...).
    """

    periodicity: Periodicity
    dominant_frequency: float | None
    confidence: float
    refined_confidence: float | None
    candidates: tuple[FrequencyCandidate, ...]
    spectrum: PowerSpectrum
    signal: DiscreteSignal
    outliers: OutlierResult
    autocorrelation: AutocorrelationResult | None = None
    characterization: CharacterizationResult | None = None
    analysis_time: float = 0.0
    metadata: dict = field(default_factory=dict)

    @property
    def is_periodic(self) -> bool:
        """True when a dominant frequency was identified."""
        return self.periodicity.is_periodic and self.dominant_frequency is not None

    @property
    def period(self) -> float | None:
        """1 / f_d in seconds, or ``None`` when the signal is not periodic."""
        if self.dominant_frequency is None or self.dominant_frequency <= 0:
            return None
        return 1.0 / self.dominant_frequency

    @property
    def best_confidence(self) -> float:
        """The refined confidence when available, else the DFT confidence."""
        return self.refined_confidence if self.refined_confidence is not None else self.confidence

    def active_candidates(self) -> tuple[FrequencyCandidate, ...]:
        """Candidates that were not discarded as harmonics."""
        return tuple(c for c in self.candidates if not c.is_harmonic)

    def summary(self) -> str:
        """One-line human-readable summary of the result."""
        if not self.is_periodic:
            return (
                f"not periodic ({len(self.active_candidates())} candidates, "
                f"{self.signal.n_samples} samples at {self.signal.sampling_frequency:g} Hz)"
            )
        period = self.period
        assert period is not None
        refined = (
            f", refined confidence {self.refined_confidence:.1%}"
            if self.refined_confidence is not None
            else ""
        )
        return (
            f"period {period:.2f} s (frequency {self.dominant_frequency:.4g} Hz), "
            f"confidence {self.confidence:.1%}{refined}"
        )
