"""Exception hierarchy for the FTIO reproduction library.

All library-specific errors derive from :class:`ReproError`, so callers can
catch a single base class at the boundary of the public API while still being
able to distinguish configuration problems from malformed traces or analysis
failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError):
    """A configuration value is invalid (negative sampling frequency, ...)."""


class TraceError(ReproError):
    """A trace or I/O request violates the trace model invariants."""


class TraceFormatError(TraceError):
    """A serialized trace file could not be parsed."""


class EmptyTraceError(TraceError):
    """An operation that requires at least one request got an empty trace."""


class AnalysisError(ReproError):
    """The frequency analysis could not be performed on the given signal."""


class InsufficientSamplesError(AnalysisError):
    """The discretized signal has too few samples for the requested analysis."""


class SchedulingError(ReproError):
    """The cluster simulator or scheduler was driven into an invalid state."""


class ServiceError(ReproError):
    """The streaming prediction service was driven into an invalid state."""


class ProtocolError(ServiceError):
    """A control-plane message violated the versioned wire protocol."""


class ConnectionLostError(ServiceError):
    """The control-plane connection dropped mid-conversation.

    Raised by :class:`~repro.client.ServiceClient` when the TCP connection
    dies during a request that is *not* safe to retry transparently (the
    reply — and whether the server acted on the request at all — is
    unknowable).  Idempotent calls reconnect and retry instead of raising.
    """


class ShardCrashedError(ServiceError):
    """A worker shard of the sharded service died (or its channel broke).

    Carries the shard index so the supervisor can restore exactly the lost
    sessions from the last snapshot and replay the spool tail.
    """

    def __init__(self, shard: int, message: str | None = None) -> None:
        self.shard = shard
        #: Replies collected from surviving shards before the crash was
        #: raised (set by the router so partial results are not lost).
        self.partial_responses: list = []
        super().__init__(message or f"shard {shard} crashed")


class WorkloadError(ReproError):
    """A workload generator received inconsistent parameters."""
