"""Frequency-analysis substrate: DFT, power spectrum, autocorrelation, outliers."""

from repro.freq.autocorr import (
    AutocorrelationResult,
    autocorrelation,
    detect_period_autocorrelation,
    similarity_to_candidates,
)
from repro.freq.dft import DftResult, cosine_wave, dft, reconstruct
from repro.freq.outliers import (
    DETECTOR_REGISTRY,
    DbscanDetector,
    FindPeaksDetector,
    IsolationForestDetector,
    LocalOutlierFactorDetector,
    OutlierDetector,
    OutlierResult,
    ZScoreDetector,
    dbscan_labels,
    make_detector,
)
from repro.freq.spectrum import PowerSpectrum, power_spectrum, power_spectrum_from_dft

__all__ = [
    "AutocorrelationResult",
    "autocorrelation",
    "detect_period_autocorrelation",
    "similarity_to_candidates",
    "DftResult",
    "cosine_wave",
    "dft",
    "reconstruct",
    "DETECTOR_REGISTRY",
    "DbscanDetector",
    "FindPeaksDetector",
    "IsolationForestDetector",
    "LocalOutlierFactorDetector",
    "OutlierDetector",
    "OutlierResult",
    "ZScoreDetector",
    "dbscan_labels",
    "make_detector",
    "PowerSpectrum",
    "power_spectrum",
    "power_spectrum_from_dft",
]
