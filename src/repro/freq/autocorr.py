"""Autocorrelation-based period detection (Section II-C).

The autocorrelation function (ACF) measures the correlation of a time series
with itself at every lag; repeated patterns appear as peaks at multiples of
the period.  FTIO uses the ACF as a *second opinion* on the DFT result:

1. compute the ACF of the discretized signal (normalized to [-1, 1]),
2. find the ACF peaks with SciPy's ``find_peaks`` (threshold 0.15),
3. the gaps between consecutive peaks, divided by fs, are period candidates,
4. filter candidate outliers with the Z-score using the ACF values as weights,
5. the period is the (weighted) average of the surviving candidates, and the
   confidence c_a = 1 − coefficient of variation of those candidates.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np
from numpy.typing import ArrayLike, NDArray
from scipy.signal import find_peaks

from repro.constants import ACF_PEAK_THRESHOLD, ZSCORE_OUTLIER_THRESHOLD
from repro.exceptions import InsufficientSamplesError
from repro.freq import plan
from repro.utils.stats import coefficient_of_variation, weighted_mean, zscores
from repro.utils.validation import check_positive


def autocorrelation(samples: ArrayLike) -> NDArray[np.float64]:
    """Return the normalized autocorrelation of ``samples`` for lags 0..N-1.

    The signal is mean-centred first; the ACF is normalized so the zero-lag
    value is exactly 1.  A constant signal returns an all-zero ACF (no
    correlation structure) except for the leading 1.

    The lag products are evaluated with the Wiener–Khinchin theorem — the
    inverse FFT of the power spectrum of the zero-padded signal — which is
    O(N log N) instead of the O(N²) of a direct ``np.correlate``.  Zero-padding
    to at least 2N − 1 points makes the circular correlation equal the linear
    one, so the result matches the direct method to floating-point precision.
    """
    x = np.asarray(samples, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError(f"samples must be one-dimensional, got shape {x.shape}")
    n = len(x)
    if n < 2:
        raise InsufficientSamplesError(f"autocorrelation needs at least 2 samples, got {n}")
    centred = x - x.mean()
    energy = float(np.dot(centred, centred))
    acf = np.zeros(n)
    acf[0] = 1.0
    if energy == 0.0:
        return acf
    # Power-of-two FFT length >= 2n - 1 avoids circular wrap-around and keeps
    # the transform on the fast radix-2 path.
    nfft = 1 << (2 * n - 1).bit_length()
    spectrum = plan.rfft(centred, n=nfft)
    lag_products = plan.irfft(spectrum * np.conj(spectrum), n=nfft)[:n]
    acf = lag_products / energy
    # Pin the zero lag: the FFT round-trip leaves it at 1 ± a few ulp only.
    acf[0] = 1.0
    return acf


def autocorrelation_batch(rows: Sequence[ArrayLike]) -> list[NDArray[np.float64]]:
    """Batched :func:`autocorrelation` over same-length signals, bit-identical per row.

    The two O(N log N) transforms of the Wiener–Khinchin evaluation run as
    single 2-D batched FFTs over the whole stack (``numpy``'s batched rfft and
    irfft produce bit-identical rows to their 1-D calls).  The steps whose
    floating-point result is *shape-sensitive* — the complex power product and
    the energy dot product, where SIMD/FMA contraction differs between 1-D and
    2-D evaluation — are computed per row on contiguous row views, so every
    returned row equals ``autocorrelation(rows[i])`` exactly, bit for bit.
    """
    k = len(rows)
    if k == 0:
        return []
    first = np.asarray(rows[0], dtype=np.float64)
    if first.ndim != 1:
        raise ValueError(f"samples must be one-dimensional, got shape {first.shape}")
    n = len(first)
    if n < 2:
        raise InsufficientSamplesError(f"autocorrelation needs at least 2 samples, got {n}")
    stacked = plan.workspace((k, n))
    stacked[0] = first
    for i in range(1, k):
        row = np.asarray(rows[i], dtype=np.float64)
        if row.ndim != 1:
            raise ValueError(f"samples must be one-dimensional, got shape {row.shape}")
        if len(row) != n:
            raise ValueError(f"all rows must share one length, got {len(row)} != {n}")
        stacked[i] = row
    means = stacked.mean(axis=1)
    centred = stacked - means[:, None]
    energies = [float(np.dot(centred[i], centred[i])) for i in range(k)]
    nfft = 1 << (2 * n - 1).bit_length()
    spectra = plan.rfft(centred, n=nfft, axis=1)
    power = np.empty_like(spectra)
    for i in range(k):
        np.multiply(spectra[i], np.conj(spectra[i]), out=power[i])
    lag_products = plan.irfft(power, n=nfft, axis=1)
    out: list[NDArray[np.float64]] = []
    for i in range(k):
        if energies[i] == 0.0:
            acf = np.zeros(n)
        else:
            acf = lag_products[i, :n] / energies[i]
        acf[0] = 1.0
        out.append(acf)
    return out


@dataclass(frozen=True)
class AutocorrelationResult:
    """Outcome of the ACF-based period detection.

    Attributes
    ----------
    acf:
        The normalized autocorrelation values for lags 0..N-1.
    peak_lags:
        Lags (in samples) of the detected ACF peaks.
    candidate_periods:
        Period candidates in seconds (gaps between consecutive peaks / fs),
        after Z-score filtering.
    all_periods:
        Period candidates before outlier filtering.
    period:
        The detected period (weighted average of candidates), or ``None`` if
        no candidates survived.
    confidence:
        c_a = 1 − coefficient of variation of the candidates (0 when unknown).
    sampling_frequency:
        fs in Hz of the analysed signal.
    """

    acf: NDArray[np.float64]
    peak_lags: NDArray[np.int64]
    candidate_periods: NDArray[np.float64]
    all_periods: NDArray[np.float64]
    period: float | None
    confidence: float
    sampling_frequency: float
    metadata: dict = field(default_factory=dict)

    @property
    def dominant_frequency(self) -> float | None:
        """1 / period, or ``None`` if no period was found."""
        if self.period is None or self.period <= 0:
            return None
        return 1.0 / self.period


def detect_period_autocorrelation(
    samples: ArrayLike,
    sampling_frequency: float,
    *,
    peak_threshold: float = ACF_PEAK_THRESHOLD,
    zscore_threshold: float = ZSCORE_OUTLIER_THRESHOLD,
    acf: NDArray[np.float64] | None = None,
) -> AutocorrelationResult:
    """Find the period of ``samples`` using the autocorrelation function.

    Parameters
    ----------
    samples:
        Discretized bandwidth signal.
    sampling_frequency:
        fs in Hz.
    peak_threshold:
        Minimum ACF value for a lag to count as a peak (paper: 0.15).
    zscore_threshold:
        Z-score beyond which a candidate period is discarded as an outlier.
    acf:
        Precomputed autocorrelation of ``samples`` (e.g. one row of
        :func:`autocorrelation_batch`), skipping the per-call transform.  The
        caller guarantees it equals ``autocorrelation(samples)``.
    """
    fs = check_positive(sampling_frequency, "sampling_frequency")
    if acf is None:
        acf = autocorrelation(samples)

    # Peaks of the ACF, excluding the trivial lag-0 peak.
    peak_indices, _ = find_peaks(acf[1:], height=peak_threshold)
    peak_lags = (peak_indices + 1).astype(np.int64)

    if len(peak_lags) == 0:
        return AutocorrelationResult(
            acf=acf,
            peak_lags=peak_lags,
            candidate_periods=np.zeros(0),
            all_periods=np.zeros(0),
            period=None,
            confidence=0.0,
            sampling_frequency=fs,
        )

    # Gaps between consecutive peaks (the first gap is measured from lag 0,
    # i.e. the first peak lag itself) are the period candidates in samples.
    gaps = np.diff(np.concatenate([[0], peak_lags])).astype(np.float64)

    # When a peak falls below the detection threshold (a weak or noisy burst),
    # the surrounding gap spans an integer number of periods.  Fold such gaps
    # back onto the fundamental by dividing by the nearest multiple of the
    # median gap — the ACF analogue of the DFT harmonic rule.
    median_gap = float(np.median(gaps))
    if median_gap > 0:
        multiples = np.maximum(np.round(gaps / median_gap), 1.0)
        gaps = gaps / multiples
    all_periods = gaps / fs

    # Weights: ACF value at the right-hand peak of each gap.
    weights = acf[peak_lags]
    weights = np.clip(weights, 0.0, None)

    if len(all_periods) == 1:
        candidates = all_periods
        candidate_weights = weights
    else:
        scores = zscores(all_periods)
        keep = scores < zscore_threshold
        if not keep.any():
            keep = np.ones(len(all_periods), dtype=bool)
        candidates = all_periods[keep]
        candidate_weights = weights[keep]

    period = weighted_mean(candidates, candidate_weights) if len(candidates) else None
    if period is not None and period <= 0:
        period = None
    if period is None:
        confidence = 0.0
    else:
        cov = coefficient_of_variation(candidates, weights=candidate_weights)
        confidence = float(np.clip(1.0 - cov, 0.0, 1.0))

    return AutocorrelationResult(
        acf=acf,
        peak_lags=peak_lags,
        candidate_periods=candidates,
        all_periods=all_periods,
        period=period,
        confidence=confidence,
        sampling_frequency=fs,
        metadata={"n_peaks": int(len(peak_lags)), "n_filtered": int(len(all_periods) - len(candidates))},
    )


def similarity_to_candidates(frequency: float, candidate_periods: ArrayLike) -> float:
    """Similarity c_s between a DFT dominant frequency and the ACF candidates.

    The similarity is 1 − coefficient of variation of the set {1/f_d} ∪
    candidates, i.e. how tightly the ACF candidates cluster around the DFT
    period.  Returns 0 when there are no candidates.
    """
    check_positive(frequency, "frequency")
    periods = np.asarray(candidate_periods, dtype=np.float64)
    if periods.size == 0:
        return 0.0
    combined = np.concatenate([[1.0 / frequency], periods])
    cov = coefficient_of_variation(combined)
    return float(np.clip(1.0 - cov, 0.0, 1.0))
