"""Discrete Fourier transform helpers (Section II-B1).

FTIO treats the discretized bandwidth signal x_n as a real-valued sequence and
computes its DFT with the FFT algorithm.  Because the signal is real, the
spectrum is conjugate-symmetric and only the single-sided half (k in
[0, N/2]) needs to be inspected; the inverse reconstruction of Eq. (1) then
uses cosine waves with twice the single-sided amplitude (except for the DC bin
and, for even N, the Nyquist bin).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.exceptions import InsufficientSamplesError
from repro.freq import plan
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DftResult:
    """Single-sided DFT of a real signal.

    Attributes
    ----------
    coefficients:
        Complex DFT coefficients X_k for k in [0, N//2] (``numpy.fft.rfft`` output).
    frequencies:
        Frequency of each bin in Hz, f_k = k * fs / N.
    n_samples:
        Length N of the time-domain signal.
    sampling_frequency:
        fs in Hz.
    """

    coefficients: NDArray[np.complex128]
    frequencies: NDArray[np.float64]
    n_samples: int
    sampling_frequency: float

    @property
    def amplitudes(self) -> NDArray[np.float64]:
        """|X_k| for every single-sided bin."""
        return np.abs(self.coefficients)

    @property
    def phases(self) -> NDArray[np.float64]:
        """arg(X_k) for every single-sided bin."""
        return np.angle(self.coefficients)

    @property
    def dc_offset(self) -> float:
        """X_0 / N: the mean of the time-domain signal."""
        return float(np.real(self.coefficients[0]) / self.n_samples)

    @property
    def frequency_resolution(self) -> float:
        """Spacing between consecutive bins, fs / N = 1 / Δt."""
        return self.sampling_frequency / self.n_samples

    @property
    def n_bins(self) -> int:
        """Number of single-sided bins (N // 2 + 1)."""
        return int(len(self.coefficients))

    def period_of_bin(self, k: int) -> float:
        """Period 1 / f_k of bin ``k`` (k must be >= 1)."""
        if k <= 0:
            raise ValueError("bin 0 is the DC offset and has no period")
        return 1.0 / float(self.frequencies[k])


def dft(samples: ArrayLike, sampling_frequency: float) -> DftResult:
    """Compute the single-sided DFT of a real signal via the FFT (O(N log N)).

    Parameters
    ----------
    samples:
        The discretized bandwidth values x_n.
    sampling_frequency:
        fs in Hz used during discretization.

    Raises
    ------
    InsufficientSamplesError
        If fewer than 4 samples are provided (no meaningful spectrum).
    """
    fs = check_positive(sampling_frequency, "sampling_frequency")
    x = np.asarray(samples, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError(f"samples must be one-dimensional, got shape {x.shape}")
    n = len(x)
    if n < 4:
        raise InsufficientSamplesError(f"DFT needs at least 4 samples, got {n}")
    coefficients = plan.rfft(x)
    # The frequency grid depends only on (n, fs), which recur on every
    # evaluation of a steady-state session — served from the shared cache.
    frequencies = plan.rfftfreq_grid(n, fs)
    return DftResult(
        coefficients=coefficients,
        frequencies=frequencies,
        n_samples=n,
        sampling_frequency=fs,
    )


def reconstruct(
    result: DftResult,
    *,
    bins: ArrayLike | None = None,
    n_samples: int | None = None,
) -> NDArray[np.float64]:
    """Reconstruct the time-domain signal from (a subset of) DFT bins — Eq. (1).

    Parameters
    ----------
    result:
        The single-sided DFT.
    bins:
        Indices of the bins to include (the DC bin 0 is always included so the
        reconstruction keeps the signal's mean).  ``None`` uses all bins, which
        reproduces the original signal up to floating-point error.
    n_samples:
        Length of the reconstructed signal; defaults to the original length.

    Returns
    -------
    numpy.ndarray
        The reconstructed samples.
    """
    n = int(n_samples if n_samples is not None else result.n_samples)
    if n <= 0:
        raise ValueError(f"n_samples must be positive, got {n}")
    n_orig = result.n_samples

    if bins is None:
        selected = np.arange(1, result.n_bins)
    else:
        selected = np.unique(np.asarray(bins, dtype=np.int64))
        selected = selected[selected >= 1]
    if np.any(selected >= result.n_bins):
        bad = int(selected[selected >= result.n_bins][0])
        raise IndexError(f"bin index {bad} out of range [0, {result.n_bins - 1}]")

    if n == n_orig:
        # At the native length the sum of single-sided cosines is exactly the
        # inverse FFT of the masked spectrum: one O(N log N) transform replaces
        # the per-bin Python loop.
        masked = np.zeros_like(result.coefficients)
        masked[0] = result.coefficients[0]
        masked[selected] = result.coefficients[selected]
        return plan.irfft(masked, n=n_orig)

    # Extension/truncation to a different length: evaluate the selected
    # cosines in broadcast expressions over (bins, time) grids, chunked over
    # bins so the temporaries stay bounded (~32 MB) instead of O(bins × n).
    total = np.full(n, result.dc_offset, dtype=np.float64)
    if selected.size:
        t_index = np.arange(n, dtype=np.float64)
        # The Nyquist bin of an even-length signal is not doubled.
        factors = np.where((n_orig % 2 == 0) & (selected == n_orig // 2), 1.0, 2.0)
        coefficients = factors * result.amplitudes[selected] / n_orig
        phases = result.phases[selected]
        chunk = max(1, 4_000_000 // n)
        for i in range(0, selected.size, chunk):
            rows = slice(i, i + chunk)
            angles = (
                (2.0 * np.pi / n_orig) * selected[rows, None] * t_index[None, :]
                + phases[rows, None]
            )
            total += (coefficients[rows, None] * np.cos(angles)).sum(axis=0)
    return total


def cosine_wave(
    result: DftResult,
    k: int,
    *,
    n_samples: int | None = None,
    include_dc: bool = True,
) -> NDArray[np.float64]:
    """Return the single cosine wave of bin ``k`` (optionally shifted by the DC offset).

    This is what the paper plots on top of the time-domain signal (Figures 2,
    13 and 14): the dominant-frequency cosine, shifted upwards by X_0 / N.
    """
    if k <= 0 or k >= result.n_bins:
        raise ValueError(f"bin index must be in [1, {result.n_bins - 1}], got {k}")
    wave = reconstruct(result, bins=[k], n_samples=n_samples)
    if not include_dc:
        wave = wave - result.dc_offset
    return wave
