"""Outlier-detection methods for the power spectrum (Section II-B2)."""

from repro.freq.outliers.base import OutlierDetector, OutlierResult
from repro.freq.outliers.dbscan import NOISE, DbscanDetector, dbscan_labels
from repro.freq.outliers.isolation_forest import IsolationForestDetector
from repro.freq.outliers.lof import LocalOutlierFactorDetector, local_outlier_factors
from repro.freq.outliers.peaks import FindPeaksDetector
from repro.freq.outliers.zscore import ZScoreDetector

#: Registry of detector factories keyed by their configuration name.
DETECTOR_REGISTRY: dict[str, type[OutlierDetector]] = {
    ZScoreDetector.name: ZScoreDetector,
    DbscanDetector.name: DbscanDetector,
    IsolationForestDetector.name: IsolationForestDetector,
    LocalOutlierFactorDetector.name: LocalOutlierFactorDetector,
    FindPeaksDetector.name: FindPeaksDetector,
}


def make_detector(name: str, **kwargs) -> OutlierDetector:
    """Instantiate a detector by its registry name (``"zscore"``, ``"dbscan"``, ...)."""
    try:
        factory = DETECTOR_REGISTRY[name]
    except KeyError as exc:
        known = ", ".join(sorted(DETECTOR_REGISTRY))
        raise ValueError(f"unknown outlier detector {name!r}; known detectors: {known}") from exc
    return factory(**kwargs)


__all__ = [
    "OutlierDetector",
    "OutlierResult",
    "NOISE",
    "DbscanDetector",
    "dbscan_labels",
    "IsolationForestDetector",
    "LocalOutlierFactorDetector",
    "local_outlier_factors",
    "FindPeaksDetector",
    "ZScoreDetector",
    "DETECTOR_REGISTRY",
    "make_detector",
]
