"""Common interface of the outlier-detection methods (Section II-B2).

FTIO extracts the dominant frequency by finding *outliers* in the power
spectrum: bins whose contribution is abnormally high compared to the rest.
The default method is the Z-score, but the paper notes that DBSCAN, isolation
forest, the local outlier factor and SciPy's find-peaks can all "deliver
decision functions to find the outliers", optionally merged with the Z-score.

Every detector consumes the non-DC power values (and the corresponding
frequencies, for methods that need the frequency spacing) and produces an
:class:`OutlierResult`: a per-bin score (higher means more anomalous) and a
boolean outlier mask.  Detectors only flag *high-power* outliers, since a bin
with an abnormally low power can never be a dominant frequency.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np
from numpy.typing import NDArray


@dataclass(frozen=True)
class OutlierResult:
    """Outcome of running one outlier detector on a power spectrum.

    Attributes
    ----------
    scores:
        Per-bin anomaly score; larger means more anomalous.  The scale is
        method-specific, only the ordering and the mask are comparable.
    is_outlier:
        Boolean mask marking the bins classified as (high-power) outliers.
    method:
        Name of the detector that produced the result.
    """

    scores: NDArray[np.float64]
    is_outlier: NDArray[np.bool_]
    method: str

    def __post_init__(self) -> None:
        if len(self.scores) != len(self.is_outlier):
            raise ValueError("scores and is_outlier must have the same length")

    @property
    def n_outliers(self) -> int:
        """Number of bins flagged as outliers."""
        return int(self.is_outlier.sum())

    def outlier_indices(self) -> NDArray[np.int64]:
        """Indices (into the analysed array) of the flagged bins."""
        return np.flatnonzero(self.is_outlier).astype(np.int64)


class OutlierDetector(abc.ABC):
    """Base class of all power-spectrum outlier detectors."""

    #: Short identifier used in configuration and reports.
    name: str = "base"

    @abc.abstractmethod
    def detect(
        self,
        power: NDArray[np.float64],
        frequencies: NDArray[np.float64] | None = None,
    ) -> OutlierResult:
        """Classify each power bin as outlier / inlier.

        Parameters
        ----------
        power:
            Non-DC power values p_k (k >= 1).
        frequencies:
            Matching frequencies f_k; optional, only used by detectors that
            derive parameters from the frequency spacing (e.g. DBSCAN's eps).
        """

    # ------------------------------------------------------------------ #
    @staticmethod
    def _validate(power: NDArray[np.float64], frequencies: NDArray[np.float64] | None) -> NDArray[np.float64]:
        arr = np.asarray(power, dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError(f"power must be one-dimensional, got shape {arr.shape}")
        if frequencies is not None and len(frequencies) != len(arr):
            raise ValueError(
                f"frequencies ({len(frequencies)}) and power ({len(arr)}) must have the same length"
            )
        return arr

    @staticmethod
    def _high_power_mask(power: NDArray[np.float64]) -> NDArray[np.bool_]:
        """Bins whose power exceeds the mean power (candidate-eligible bins)."""
        if len(power) == 0:
            return np.zeros(0, dtype=bool)
        return power > power.mean()
