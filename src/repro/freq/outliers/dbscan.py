"""DBSCAN-based outlier detection.

The paper mentions DBSCAN as an alternative decision function: the bulk of the
power-spectrum bins (small, noisy powers) forms one dense cluster, while the
few bins carrying real periodic power are left as *noise points*, i.e.
outliers.  The paper also notes that the frequency step can be used to compute
``eps``.  The same generic DBSCAN implementation is reused by the online
prediction mode to merge dominant frequencies from consecutive evaluations
into frequency intervals (Section II-D), which is why :func:`dbscan_labels`
accepts arbitrary 1-D/2-D point sets and is exported.
"""

from __future__ import annotations

from collections import deque

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.freq.outliers.base import OutlierDetector, OutlierResult
from repro.utils.validation import check_positive, check_positive_int

#: Label assigned by DBSCAN to noise points.
NOISE = -1


def dbscan_labels(points: ArrayLike, *, eps: float, min_samples: int) -> NDArray[np.int64]:
    """Run DBSCAN on ``points`` and return one cluster label per point.

    Points that belong to no cluster get the label :data:`NOISE` (-1).
    The implementation is a straightforward BFS region-growing DBSCAN with a
    vectorized pairwise-distance neighbourhood query — fine for the small
    point sets involved here (spectrum bins, online predictions).

    Parameters
    ----------
    points:
        Array of shape (n,) or (n, d).
    eps:
        Neighbourhood radius.
    min_samples:
        Minimum number of neighbours (including the point itself) for a point
        to be a core point.
    """
    check_positive(eps, "eps")
    check_positive_int(min_samples, "min_samples")
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim == 1:
        pts = pts[:, None]
    n = len(pts)
    if n == 0:
        return np.zeros(0, dtype=np.int64)

    # Pairwise distances; n is small (spectrum bins / prediction counts).
    diffs = pts[:, None, :] - pts[None, :, :]
    distances = np.sqrt((diffs**2).sum(axis=-1))
    neighbourhoods = [np.flatnonzero(distances[i] <= eps) for i in range(n)]
    core = np.array([len(nb) >= min_samples for nb in neighbourhoods])

    labels = np.full(n, NOISE, dtype=np.int64)
    cluster = 0
    for i in range(n):
        if labels[i] != NOISE or not core[i]:
            continue
        # Grow a new cluster from core point i.
        labels[i] = cluster
        queue = deque(neighbourhoods[i])
        while queue:
            j = queue.popleft()
            if labels[j] == NOISE:
                labels[j] = cluster
                if core[j]:
                    queue.extend(neighbourhoods[j])
        cluster += 1
    return labels


class DbscanDetector(OutlierDetector):
    """Flag high-power bins that DBSCAN classifies as noise points.

    Parameters
    ----------
    eps:
        Neighbourhood radius in (normalized) power units.  ``None`` derives it
        from the data as a multiple of the median absolute deviation, which
        plays the role of the "frequency step" heuristic in the paper.
    min_samples:
        DBSCAN core-point threshold.
    """

    name = "dbscan"

    def __init__(self, eps: float | None = None, min_samples: int = 5):
        if eps is not None:
            check_positive(eps, "eps")
        self.eps = eps
        self.min_samples = check_positive_int(min_samples, "min_samples")

    def detect(
        self,
        power: NDArray[np.float64],
        frequencies: NDArray[np.float64] | None = None,
    ) -> OutlierResult:
        arr = self._validate(power, frequencies)
        if len(arr) == 0:
            return OutlierResult(
                scores=np.zeros(0), is_outlier=np.zeros(0, dtype=bool), method=self.name
            )
        total = arr.sum()
        normalized = arr / total if total > 0 else arr
        eps = self.eps
        if eps is None:
            spread = float(np.median(np.abs(normalized - np.median(normalized))))
            eps = max(spread * 3.0, 1e-12)
        labels = dbscan_labels(normalized, eps=eps, min_samples=min(self.min_samples, len(arr)))
        noise = labels == NOISE
        mask = noise & self._high_power_mask(arr)
        # Score: distance of each bin's power from the mean, in eps units.
        scores = np.abs(normalized - normalized.mean()) / eps
        return OutlierResult(scores=scores, is_outlier=mask, method=self.name)
