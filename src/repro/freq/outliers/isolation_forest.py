"""Isolation-forest outlier detection.

A lightweight, dependency-free isolation forest for one-dimensional data
(the power values of the spectrum).  Anomalous bins are isolated with fewer
random splits, hence their average path length across the ensemble is short
and their anomaly score ``2^(-E[h]/c(n))`` approaches 1.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import NDArray

from repro.freq.outliers.base import OutlierDetector, OutlierResult
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_in_range, check_positive_int


def _average_path_length(n: int) -> float:
    """c(n): average path length of an unsuccessful BST search with n points."""
    if n <= 1:
        return 0.0
    harmonic = np.log(n - 1) + np.euler_gamma
    return 2.0 * harmonic - 2.0 * (n - 1) / n


def _isolation_path_lengths(
    values: NDArray[np.float64],
    sample: NDArray[np.float64],
    rng: np.random.Generator,
    max_depth: int,
) -> NDArray[np.float64]:
    """Path length of every value in one isolation tree built on ``sample``.

    For 1-D data an isolation tree is fully described by its sorted random
    split points, so the tree is simulated by recursive partitioning of the
    sample without materializing node objects.
    """
    lengths = np.zeros(len(values))

    def recurse(value_idx: NDArray[np.int64], node_sample: NDArray[np.float64], depth: int) -> None:
        if len(value_idx) == 0:
            return
        unique = np.unique(node_sample)
        if depth >= max_depth or len(unique) <= 1:
            lengths[value_idx] = depth + _average_path_length(len(node_sample))
            return
        lo, hi = float(unique.min()), float(unique.max())
        split = rng.uniform(lo, hi)
        left_mask = values[value_idx] < split
        sample_left = node_sample[node_sample < split]
        sample_right = node_sample[node_sample >= split]
        recurse(value_idx[left_mask], sample_left, depth + 1)
        recurse(value_idx[~left_mask], sample_right, depth + 1)

    recurse(np.arange(len(values)), sample, 0)
    return lengths


class IsolationForestDetector(OutlierDetector):
    """Flag high-power bins with an isolation-forest anomaly score above ``threshold``."""

    name = "isolation_forest"

    def __init__(
        self,
        n_trees: int = 50,
        subsample: int = 128,
        threshold: float = 0.6,
        seed: SeedLike = 0,
    ):
        self.n_trees = check_positive_int(n_trees, "n_trees")
        self.subsample = check_positive_int(subsample, "subsample")
        self.threshold = check_in_range(threshold, "threshold", low=0.0, high=1.0)
        self._seed = seed

    def anomaly_scores(self, power: NDArray[np.float64]) -> NDArray[np.float64]:
        """Return the isolation-forest anomaly score (in [0, 1]) of every bin."""
        arr = np.asarray(power, dtype=np.float64)
        if len(arr) == 0:
            return np.zeros(0)
        rng = as_generator(self._seed)
        sample_size = min(self.subsample, len(arr))
        max_depth = int(np.ceil(np.log2(max(sample_size, 2))))
        paths = np.zeros((self.n_trees, len(arr)))
        for t in range(self.n_trees):
            sample = rng.choice(arr, size=sample_size, replace=False)
            paths[t] = _isolation_path_lengths(arr, sample, rng, max_depth)
        mean_path = paths.mean(axis=0)
        c = _average_path_length(sample_size)
        if c == 0.0:
            return np.zeros_like(mean_path)
        return np.power(2.0, -mean_path / c)

    def detect(
        self,
        power: NDArray[np.float64],
        frequencies: NDArray[np.float64] | None = None,
    ) -> OutlierResult:
        arr = self._validate(power, frequencies)
        scores = self.anomaly_scores(arr)
        mask = (scores >= self.threshold) & self._high_power_mask(arr)
        return OutlierResult(scores=scores, is_outlier=mask, method=self.name)
