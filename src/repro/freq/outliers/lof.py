"""Local-outlier-factor (LOF) detection.

The LOF of a point compares its local reachability density to that of its
k nearest neighbours; values well above 1 mark points that sit in a much
sparser region than their neighbours — in the power spectrum, bins whose power
is far from the bulk of small noisy powers.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import NDArray

from repro.freq.outliers.base import OutlierDetector, OutlierResult
from repro.utils.validation import check_positive, check_positive_int


def local_outlier_factors(values: NDArray[np.float64], k: int) -> NDArray[np.float64]:
    """Compute the LOF of every element of the 1-D array ``values``.

    Uses exact k-nearest neighbours on the sorted values.  Constant inputs
    (zero distances everywhere) yield LOF = 1 for every point.
    """
    arr = np.asarray(values, dtype=np.float64)
    n = len(arr)
    if n == 0:
        return np.zeros(0)
    k = min(k, n - 1)
    if k < 1:
        return np.ones(n)

    # Pairwise distances in 1-D.
    distances = np.abs(arr[:, None] - arr[None, :])
    np.fill_diagonal(distances, np.inf)
    neighbour_idx = np.argsort(distances, axis=1)[:, :k]
    neighbour_dist = np.take_along_axis(distances, neighbour_idx, axis=1)

    # k-distance of each point = distance to its k-th nearest neighbour.
    k_distance = neighbour_dist[:, -1]

    # Reachability distance of p w.r.t. o = max(k_distance(o), d(p, o)).
    reach = np.maximum(k_distance[neighbour_idx], neighbour_dist)
    mean_reach = reach.mean(axis=1)

    # Local reachability density; guard fully-duplicated points.
    with np.errstate(divide="ignore"):
        lrd = np.where(mean_reach > 0, 1.0 / mean_reach, np.inf)

    # LOF = mean LRD of neighbours / own LRD.
    neighbour_lrd = lrd[neighbour_idx]
    lof = np.empty(n)
    for i in range(n):
        own = lrd[i]
        if np.isinf(own):
            lof[i] = 1.0
            continue
        ratio = neighbour_lrd[i] / own
        ratio = np.where(np.isinf(neighbour_lrd[i]), 1.0, ratio)
        lof[i] = float(np.mean(ratio))
    return lof


class LocalOutlierFactorDetector(OutlierDetector):
    """Flag high-power bins whose LOF exceeds ``threshold`` (1.5 by default)."""

    name = "lof"

    def __init__(self, n_neighbors: int = 20, threshold: float = 1.5):
        self.n_neighbors = check_positive_int(n_neighbors, "n_neighbors")
        self.threshold = check_positive(threshold, "threshold")

    def detect(
        self,
        power: NDArray[np.float64],
        frequencies: NDArray[np.float64] | None = None,
    ) -> OutlierResult:
        arr = self._validate(power, frequencies)
        if len(arr) == 0:
            return OutlierResult(
                scores=np.zeros(0), is_outlier=np.zeros(0, dtype=bool), method=self.name
            )
        scores = local_outlier_factors(arr, self.n_neighbors)
        mask = (scores >= self.threshold) & self._high_power_mask(arr)
        return OutlierResult(scores=scores, is_outlier=mask, method=self.name)
