"""Peak-detection-based outlier detection (SciPy ``find_peaks``).

The paper lists SciPy's find-peaks algorithm among the supported decision
functions.  A bin is flagged when it is a local maximum of the power spectrum
whose prominence is a significant fraction of the largest power.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import NDArray
from scipy.signal import find_peaks

from repro.freq.outliers.base import OutlierDetector, OutlierResult
from repro.utils.validation import check_in_range


class FindPeaksDetector(OutlierDetector):
    """Flag prominent local maxima of the power spectrum as outliers.

    Parameters
    ----------
    prominence_ratio:
        Minimum peak prominence expressed as a fraction of the maximum power.
    """

    name = "find_peaks"

    def __init__(self, prominence_ratio: float = 0.5):
        self.prominence_ratio = check_in_range(
            prominence_ratio, "prominence_ratio", low=0.0, high=1.0
        )

    def detect(
        self,
        power: NDArray[np.float64],
        frequencies: NDArray[np.float64] | None = None,
    ) -> OutlierResult:
        arr = self._validate(power, frequencies)
        if len(arr) == 0:
            return OutlierResult(
                scores=np.zeros(0), is_outlier=np.zeros(0, dtype=bool), method=self.name
            )
        peak_max = float(arr.max())
        if peak_max <= 0.0:
            return OutlierResult(
                scores=np.zeros_like(arr),
                is_outlier=np.zeros(len(arr), dtype=bool),
                method=self.name,
            )
        indices, properties = find_peaks(arr, prominence=self.prominence_ratio * peak_max)
        scores = np.zeros_like(arr)
        if len(indices):
            scores[indices] = properties["prominences"] / peak_max
        # The global maximum is a "peak" even when it sits at the array border,
        # where find_peaks cannot flag it; include it explicitly.
        argmax = int(arr.argmax())
        scores[argmax] = max(scores[argmax], 1.0)
        mask = scores >= self.prominence_ratio
        mask &= self._high_power_mask(arr)
        return OutlierResult(scores=scores, is_outlier=mask, method=self.name)
