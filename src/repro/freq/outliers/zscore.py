"""Z-score outlier detection — the default method of the paper (Eq. 2 and 3).

A bin k is an outlier when its Z-score z_k = (|p_k| - |mean(p)|) / std(p)
exceeds 3.  The dominant-frequency *candidate* selection additionally requires
z_k / z_max >= tolerance (0.8 by default); that second step lives in
:mod:`repro.core.ftio` because it is shared by all detectors.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import NDArray

from repro.constants import ZSCORE_OUTLIER_THRESHOLD
from repro.freq.outliers.base import OutlierDetector, OutlierResult
from repro.utils.stats import zscores
from repro.utils.validation import check_positive


class ZScoreDetector(OutlierDetector):
    """Flag bins whose Z-score exceeds ``threshold`` (3 by default)."""

    name = "zscore"

    def __init__(self, threshold: float = ZSCORE_OUTLIER_THRESHOLD):
        self.threshold = check_positive(threshold, "threshold")

    def detect(
        self,
        power: NDArray[np.float64],
        frequencies: NDArray[np.float64] | None = None,
    ) -> OutlierResult:
        arr = self._validate(power, frequencies)
        scores = zscores(arr)
        mask = scores >= self.threshold
        return OutlierResult(scores=scores, is_outlier=mask, method=self.name)
