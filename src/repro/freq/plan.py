"""Shared FFT plan / workspace cache for the spectral hot paths.

Every FFT in the repository — the offline :func:`repro.freq.dft.dft`, the
Wiener–Khinchin ACF in :mod:`repro.freq.autocorr`, and the batched
cross-session kernels in :mod:`repro.service.batch` — routes through this
module, so the sequential and batched detection paths always share one FFT
backend and stay bit-identical to each other.

Two levels of caching live here:

* **plans** — when ``pyfftw`` is importable its ``numpy_fft`` interface (with
  the builder cache enabled) replaces ``numpy.fft``, so repeated transforms
  of the same shape reuse a measured FFTW plan.  Without pyfftw the
  ``numpy.fft`` pocketfft kernels are used directly (they carry their own
  twiddle caches);
* **workspaces** — precomputed :func:`numpy.fft.rfftfreq` grids keyed by
  ``(n, fs)`` (the same window length and sampling rate recur on every
  evaluation of a session) and reusable per-thread stacking buffers for the
  batched kernels, so steady-state batches allocate nothing.
"""

from __future__ import annotations

import threading
from typing import Any

import numpy as np
from numpy.typing import NDArray

try:  # pragma: no cover - exercised only where pyfftw is installed
    import pyfftw  # type: ignore[import-not-found]
    from pyfftw.interfaces import numpy_fft as _fft  # type: ignore[import-not-found]

    pyfftw.interfaces.cache.enable()
    HAVE_PYFFTW = True
except ImportError:  # pragma: no cover - the default path in CI
    _fft = np.fft
    HAVE_PYFFTW = False

#: Upper bound on retained frequency grids (each is O(n) floats).
_MAX_CACHED_GRIDS = 64

_grid_lock = threading.Lock()
_grids: dict[tuple[int, float], NDArray[np.float64]] = {}
_local = threading.local()


def backend_name() -> str:
    """Name of the active FFT backend (``"pyfftw"`` or ``"numpy"``)."""
    return "pyfftw" if HAVE_PYFFTW else "numpy"


def rfft(x: NDArray[np.float64], n: int | None = None, *, axis: int = -1) -> NDArray[Any]:
    """Real-input FFT through the shared plan cache (1-D or batched 2-D)."""
    return _fft.rfft(x, n=n, axis=axis)


def irfft(x: NDArray[Any], n: int, *, axis: int = -1) -> NDArray[np.float64]:
    """Inverse real FFT through the shared plan cache (1-D or batched 2-D)."""
    return _fft.irfft(x, n=n, axis=axis)


def rfftfreq_grid(n: int, fs: float) -> NDArray[np.float64]:
    """Cached single-sided frequency grid ``rfftfreq(n, d=1/fs)``.

    The returned array is shared and marked read-only: every evaluation of a
    steady-state session asks for the same ``(n, fs)`` pair, and recomputing
    the grid was pure per-call overhead on the detection hot path.
    """
    key = (int(n), float(fs))
    with _grid_lock:
        grid = _grids.get(key)
        if grid is not None:
            return grid
    grid = np.fft.rfftfreq(int(n), d=1.0 / float(fs))
    grid.setflags(write=False)
    with _grid_lock:
        if len(_grids) >= _MAX_CACHED_GRIDS:
            _grids.pop(next(iter(_grids)))
        _grids[key] = grid
    return grid


def workspace(shape: tuple[int, ...], dtype: Any = np.float64) -> NDArray[Any]:
    """A reusable per-thread scratch array of ``shape`` (contents undefined).

    The batched kernels stack many session windows per pump; reusing the
    stacking buffer keeps steady-state batches allocation-free.  Buffers are
    thread-local, so concurrent batch evaluations never share one.
    """
    cache: dict[tuple[tuple[int, ...], Any], NDArray[Any]] = getattr(_local, "buffers", None) or {}
    if not hasattr(_local, "buffers"):
        _local.buffers = cache
    key = (tuple(int(s) for s in shape), np.dtype(dtype))
    buffer = cache.get(key)
    if buffer is None:
        if len(cache) >= 16:
            cache.pop(next(iter(cache)))
        buffer = np.empty(shape, dtype=dtype)
        cache[key] = buffer
    return buffer
