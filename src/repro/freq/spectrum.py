"""Power-spectrum construction (Section II-B1).

After the DFT, FTIO works on the *power spectrum* p_k = |X_k|^2 / N rather
than on the amplitude spectrum, because I/O noise produces many small
high-frequency amplitudes whose influence shrinks when squared.  For plotting
and for the confidence metrics the spectrum is normalized by the total signal
power, so that each bin reports its fractional contribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.freq.dft import DftResult, dft
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class PowerSpectrum:
    """Single-sided power spectrum of a discretized bandwidth signal.

    Attributes
    ----------
    frequencies:
        Frequencies f_k of every single-sided bin (including the DC bin 0).
    power:
        Power p_k = |X_k|^2 / N of every bin.
    n_samples:
        Length N of the time-domain signal.
    sampling_frequency:
        fs in Hz.
    """

    frequencies: NDArray[np.float64]
    power: NDArray[np.float64]
    n_samples: int
    sampling_frequency: float

    def __post_init__(self) -> None:
        if len(self.frequencies) != len(self.power):
            raise ValueError("frequencies and power must have the same length")

    @property
    def n_bins(self) -> int:
        """Number of single-sided bins."""
        return int(len(self.power))

    @property
    def dc_power(self) -> float:
        """Power of the DC bin (excluded from the outlier analysis)."""
        return float(self.power[0])

    @property
    def analysis_frequencies(self) -> NDArray[np.float64]:
        """Frequencies of the bins inspected for outliers (everything except DC)."""
        return self.frequencies[1:]

    @property
    def analysis_power(self) -> NDArray[np.float64]:
        """Power of the bins inspected for outliers (everything except DC)."""
        return self.power[1:]

    @property
    def total_power(self) -> float:
        """Total signal power excluding the DC bin."""
        return float(self.analysis_power.sum())

    @property
    def normalized_power(self) -> NDArray[np.float64]:
        """Power of the non-DC bins normalized to sum to 1 (the paper's normed spectrum)."""
        total = self.total_power
        if total == 0.0:
            return np.zeros_like(self.analysis_power)
        return self.analysis_power / total

    @property
    def frequency_resolution(self) -> float:
        """Spacing between consecutive bins, fs / N."""
        return self.sampling_frequency / self.n_samples

    @property
    def max_frequency(self) -> float:
        """Largest frequency on the x-axis of the spectrum (fs / 2)."""
        return float(self.frequencies[-1])

    def contribution(self, k: int) -> float:
        """Fractional contribution of bin ``k`` (k >= 1) to the total power."""
        if k <= 0 or k >= self.n_bins:
            raise ValueError(f"bin index must be in [1, {self.n_bins - 1}], got {k}")
        total = self.total_power
        if total == 0.0:
            return 0.0
        return float(self.power[k] / total)

    def period_of_bin(self, k: int) -> float:
        """Period 1 / f_k of bin ``k`` (k >= 1)."""
        if k <= 0 or k >= self.n_bins:
            raise ValueError(f"bin index must be in [1, {self.n_bins - 1}], got {k}")
        return 1.0 / float(self.frequencies[k])

    def top_bins(self, count: int = 3) -> list[int]:
        """Indices of the ``count`` non-DC bins with the highest power, descending."""
        if count <= 0:
            return []
        order = np.argsort(self.analysis_power)[::-1][:count]
        return [int(k) + 1 for k in order]


def power_spectrum_from_dft(result: DftResult) -> PowerSpectrum:
    """Build the power spectrum p_k = |X_k|^2 / N from a DFT result."""
    power = (result.amplitudes**2) / result.n_samples
    return PowerSpectrum(
        frequencies=result.frequencies,
        power=power,
        n_samples=result.n_samples,
        sampling_frequency=result.sampling_frequency,
    )


def power_spectrum(samples: ArrayLike, sampling_frequency: float) -> PowerSpectrum:
    """Compute the single-sided power spectrum of a real signal in one call."""
    check_positive(sampling_frequency, "sampling_frequency")
    return power_spectrum_from_dft(dft(samples, sampling_frequency))


def parseval_total_power(samples: ArrayLike) -> float:
    """Total signal power sum(x_n^2) — used by tests to check Parseval's theorem."""
    x = np.asarray(samples, dtype=np.float64)
    return float(np.sum(x * x))
