"""Observability layer: metrics core, span journal, Prometheus exposition.

Everything here is dependency-free (stdlib only).  See
``docs/observability.md`` for the metric catalogue and conventions.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NullHistogram,
    merge_snapshots,
    render_prometheus,
)
from repro.obs.spans import SPAN_STAGES, SpanJournal

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "NULL_HISTOGRAM",
    "SPAN_STAGES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NullHistogram",
    "SpanJournal",
    "merge_snapshots",
    "render_prometheus",
]
