"""Dependency-free metrics core: counters, gauges, mergeable histograms.

The service stack already keeps most of its counters (``BrokerStats``,
``DispatcherStats``, the ring writer's byte cursors) — what it lacked was a
uniform way to *export* them, and any way at all to keep distributions.
This module supplies both without new dependencies:

* :class:`Counter` / :class:`Gauge` — thread-safe scalars for code that has
  no native counter to piggyback on.
* :class:`Histogram` — fixed-bucket latency histogram whose state is a plain
  list of bucket counts, so two histograms **merge** by elementwise addition
  exactly like ``BrokerStats.merge`` sums its scalars.  Quantile estimates
  therefore survive cross-shard aggregation: merging per-shard snapshots and
  asking for p99 is as accurate as having observed every sample in one
  process (to within one bucket).
* :class:`MetricRegistry` — the per-process catalogue.  Besides owning live
  instruments it supports **views**: snapshot-time callbacks over counters a
  subsystem already maintains.  Views cost *zero* on the hot path — the
  broker does not pay a second increment per frame just so Prometheus can
  see ``frames_total``; the value is read once per scrape.

Snapshots (:meth:`MetricRegistry.collect`) are plain ``dict``/``list``/number
trees: msgpack-safe for the FTC1 control pipe (``MetricsReport``),
JSON-safe for ``/status``, and mergeable across shards with
:func:`merge_snapshots`.  :func:`render_prometheus` writes the text
exposition format by hand — stdlib only.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from collections.abc import Callable, Iterable, Mapping

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NullHistogram",
    "merge_snapshots",
    "render_prometheus",
]

#: Default bucket upper bounds (seconds) for latency histograms: roughly
#: geometric from 10 µs to 10 s, matching the service's observed range from
#: single-session detections (~100 µs) to cold resharding phases (~1 s).
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)

LabelMap = Mapping[str, str]


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        return self._value


class Gauge:
    """Point-in-time scalar (queue depth, occupancy, resident samples)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value: int | float = 0

    def set(self, value: int | float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: int | float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: int | float = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> int | float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with Prometheus ``le`` (upper-inclusive) semantics.

    ``bounds`` are ascending bucket upper bounds; an implicit ``+Inf`` bucket
    catches the overflow.  The full state is ``(bounds, counts, sum, max)``
    and two histograms over identical bounds merge by elementwise addition,
    which is associative and commutative — so per-shard snapshots can be
    merged in any order and grouping without changing any quantile estimate.

    :meth:`quantile` returns the upper bound of the bucket holding the
    requested rank (clipped to the observed maximum), which is within one
    bucket width of the exact pooled-sample quantile by construction.
    """

    __slots__ = ("_bounds", "_counts", "_lock", "_max", "_sum")

    def __init__(self, bounds: Iterable[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError("bucket bounds must be finite (+Inf is implicit)")
        if any(b1 <= b0 for b0, b1 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly ascending, got {bounds}")
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    @property
    def bounds(self) -> tuple[float, ...]:
        return self._bounds

    @property
    def count(self) -> int:
        return sum(self._counts)

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def max(self) -> float:
        return self._max

    def observe(self, value: float) -> None:
        idx = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            if value > self._max:
                self._max = value

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from bucket counts."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            counts = list(self._counts)
            maximum = self._max
        total = sum(counts)
        if total == 0:
            return 0.0
        target = q * total
        cumulative = 0
        for idx, count in enumerate(counts):
            cumulative += count
            if count and cumulative >= target:
                if idx >= len(self._bounds):
                    return maximum
                return min(self._bounds[idx], maximum)
        return maximum

    def merge(self, other: Histogram) -> Histogram:
        """Return a new histogram holding the pooled observations of both."""
        if self._bounds != other._bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self._bounds} vs {other._bounds}"
            )
        merged = Histogram(self._bounds)
        with self._lock:
            counts_a, sum_a, max_a = list(self._counts), self._sum, self._max
        with other._lock:
            counts_b, sum_b, max_b = list(other._counts), other._sum, other._max
        merged._counts = [a + b for a, b in zip(counts_a, counts_b)]
        merged._sum = sum_a + sum_b
        merged._max = max(max_a, max_b)
        return merged

    def to_dict(self) -> dict:
        """Plain-type state: msgpack/JSON-safe, accepted by :meth:`from_dict`."""
        with self._lock:
            return {
                "bounds": list(self._bounds),
                "counts": list(self._counts),
                "sum": self._sum,
                "max": self._max,
            }

    @classmethod
    def from_dict(cls, state: Mapping) -> Histogram:
        hist = cls(state["bounds"])
        counts = [int(c) for c in state["counts"]]
        if len(counts) != len(hist._counts):
            raise ValueError(
                f"count vector has {len(counts)} entries for "
                f"{len(hist._bounds)} bounds (+Inf)"
            )
        if any(c < 0 for c in counts):
            raise ValueError("bucket counts must be non-negative")
        hist._counts = counts
        hist._sum = float(state["sum"])
        hist._max = float(state["max"])
        return hist

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (
            self._bounds == other._bounds
            and self._counts == other._counts
            and self._sum == other._sum
            and self._max == other._max
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram(count={self.count}, sum={self._sum:.6g}, max={self._max:.6g})"


class NullHistogram:
    """No-op stand-in so instrumented call sites need no ``if`` guard."""

    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


#: Shared no-op instance handed out when metrics are disabled.
NULL_HISTOGRAM = NullHistogram()


def _label_key(labels: LabelMap | None) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricRegistry:
    """Per-process metric catalogue: live instruments plus snapshot-time views.

    Instruments created through the factory methods are keyed by
    ``(name, labels)`` — repeated calls return the same instance, so call
    sites can resolve their histogram once at construction time and pay only
    the ``observe`` on the hot path.  Views (:meth:`register_view`) read an
    existing counter through a callback only when :meth:`collect` runs.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._kinds: dict[str, str] = {}
        self._help: dict[str, str] = {}
        self._instruments: dict[tuple[str, tuple[tuple[str, str], ...]], object] = {}
        self._views: list[tuple[str, tuple[tuple[str, str], ...], Callable[[], float]]] = []

    def _register(self, name: str, kind: str, help: str) -> None:
        known = self._kinds.get(name)
        if known is not None and known != kind:
            raise ValueError(f"metric {name!r} already registered as {known}, not {kind}")
        self._kinds[name] = kind
        if help:
            self._help.setdefault(name, help)

    def counter(self, name: str, labels: LabelMap | None = None, *, help: str = "") -> Counter:
        return self._instrument(name, "counter", labels, help, Counter)

    def gauge(self, name: str, labels: LabelMap | None = None, *, help: str = "") -> Gauge:
        return self._instrument(name, "gauge", labels, help, Gauge)

    def histogram(
        self,
        name: str,
        labels: LabelMap | None = None,
        *,
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
        help: str = "",
    ) -> Histogram:
        buckets = tuple(buckets)
        return self._instrument(name, "histogram", labels, help, lambda: Histogram(buckets))

    def _instrument(self, name, kind, labels, help, factory):
        key = (name, _label_key(labels))
        with self._lock:
            self._register(name, kind, help)
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = factory()
                self._instruments[key] = instrument
            return instrument

    def register_view(
        self,
        name: str,
        kind: str,
        read: Callable[[], float],
        labels: LabelMap | None = None,
        *,
        help: str = "",
    ) -> None:
        """Expose ``read()`` as a ``counter`` or ``gauge`` series at collect time.

        The callback is invoked once per :meth:`collect`; a raising callback
        (e.g. a ring whose shard died) drops that series from the snapshot
        instead of failing the scrape.
        """
        if kind not in ("counter", "gauge"):
            raise ValueError(f"views must be counters or gauges, got {kind!r}")
        with self._lock:
            self._register(name, kind, help)
            self._views.append((name, _label_key(labels), read))

    def collect(self) -> dict:
        """Snapshot every instrument and view into a plain-type tree.

        Shape: ``{name: {"kind": ..., "help": ..., "series": [{"labels":
        {...}, "value": n} | {"labels": {...}, "hist": {...}}]}}``.
        """
        with self._lock:
            instruments = list(self._instruments.items())
            views = list(self._views)
            kinds = dict(self._kinds)
            helps = dict(self._help)
        snapshot: dict[str, dict] = {}

        def series_for(name: str) -> list:
            entry = snapshot.setdefault(
                name,
                {"kind": kinds[name], "help": helps.get(name, ""), "series": []},
            )
            return entry["series"]

        for (name, label_key), instrument in instruments:
            labels = dict(label_key)
            if isinstance(instrument, Histogram):
                series_for(name).append({"labels": labels, "hist": instrument.to_dict()})
            else:
                series_for(name).append({"labels": labels, "value": instrument.value})
        for name, label_key, read in views:
            try:
                value = read()
            except Exception:
                continue
            series_for(name).append({"labels": dict(label_key), "value": value})
        return snapshot


def merge_snapshots(snapshots: Iterable[Mapping]) -> dict:
    """Merge :meth:`MetricRegistry.collect` trees from many processes.

    Counters and gauges with identical ``(name, labels)`` sum; histograms
    merge bucket-wise via :meth:`Histogram.merge`.  Gauges sum rather than
    overwrite because every cross-shard gauge here is additive (occupancy,
    resident samples, pending evaluations).
    """
    merged: dict[str, dict] = {}
    for snapshot in snapshots:
        for name, entry in snapshot.items():
            target = merged.setdefault(
                name,
                {"kind": entry["kind"], "help": entry.get("help", ""), "series": []},
            )
            if target["kind"] != entry["kind"]:
                continue
            if not target["help"]:
                target["help"] = entry.get("help", "")
            by_labels = {
                _label_key(series["labels"]): series for series in target["series"]
            }
            for series in entry["series"]:
                key = _label_key(series["labels"])
                existing = by_labels.get(key)
                if existing is None:
                    copied = {"labels": dict(series["labels"])}
                    if "hist" in series:
                        copied["hist"] = Histogram.from_dict(series["hist"]).to_dict()
                    else:
                        copied["value"] = series["value"]
                    target["series"].append(copied)
                    by_labels[key] = copied
                elif "hist" in series:
                    pooled = Histogram.from_dict(existing["hist"]).merge(
                        Histogram.from_dict(series["hist"])
                    )
                    existing["hist"] = pooled.to_dict()
                else:
                    existing["value"] += series["value"]
    return merged


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: Mapping[str, str], extra: tuple[str, str] | None = None) -> str:
    items = sorted((str(k), str(v)) for k, v in labels.items())
    if extra is not None:
        items.append(extra)
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in items)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(snapshot: Mapping) -> str:
    """Render a snapshot tree in the Prometheus text exposition format.

    Histograms emit the conventional ``_bucket{le=...}`` cumulative series
    plus ``_sum`` and ``_count``; the trailing newline and ``# TYPE`` lines
    follow the format spec so a stock Prometheus scraper ingests the output
    unmodified.
    """
    lines: list[str] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry["kind"]
        help_text = entry.get("help", "")
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for series in entry["series"]:
            labels = series.get("labels", {})
            if kind == "histogram":
                hist = series["hist"]
                cumulative = 0
                for bound, count in zip(hist["bounds"], hist["counts"]):
                    cumulative += count
                    label_block = _format_labels(labels, ("le", _format_value(float(bound))))
                    lines.append(f"{name}_bucket{label_block} {cumulative}")
                cumulative += hist["counts"][-1]
                label_block = _format_labels(labels, ("le", "+Inf"))
                lines.append(f"{name}_bucket{label_block} {cumulative}")
                lines.append(f"{name}_sum{_format_labels(labels)} {hist['sum']!r}")
                lines.append(f"{name}_count{_format_labels(labels)} {cumulative}")
            else:
                value = series["value"]
                rendered = value if isinstance(value, int) else _format_value(float(value))
                lines.append(f"{name}{_format_labels(labels)} {rendered}")
    return "\n".join(lines) + "\n"
