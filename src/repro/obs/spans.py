"""Bounded ring-buffer span journal for frame/job lifecycle tracing.

A span is one timed stage of a frame's life: ``ingest`` (broker decode +
session append), ``route`` (parent router classification + forward),
``ring`` (shared-memory write incl. any stall), ``batch_claim`` (dispatcher
due-sweep), ``kernel`` (a batched spectral stage), ``detect`` (one
session's evaluation), ``publish`` (prediction fan-out).  Spans carry
``time.perf_counter`` timestamps — monotonic within a process, meaningful
only for durations and intra-process ordering, never for cross-host
comparison.

The journal is a fixed-capacity ring (`collections.deque(maxlen=...)`):
recording is O(1), memory is bounded, and old spans fall off the back.  It
is **off by default** (``ServiceConfig.spans=False``); hot paths hold a
``SpanJournal | None`` and skip the call entirely when tracing is not
requested, so the disabled cost is one attribute test.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager

__all__ = ["SPAN_STAGES", "SpanJournal"]

#: Canonical lifecycle stage names, in pipeline order.
SPAN_STAGES = (
    "ingest",
    "route",
    "ring",
    "batch_claim",
    "kernel",
    "detect",
    "publish",
)


class SpanJournal:
    """Fixed-capacity journal of ``(stage, job, started, duration)`` spans."""

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._spans: deque[tuple[str, str | None, float, float]] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._recorded = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def recorded(self) -> int:
        """Total spans ever recorded (including those evicted from the ring)."""
        return self._recorded

    def __len__(self) -> int:
        return len(self._spans)

    def record(
        self, stage: str, duration: float, *, job: str | None = None,
        started: float | None = None,
    ) -> None:
        """Append one completed span; ``started`` defaults to ``now - duration``."""
        if started is None:
            started = time.perf_counter() - duration
        with self._lock:
            self._spans.append((stage, job, started, duration))
            self._recorded += 1

    @contextmanager
    def span(self, stage: str, *, job: str | None = None):
        """Time a block and record it as one span."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.record(
                stage, time.perf_counter() - started, job=job, started=started
            )

    def snapshot(self) -> list[dict]:
        """Plain-type copy of the ring, oldest span first (JSON/msgpack safe)."""
        with self._lock:
            spans = list(self._spans)
        return [
            {"stage": stage, "job": job, "started": started, "duration": duration}
            for stage, job, started, duration in spans
        ]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
