"""I/O scheduling on top of the cluster simulator: Set-10, baselines, metrics."""

from repro.scheduling.baseline import ExclusiveFcfsScheduler, FairShareScheduler
from repro.scheduling.experiment import (
    CONFIGURATIONS,
    ExperimentRun,
    SchedulingExperiment,
    WorkloadConfig,
    summarize,
)
from repro.scheduling.metrics import SchedulingMetrics, evaluate, isolated_baselines
from repro.scheduling.periods import (
    ClairvoyantPeriods,
    ErrorInjectedPeriods,
    FtioPeriods,
    PeriodProvider,
)
from repro.scheduling.set10 import Set10Scheduler

__all__ = [
    "ExclusiveFcfsScheduler",
    "FairShareScheduler",
    "CONFIGURATIONS",
    "ExperimentRun",
    "SchedulingExperiment",
    "WorkloadConfig",
    "summarize",
    "SchedulingMetrics",
    "evaluate",
    "isolated_baselines",
    "ClairvoyantPeriods",
    "ErrorInjectedPeriods",
    "FtioPeriods",
    "PeriodProvider",
    "Set10Scheduler",
]
