"""Baseline bandwidth-sharing policies.

``FairShareScheduler`` models the unmodified file system ("Original" in
Figure 17): every job currently performing I/O receives an equal share of the
aggregate bandwidth, which is how an uncoordinated parallel file system
behaves once the jobs' request streams interleave.

``ExclusiveFcfsScheduler`` is an additional reference policy: only one job at
a time accesses the file system, in arrival order.  It is not part of the
paper's Figure 17 but is useful for ablation studies of the simulator.
"""

from __future__ import annotations

from repro.cluster.job import JobState
from repro.cluster.scheduler import IOScheduler


class FairShareScheduler(IOScheduler):
    """Split the file-system bandwidth evenly among all jobs doing I/O."""

    name = "original"

    def allocate(self, io_jobs: list[JobState], time: float) -> dict[str, float]:
        if not io_jobs:
            return {}
        share = 1.0 / len(io_jobs)
        return {job.name: share for job in io_jobs}


class ExclusiveFcfsScheduler(IOScheduler):
    """Grant the whole file system to the job that has waited the longest."""

    name = "exclusive-fcfs"

    def allocate(self, io_jobs: list[JobState], time: float) -> dict[str, float]:
        if not io_jobs:
            return {}
        # FCFS on the I/O-phase start time; ties broken by job name for determinism.
        chosen = min(io_jobs, key=lambda j: (j.io_waiting_since() or time, j.name))
        return {chosen.name: 1.0}
