"""The Figure 17 scheduling experiment.

Workload (Section IV): one *high-frequency* application with a period of
19.2 s and fifteen *low-frequency* applications with a period of 384 s, all
derived from IOR, with I/O consuming 6.25 % of each period in isolation.  Ten
executions (different release jitter) are simulated for each of the four
configurations:

* ``set10-clairvoyant`` — Set-10 fed with the ideal, in-isolation periods;
* ``set10-ftio``        — Set-10 fed with FTIO's runtime estimates;
* ``set10-error``       — Set-10 fed with FTIO estimates corrupted by ±50 %;
* ``original``          — the unmodified file system (fair sharing).

The experiment reports the stretch, I/O slowdown and utilization of every
execution, mirroring the three panels of Figure 17.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.filesystem import SharedFileSystem
from repro.cluster.job import JobSpec
from repro.cluster.simulator import ClusterSimulator, SimulationResult
from repro.scheduling.baseline import FairShareScheduler
from repro.scheduling.metrics import SchedulingMetrics, evaluate, isolated_baselines
from repro.scheduling.periods import ClairvoyantPeriods, ErrorInjectedPeriods, FtioPeriods
from repro.scheduling.set10 import Set10Scheduler
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive, check_positive_int

#: The four configurations compared in Figure 17.
CONFIGURATIONS = ("set10-clairvoyant", "set10-ftio", "set10-error", "original")


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of the Figure 17 workload."""

    high_frequency_period: float = 19.2
    low_frequency_period: float = 384.0
    n_high: int = 1
    n_low: int = 15
    io_fraction: float = 0.0625
    iterations_high: int = 60
    iterations_low: int = 3
    filesystem_bandwidth: float = 10e9
    job_bandwidth: float = 6e9
    release_jitter: float = 20.0

    def __post_init__(self) -> None:
        check_positive(self.high_frequency_period, "high_frequency_period")
        check_positive(self.low_frequency_period, "low_frequency_period")
        check_positive_int(self.n_high, "n_high")
        check_positive_int(self.n_low, "n_low")
        check_positive(self.filesystem_bandwidth, "filesystem_bandwidth")
        check_positive(self.job_bandwidth, "job_bandwidth")
        if not 0.0 < self.io_fraction < 1.0:
            raise ValueError(f"io_fraction must be in (0, 1), got {self.io_fraction}")


@dataclass(frozen=True)
class ExperimentRun:
    """One simulated execution of one configuration."""

    configuration: str
    repetition: int
    metrics: SchedulingMetrics
    result: SimulationResult


@dataclass
class SchedulingExperiment:
    """Builds the workload and runs the four Figure 17 configurations."""

    workload: WorkloadConfig = field(default_factory=WorkloadConfig)

    # ------------------------------------------------------------------ #
    def filesystem(self) -> SharedFileSystem:
        """The shared file system used by every configuration."""
        return SharedFileSystem(capacity=self.workload.filesystem_bandwidth, name="beegfs")

    def build_jobs(self, *, seed: SeedLike = None) -> list[JobSpec]:
        """Build the 1 high-frequency + 15 low-frequency job mix with jittered releases."""
        w = self.workload
        rng = as_generator(seed)
        jobs: list[JobSpec] = []
        for i in range(w.n_high):
            jobs.append(
                JobSpec(
                    name=f"high-{i}",
                    period=w.high_frequency_period,
                    io_fraction=w.io_fraction,
                    iterations=w.iterations_high,
                    io_bandwidth=w.job_bandwidth,
                    start_time=float(rng.uniform(0.0, w.release_jitter)),
                )
            )
        for i in range(w.n_low):
            jobs.append(
                JobSpec(
                    name=f"low-{i}",
                    period=w.low_frequency_period,
                    io_fraction=w.io_fraction,
                    iterations=w.iterations_low,
                    io_bandwidth=w.job_bandwidth,
                    start_time=float(rng.uniform(0.0, w.release_jitter)),
                )
            )
        return jobs

    def true_periods(self, jobs: list[JobSpec]) -> dict[str, float]:
        """The ideal (isolation) periods handed to the clairvoyant configuration."""
        return {job.name: job.period for job in jobs}

    # ------------------------------------------------------------------ #
    def run_configuration(
        self,
        configuration: str,
        *,
        seed: SeedLike = None,
        repetition: int = 0,
    ) -> ExperimentRun:
        """Simulate one configuration once and return its metrics."""
        if configuration not in CONFIGURATIONS:
            raise ValueError(
                f"unknown configuration {configuration!r}; expected one of {CONFIGURATIONS}"
            )
        rng = as_generator(seed)
        jobs = self.build_jobs(seed=rng)
        filesystem = self.filesystem()

        if configuration == "original":
            scheduler = FairShareScheduler()
        elif configuration == "set10-clairvoyant":
            scheduler = Set10Scheduler(ClairvoyantPeriods(self.true_periods(jobs)))
            scheduler.name = "set10-clairvoyant"
        elif configuration == "set10-ftio":
            scheduler = Set10Scheduler(FtioPeriods())
            scheduler.name = "set10-ftio"
        else:  # set10-error
            provider = ErrorInjectedPeriods(FtioPeriods(), error=0.5, seed=rng)
            scheduler = Set10Scheduler(provider)
            scheduler.name = "set10-error"

        simulator = ClusterSimulator(filesystem, scheduler, jobs)
        result = simulator.run()
        baselines = isolated_baselines(jobs, filesystem)
        metrics = evaluate(result, baselines)
        return ExperimentRun(
            configuration=configuration,
            repetition=repetition,
            metrics=metrics,
            result=result,
        )

    def run(
        self,
        *,
        repetitions: int = 10,
        configurations: tuple[str, ...] = CONFIGURATIONS,
        seed: SeedLike = 0,
    ) -> list[ExperimentRun]:
        """Run every configuration ``repetitions`` times (the Figure 17 boxplots)."""
        check_positive_int(repetitions, "repetitions")
        rng = as_generator(seed)
        runs: list[ExperimentRun] = []
        for repetition in range(repetitions):
            rep_seed = int(rng.integers(0, 2**31 - 1))
            for configuration in configurations:
                runs.append(
                    self.run_configuration(
                        configuration, seed=rep_seed, repetition=repetition
                    )
                )
        return runs


def summarize(runs: list[ExperimentRun]) -> dict[str, dict[str, float]]:
    """Aggregate experiment runs into per-configuration mean metrics.

    Returns a mapping configuration -> {stretch, io_slowdown, utilization}
    (means over the repetitions), which is what the Figure 17 discussion in
    the paper quotes (e.g. −56 % I/O slowdown, +26 % utilization vs original).
    """
    summary: dict[str, dict[str, float]] = {}
    for configuration in {run.configuration for run in runs}:
        subset = [run.metrics for run in runs if run.configuration == configuration]
        summary[configuration] = {
            "stretch": float(np.mean([m.stretch for m in subset])),
            "io_slowdown": float(np.mean([m.io_slowdown for m in subset])),
            "utilization": float(np.mean([m.utilization for m in subset])),
        }
    return summary
