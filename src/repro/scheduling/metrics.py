"""Evaluation metrics of the scheduling use case (Section IV / Figure 17).

Three metrics compare a scheduled execution against the jobs running in
isolation:

* **stretch** — by how much a job's runtime grew because of inter-job
  interference (geometric mean over the jobs of one execution; best value 1);
* **I/O slowdown** — by how much a job's cumulated I/O time grew (geometric
  mean; best value 1);
* **utilization** — the fraction of node time spent on computation instead of
  I/O (system-level metric in [0, 1]; higher is better).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.filesystem import SharedFileSystem
from repro.cluster.job import JobSpec
from repro.cluster.simulator import JobResult, SimulationResult, run_isolated
from repro.utils.stats import geometric_mean


@dataclass(frozen=True)
class SchedulingMetrics:
    """Aggregated metrics of one simulated execution."""

    scheduler: str
    stretch: float
    io_slowdown: float
    utilization: float

    def as_row(self) -> dict[str, float | str]:
        """Return the metrics as a flat dict (one row of the Figure 17 table)."""
        return {
            "scheduler": self.scheduler,
            "stretch": self.stretch,
            "io_slowdown": self.io_slowdown,
            "utilization": self.utilization,
        }


def isolated_baselines(
    specs: list[JobSpec], filesystem: SharedFileSystem
) -> dict[str, JobResult]:
    """Run every job alone on the file system and return its baseline result."""
    return {spec.name: run_isolated(spec, filesystem) for spec in specs}


def evaluate(
    result: SimulationResult,
    baselines: dict[str, JobResult] | None = None,
    *,
    filesystem: SharedFileSystem | None = None,
) -> SchedulingMetrics:
    """Compute stretch, I/O slowdown and utilization for a simulation result.

    Either precomputed ``baselines`` or the ``filesystem`` (to compute them on
    the fly) must be provided.
    """
    if baselines is None:
        if filesystem is None:
            raise ValueError("either baselines or filesystem must be given")
        baselines = isolated_baselines([r.spec for r in result.jobs], filesystem)

    stretches: list[float] = []
    slowdowns: list[float] = []
    for job in result.jobs:
        baseline = baselines[job.spec.name]
        stretches.append(max(job.makespan / baseline.makespan, 1e-12))
        slowdowns.append(max(job.total_io_time / baseline.total_io_time, 1e-12))

    return SchedulingMetrics(
        scheduler=result.scheduler_name,
        stretch=geometric_mean(stretches),
        io_slowdown=geometric_mean(slowdowns),
        utilization=result.utilization,
    )
