"""Period knowledge providers for the Set-10 scheduler (Section IV).

Set-10 groups jobs by the period of their I/O phases.  Figure 17 compares
four sources of that knowledge:

* **clairvoyant** — the ideal, in-isolation period is supplied manually;
* **FTIO** — the period is estimated at runtime from the phases observed so
  far, using the actual FTIO pipeline of this library;
* **error-injected** — the FTIO estimate is randomly made 50 % larger or
  smaller before being handed to the scheduler;
* **original** — no period knowledge at all (no Set-10; plain fair sharing).

All providers implement the tiny :class:`PeriodProvider` protocol consumed by
:class:`~repro.scheduling.set10.Set10Scheduler`, and providers that learn at
runtime also act as simulator phase observers.

A fifth provider, :class:`~repro.service.provider.ServicePeriodProvider`,
serves periods published by the streaming prediction service — the fully
online variant of the FTIO configuration, where the estimates come from live
flush ingestion instead of an in-process pipeline.  It is re-exported here
lazily (``from repro.scheduling.periods import ServicePeriodProvider``) so
this module stays import-light for users who never start the service.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.job import JobState, PhaseRecord
from repro.core.config import FtioConfig
from repro.core.ftio import Ftio
from repro.exceptions import AnalysisError, InsufficientSamplesError
from repro.trace.record import IORequest
from repro.trace.trace import Trace
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive


def __getattr__(name: str):
    # Lazy re-export: the service depends on this module (for PeriodProvider),
    # so importing it eagerly here would be circular.
    if name == "ServicePeriodProvider":
        from repro.service.provider import ServicePeriodProvider

        return ServicePeriodProvider
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class PeriodProvider(abc.ABC):
    """Supplies the period estimate Set-10 uses to group and prioritize jobs."""

    @abc.abstractmethod
    def period_of(self, job_name: str) -> float | None:
        """Current period estimate of ``job_name`` in seconds, or ``None`` if unknown."""

    def observe_phase(self, job: JobState, record: PhaseRecord, time: float) -> None:
        """Phase-completion hook (providers that learn at runtime override this)."""


@dataclass
class ClairvoyantPeriods(PeriodProvider):
    """The ideal provider: periods are known in advance (the paper's "Set-10 + clairv.")."""

    periods: dict[str, float]

    def period_of(self, job_name: str) -> float | None:
        return self.periods.get(job_name)


@dataclass
class FtioPeriods(PeriodProvider):
    """Estimate each job's period at runtime with FTIO, from the observed I/O phases.

    Every completed I/O phase is appended to the job's phase-level trace (one
    request per phase).  Once at least ``min_phases`` phases are available,
    FTIO is re-run on that trace and the dominant period — the "most recent
    prediction" in the paper's wording — replaces the previous estimate.
    Before the first successful detection the average gap between phase starts
    is used as a bootstrap estimate (the characteristic time w_iter of the
    original Set-10 formulation).
    """

    sampling_frequency: float = 1.0
    min_phases: int = 3
    use_autocorrelation: bool = False
    _phases: dict[str, list[PhaseRecord]] = field(default_factory=dict, repr=False)
    _estimates: dict[str, float] = field(default_factory=dict, repr=False)
    _evaluations: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        check_positive(self.sampling_frequency, "sampling_frequency")
        config = FtioConfig(
            sampling_frequency=self.sampling_frequency,
            use_autocorrelation=self.use_autocorrelation,
            compute_characterization=False,
        )
        self._ftio = Ftio(config)

    # ------------------------------------------------------------------ #
    @property
    def evaluations(self) -> int:
        """Number of FTIO evaluations performed so far (for overhead reporting)."""
        return self._evaluations

    def period_of(self, job_name: str) -> float | None:
        return self._estimates.get(job_name)

    def observe_phase(self, job: JobState, record: PhaseRecord, time: float) -> None:
        phases = self._phases.setdefault(job.name, [])
        phases.append(record)
        if len(phases) < 2:
            return
        starts = np.array([p.start for p in phases])
        bootstrap = float(np.diff(starts).mean())
        estimate = bootstrap
        if len(phases) >= self.min_phases:
            detected = self._detect(phases)
            if detected is not None:
                estimate = detected
        self._estimates[job.name] = estimate

    # ------------------------------------------------------------------ #
    def _detect(self, phases: list[PhaseRecord]) -> float | None:
        requests = [
            IORequest(rank=0, start=p.start, end=max(p.end, p.start + 1e-6), nbytes=int(p.nbytes))
            for p in phases
        ]
        trace = Trace.from_requests(requests)
        try:
            result = self._ftio.detect(trace)
        except (InsufficientSamplesError, AnalysisError):
            return None
        self._evaluations += 1
        return result.period


@dataclass
class ErrorInjectedPeriods(PeriodProvider):
    """Wrap another provider and corrupt its estimates by ±``error`` (paper: 50 %)."""

    inner: PeriodProvider
    error: float = 0.5
    seed: SeedLike = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.error < 1.0:
            raise ValueError(f"error must be in [0, 1), got {self.error}")
        self._rng = as_generator(self.seed)

    def period_of(self, job_name: str) -> float | None:
        period = self.inner.period_of(job_name)
        if period is None:
            return None
        sign = 1.0 if self._rng.uniform() < 0.5 else -1.0
        return period * (1.0 + sign * self.error)

    def observe_phase(self, job: JobState, record: PhaseRecord, time: float) -> None:
        self.inner.observe_phase(job, record, time)
