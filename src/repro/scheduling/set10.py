"""The Set-10 I/O scheduling heuristic (IO-Sets, Boito et al. 2023).

Set-10 mitigates file-system contention by exploiting that jobs usually
perform their I/O at different frequencies:

* every job is assigned to a *set* based on the order of magnitude (base 10)
  of its characteristic time — here, the period supplied by the configured
  :class:`~repro.scheduling.periods.PeriodProvider` (clairvoyant, FTIO, or
  error-injected);
* within a set, jobs access the file system **exclusively**, one at a time
  (FCFS on the start of their pending I/O phase);
* across sets, the selected jobs **share** the bandwidth, with priorities
  calculated from the periods supplied by the provider, as the paper states:
  "applications with the smallest period receive the highest priority and,
  therefore, most of the bandwidth".  The weight of a set is the inverse of
  its characteristic time (the smallest estimated period among its pending
  jobs).  Because both the set assignment and the priority come from the
  *estimated* period, the quality of the period knowledge directly influences
  the allocation — which is what makes the clairvoyant / FTIO /
  error-injected configurations of Figure 17 differ.

Jobs whose period is still unknown (before FTIO's first estimate) fall back
to a dedicated set with the lowest priority, so they are never starved but
also never disturb the well-characterized jobs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster.job import JobState, PhaseRecord
from repro.cluster.scheduler import IOScheduler
from repro.scheduling.periods import PeriodProvider
from repro.utils.validation import check_positive


@dataclass
class Set10Scheduler(IOScheduler):
    """IO-Sets scheduling with base-10 set assignment and priority sharing.

    Parameters
    ----------
    periods:
        Source of the per-job period estimates.
    """

    periods: PeriodProvider
    #: Period assumed for jobs whose estimate is still unknown.  It is large,
    #: so uncharacterized jobs land in the lowest-priority set until FTIO has
    #: produced a first estimate for them.
    fallback_period: float = 1e6
    name: str = "set-10"

    def __post_init__(self) -> None:
        check_positive(self.fallback_period, "fallback_period")

    @property
    def _unknown_set(self) -> int:
        return int(math.floor(math.log10(self.fallback_period)))

    # ------------------------------------------------------------------ #
    def set_index(self, job_name: str) -> int:
        """Set identifier of a job: floor(log10(period)), or the fallback set."""
        period = self.periods.period_of(job_name)
        if period is None or period <= 0:
            return self._unknown_set
        return int(math.floor(math.log10(period)))

    def _estimated_period(self, job_name: str) -> float:
        period = self.periods.period_of(job_name)
        if period is None or period <= 0:
            return self.fallback_period
        return period

    def allocate(self, io_jobs: list[JobState], time: float) -> dict[str, float]:
        if not io_jobs:
            return {}

        # Query every estimate exactly once per decision so that noisy
        # providers (error injection) behave consistently within one decision.
        estimates = {job.name: self._estimated_period(job.name) for job in io_jobs}

        # Group the pending jobs by set (order of magnitude of the period).
        sets: dict[int, list[JobState]] = {}
        for job in io_jobs:
            index = int(math.floor(math.log10(estimates[job.name])))
            sets.setdefault(index, []).append(job)

        # Within each set: exclusive access, FCFS on the phase start time.
        selected: dict[int, JobState] = {}
        for index, jobs in sets.items():
            selected[index] = min(jobs, key=lambda j: (j.io_waiting_since() or time, j.name))

        # Across sets: priority-proportional sharing.  The weight of a set is
        # the inverse of its characteristic time — the smallest estimated
        # period among its pending jobs — so applications with the smallest
        # period receive most of the bandwidth, and a wrong estimate directly
        # skews the allocation.
        characteristic = {
            index: min(estimates[job.name] for job in jobs) for index, jobs in sets.items()
        }
        weights = {index: 1.0 / characteristic[index] for index in selected}
        total = sum(weights.values())
        return {selected[index].name: weights[index] / total for index in selected}

    # ------------------------------------------------------------------ #
    def on_phase_complete(self, job: JobState, record: PhaseRecord, time: float) -> None:
        # Forward the observation so runtime providers (FTIO) can learn.
        self.periods.observe_phase(job, record, time)
