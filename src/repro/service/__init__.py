"""Streaming prediction service: live multi-job FTIO predictions.

The service turns the offline replay pipeline into an online subsystem: many
concurrent jobs flush measurements as length-prefixed frames (spool files or
sockets), a broker demultiplexes them into bounded-memory per-job sessions, a
dispatcher batches due evaluations onto a worker pool with backpressure and
per-job rate limiting, and a publisher exposes the live predictions — both to
subscribers and, through :class:`ServicePeriodProvider`, to the Set-10
scheduler, closing the paper's Figure 17 loop end to end.
"""

from repro.service.bridge import PhaseFlushBridge
from repro.service.broker import BrokerStats, FlushBroker
from repro.service.dispatcher import DetectionDispatcher, DispatcherStats
from repro.service.provider import ServicePeriodProvider
from repro.service.publisher import PredictionPublisher, PredictionUpdate
from repro.service.service import PredictionService, ServiceConfig
from repro.service.session import JobSession, RingColumnStore, SessionConfig
from repro.service.snapshot import (
    load_snapshot,
    restore_state,
    save_snapshot,
    snapshot_state,
)

__all__ = [
    "PhaseFlushBridge",
    "BrokerStats",
    "FlushBroker",
    "DetectionDispatcher",
    "DispatcherStats",
    "ServicePeriodProvider",
    "PredictionPublisher",
    "PredictionUpdate",
    "PredictionService",
    "ServiceConfig",
    "JobSession",
    "RingColumnStore",
    "SessionConfig",
    "load_snapshot",
    "restore_state",
    "save_snapshot",
    "snapshot_state",
]
