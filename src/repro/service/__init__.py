"""Streaming prediction service: live multi-job FTIO predictions.

The service turns the offline replay pipeline into an online subsystem: many
concurrent jobs flush measurements as length-prefixed frames (spool files or
sockets), a broker demultiplexes them into bounded-memory per-job sessions, a
dispatcher batches due evaluations onto a worker pool with backpressure and
per-job rate limiting, and a publisher exposes the live predictions — both to
subscribers and, through :class:`ServicePeriodProvider`, to the Set-10
scheduler, closing the paper's Figure 17 loop end to end.

Past one process, :class:`ShardedService` consistent-hashes jobs onto N
worker shards — each a full service in its own subprocess fed FTS1 frames
through a shared-memory ring (:mod:`repro.service.shm_ring`; the socketpair
is just its doorbell) — with a header-only router, aggregated stats,
merged snapshot/restore, crash recovery, and *elastic live resharding*
(:meth:`ShardedService.reshard` grows or shrinks the topology mid-stream
with minimal session movement; see :mod:`repro.service.sharding`).  Where an evaluation runs is pluggable:
:class:`ThreadBackend` (default) or :class:`ProcessPoolBackend` for
CPU-bound tenants (see :mod:`repro.service.backend`).

Every control surface — the shard pipes, the asyncio TCP gateway
(:class:`ServiceGateway` / :class:`ThreadedGateway`) and the blocking
:class:`~repro.client.ServiceClient` — speaks the one typed, versioned
message layer of :mod:`repro.service.protocol`.
"""

from repro.service import protocol
from repro.service.autoscaler import (
    AutoscaleConfig,
    AutoscaleDecision,
    AutoscaleSignals,
    Autoscaler,
    HysteresisPolicy,
)
from repro.service.backend import (
    DetectionBackend,
    ProcessPoolBackend,
    ThreadBackend,
    make_backend,
)
from repro.service.batch import (
    BatchReport,
    compute_batch_kernels,
    detect_sessions_inline,
    detect_sessions_remote,
    run_batch_detection,
)
from repro.service.bridge import PhaseFlushBridge
from repro.service.gateway import ServiceGateway, ThreadedGateway
from repro.service.broker import BrokerStats, FlushBroker
from repro.service.dispatcher import DetectionDispatcher, DispatcherStats
from repro.service.provider import ServicePeriodProvider
from repro.service.publisher import PredictionPublisher, PredictionUpdate
from repro.service.service import PredictionService, ServiceConfig
from repro.service.session import (
    DetectionOutcome,
    DetectionTask,
    JobSession,
    RingColumnStore,
    SessionConfig,
    run_detection_task,
)
from repro.service.sharding import HashRing, ShardedService
from repro.service.shm_ring import RingHandle, ShmRingReader, ShmRingWriter
from repro.service.snapshot import (
    apply_state,
    extract_jobs,
    load_snapshot,
    merge_into,
    merge_states,
    restore_state,
    save_snapshot,
    snapshot_state,
    split_state,
)

__all__ = [
    "AutoscaleConfig",
    "AutoscaleDecision",
    "AutoscaleSignals",
    "Autoscaler",
    "HysteresisPolicy",
    "PhaseFlushBridge",
    "BatchReport",
    "BrokerStats",
    "ServiceGateway",
    "ThreadedGateway",
    "protocol",
    "FlushBroker",
    "DetectionBackend",
    "DetectionDispatcher",
    "DetectionOutcome",
    "DetectionTask",
    "DispatcherStats",
    "HashRing",
    "ProcessPoolBackend",
    "ServicePeriodProvider",
    "PredictionPublisher",
    "PredictionUpdate",
    "PredictionService",
    "RingHandle",
    "ServiceConfig",
    "ShardedService",
    "ShmRingReader",
    "ShmRingWriter",
    "JobSession",
    "RingColumnStore",
    "SessionConfig",
    "ThreadBackend",
    "apply_state",
    "compute_batch_kernels",
    "detect_sessions_inline",
    "detect_sessions_remote",
    "extract_jobs",
    "load_snapshot",
    "make_backend",
    "merge_into",
    "merge_states",
    "restore_state",
    "run_batch_detection",
    "run_detection_task",
    "save_snapshot",
    "snapshot_state",
    "split_state",
]
