"""Autoscaling control loop for the sharded prediction service.

The autoscaler closes the loop the elastic machinery opened: PR 5 gave the
router :meth:`~repro.service.sharding.ShardedService.reshard` and
:meth:`~repro.service.sharding.ShardedService.revive_shard`; this module
drives them from the stats the service already exposes, so the topology
tracks offered load with no operator.  It is a classic master/worker
supervision loop — one thread, owned by the serving process (the gateway
starts it next to its asyncio loop), waking every
:attr:`AutoscaleConfig.interval_seconds` to:

1. read one :class:`AutoscaleSignals` snapshot from ``stats()`` — per-shard
   session count, dispatcher queue depth (``pending_evaluations``),
   backpressure events (``deferred``) and the merged
   ``p99_detection_latency_seconds``;
2. feed it to the :class:`HysteresisPolicy` state machine, which turns the
   noisy signal stream into at most one action: *grow*, *shrink*, *revive*
   or *hold*;
3. apply the action through ``reshard()`` / ``revive_shard()`` (or through
   the locked callables a gateway injects).

The policy is deliberately boring and fully deterministic — that is what
makes it testable and what keeps it from flapping:

* **hysteresis bands** — scaling up needs any *high* band breached; scaling
  down needs **every** *low* band clear.  Between the bands (the dead band)
  nothing happens and both pressure streaks reset, so a load level that
  hovers at a band edge cannot alternate grow/shrink.
* **consecutive-tick streaks** — a breach must persist for
  ``up_consecutive`` (or ``down_consecutive``) ticks before it counts; a
  single spiky scrape is ignored.
* **cooldown** — after any resize, further resizes are blocked for
  ``cooldown_seconds`` (streaks keep accumulating, so a persistent breach
  acts on the first tick after the cooldown expires).
* **clamps** — the shard count never leaves
  ``[min_shards, max_shards]``.

Every piece takes an injectable clock, so the chaos/load-ramp harness
(``tests/service/test_autoscaler.py``) drives the whole loop with
:meth:`Autoscaler.tick` under a scripted fake clock and asserts that
autoscaled runs stay bit-identical to fixed-topology ones — the zero-pause
double-routed handover in :mod:`repro.service.sharding` is what makes the
mid-traffic resizes invisible.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.sharding import ShardedService


@dataclass(frozen=True)
class AutoscaleConfig:
    """Policy knobs of the autoscaling control loop.

    Attributes
    ----------
    min_shards / max_shards:
        Hard clamps on the shard count; no decision ever leaves the range.
    interval_seconds:
        Supervision-thread wake period (ignored by the deterministic
        :meth:`Autoscaler.tick` path the tests drive).
    cooldown_seconds:
        Minimum time between two resizes.  Pressure streaks keep
        accumulating while the cooldown runs, so a persistent breach acts on
        the first tick after it expires.
    high_sessions_per_shard / low_sessions_per_shard:
        Hysteresis band on resident sessions per live shard.
    high_pending_per_shard / low_pending_per_shard:
        Hysteresis band on dispatcher queue depth (in-flight evaluation
        units) per live shard.
    high_p99_latency_seconds / low_p99_latency_seconds:
        Hysteresis band on the merged p99 detection latency.
    high_deferred_delta:
        Backpressure band: new ``deferred`` (rate-limited/backpressured
        submissions) events since the previous tick that count as up
        pressure.  Down pressure requires zero new events.
    up_consecutive / down_consecutive:
        Ticks a breach must persist before the policy acts.  Scaling down is
        conventionally slower than scaling up.
    step_shards:
        Shards added/removed per decision.
    """

    min_shards: int = 1
    max_shards: int = 8
    interval_seconds: float = 2.0
    cooldown_seconds: float = 10.0
    high_sessions_per_shard: float = 48.0
    low_sessions_per_shard: float = 12.0
    high_pending_per_shard: float = 32.0
    low_pending_per_shard: float = 4.0
    high_p99_latency_seconds: float = 0.25
    low_p99_latency_seconds: float = 0.05
    high_deferred_delta: float = 16.0
    up_consecutive: int = 2
    down_consecutive: int = 3
    step_shards: int = 1

    def __post_init__(self) -> None:
        if self.min_shards < 1:
            raise ValueError(f"min_shards must be >= 1, got {self.min_shards}")
        if self.max_shards < self.min_shards:
            raise ValueError(
                f"max_shards ({self.max_shards}) must be >= min_shards "
                f"({self.min_shards})"
            )
        if self.step_shards < 1:
            raise ValueError(f"step_shards must be >= 1, got {self.step_shards}")
        if self.up_consecutive < 1 or self.down_consecutive < 1:
            raise ValueError("consecutive-tick thresholds must be >= 1")
        for low, high, name in (
            (self.low_sessions_per_shard, self.high_sessions_per_shard, "sessions"),
            (self.low_pending_per_shard, self.high_pending_per_shard, "pending"),
            (self.low_p99_latency_seconds, self.high_p99_latency_seconds, "p99"),
        ):
            if low > high:
                raise ValueError(
                    f"{name} hysteresis band is inverted (low {low} > high {high})"
                )


@dataclass(frozen=True)
class AutoscaleSignals:
    """One scrape of the decision inputs (a canned one in the unit tests)."""

    shards: int
    dead_shards: int = 0
    sessions: int = 0
    pending_evaluations: int = 0
    deferred: int = 0
    p99_latency_seconds: float | None = None

    @classmethod
    def from_stats(cls, stats: dict) -> "AutoscaleSignals":
        """Build signals from a ``ShardedService.stats()`` document."""
        return cls(
            shards=int(stats.get("shards", 1)),
            dead_shards=int(stats.get("dead_shards", 0)),
            sessions=int(stats.get("jobs", 0)),
            pending_evaluations=int(stats.get("pending_evaluations", 0)),
            deferred=int(stats.get("deferred", 0)),
            p99_latency_seconds=stats.get("p99_detection_latency_seconds"),
        )


@dataclass(frozen=True)
class AutoscaleDecision:
    """One tick's outcome: what the policy chose and why."""

    action: str  # "hold" | "grow" | "shrink" | "revive"
    from_shards: int
    to_shards: int
    reason: str
    at: float

    def to_dict(self) -> dict:
        return {
            "action": self.action,
            "from_shards": self.from_shards,
            "to_shards": self.to_shards,
            "reason": self.reason,
            "at": self.at,
        }


class HysteresisPolicy:
    """The pure decision state machine — no threads, no service, no clock.

    Feed it one :class:`AutoscaleSignals` snapshot per tick together with
    the tick's timestamp; it returns an :class:`AutoscaleDecision`.  All
    state (pressure streaks, cooldown anchor, last backpressure counter)
    lives here, which is what the table-driven unit tests exercise in
    isolation.
    """

    def __init__(self, config: AutoscaleConfig) -> None:
        self.config = config
        self._up_streak = 0
        self._down_streak = 0
        self._last_resize_at: float | None = None
        self._last_deferred: int | None = None

    @property
    def up_streak(self) -> int:
        return self._up_streak

    @property
    def down_streak(self) -> int:
        return self._down_streak

    def note_resize(self, now: float) -> None:
        """Anchor the cooldown at ``now`` (an externally driven resize)."""
        self._last_resize_at = now
        self._up_streak = 0
        self._down_streak = 0

    def _pressures(self, signals: AutoscaleSignals) -> tuple[list[str], bool]:
        """Returns (high-band breaches, all-low-bands-clear)."""
        config = self.config
        shards = max(1, signals.shards)
        sessions_per_shard = signals.sessions / shards
        pending_per_shard = signals.pending_evaluations / shards
        p99 = signals.p99_latency_seconds
        previous_deferred = self._last_deferred
        deferred_delta = (
            0 if previous_deferred is None else signals.deferred - previous_deferred
        )
        breaches: list[str] = []
        if sessions_per_shard > config.high_sessions_per_shard:
            breaches.append(f"sessions/shard {sessions_per_shard:.1f}")
        if pending_per_shard > config.high_pending_per_shard:
            breaches.append(f"pending/shard {pending_per_shard:.1f}")
        if p99 is not None and p99 > config.high_p99_latency_seconds:
            breaches.append(f"p99 {p99:.3f}s")
        if deferred_delta > config.high_deferred_delta:
            breaches.append(f"deferred +{deferred_delta}")
        all_low = (
            sessions_per_shard < config.low_sessions_per_shard
            and pending_per_shard < config.low_pending_per_shard
            and (p99 is None or p99 < config.low_p99_latency_seconds)
            and deferred_delta <= 0
        )
        return breaches, all_low

    def decide(self, signals: AutoscaleSignals, now: float) -> AutoscaleDecision:
        config = self.config
        shards = signals.shards

        def decision(action: str, target: int, reason: str) -> AutoscaleDecision:
            return AutoscaleDecision(
                action=action,
                from_shards=shards,
                to_shards=target,
                reason=reason,
                at=now,
            )

        # A dead shard is a correctness problem before it is a capacity one:
        # revive first, scale later.  Revives do not consume the cooldown —
        # they restore capacity, they do not churn the topology.
        if signals.dead_shards > 0:
            return decision(
                "revive", shards, f"{signals.dead_shards} dead shard(s)"
            )
        breaches, all_low = self._pressures(signals)
        self._last_deferred = signals.deferred
        if breaches:
            self._up_streak += 1
            self._down_streak = 0
            pressure = "up"
            reason = ", ".join(breaches)
        elif all_low:
            self._down_streak += 1
            self._up_streak = 0
            pressure = "down"
            reason = "all signals below the low bands"
        else:
            # Dead band: the load sits between the bands.  Resetting both
            # streaks here is the flap suppression — hovering at a band edge
            # can never alternate grow/shrink decisions.
            self._up_streak = 0
            self._down_streak = 0
            return decision("hold", shards, "within hysteresis bands")
        in_cooldown = (
            self._last_resize_at is not None
            and now - self._last_resize_at < config.cooldown_seconds
        )
        if pressure == "up":
            if self._up_streak < config.up_consecutive:
                return decision("hold", shards, f"up pressure ({reason}), streak building")
            if in_cooldown:
                return decision("hold", shards, f"up pressure ({reason}), in cooldown")
            if shards >= config.max_shards:
                return decision("hold", shards, f"up pressure ({reason}), at max_shards")
            target = min(config.max_shards, shards + config.step_shards)
            self.note_resize(now)
            return decision("grow", target, reason)
        if self._down_streak < config.down_consecutive:
            return decision("hold", shards, "down pressure, streak building")
        if in_cooldown:
            return decision("hold", shards, "down pressure, in cooldown")
        if shards <= config.min_shards:
            return decision("hold", shards, "down pressure, at min_shards")
        target = max(config.min_shards, shards - config.step_shards)
        self.note_resize(now)
        return decision("shrink", target, reason)


class Autoscaler:
    """Supervision loop binding a :class:`HysteresisPolicy` to a service.

    Parameters
    ----------
    service:
        The :class:`~repro.service.sharding.ShardedService` to scale.
    config:
        Policy knobs; defaults to ``AutoscaleConfig()``.
    clock:
        Injectable monotonic clock — the chaos tests script it.
    resize:
        Override for applying a grow/shrink (receives the target shard
        count).  The gateway injects its engine-locked ``resize`` here;
        the default calls ``service.reshard`` directly with this
        autoscaler's ``on_phase`` hook.
    revive:
        Override for healing one dead shard (receives the shard index).
        The default revives from the service's last snapshot.
    on_phase:
        Forwarded to ``service.reshard(on_phase=...)`` on the default
        resize path — the chaos harness injects kill-9s into
        autoscaler-initiated reshards through it.
    timeline_capacity:
        Decisions retained for the ``/status`` ops surface.
    """

    def __init__(
        self,
        service: "ShardedService",
        config: AutoscaleConfig | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        resize: Callable[[int], object] | None = None,
        revive: Callable[[int], object] | None = None,
        on_phase: Callable[[str], None] | None = None,
        timeline_capacity: int = 256,
    ) -> None:
        self.service = service
        self.config = config or AutoscaleConfig()
        self.policy = HysteresisPolicy(self.config)
        self._clock = clock
        self._resize = resize
        self._revive = revive
        self._on_phase = on_phase
        self._timeline: deque[AutoscaleDecision] = deque(maxlen=timeline_capacity)
        self._decisions = {"grow": 0, "shrink": 0, "revive": 0, "hold": 0}
        self._errors = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        metrics = getattr(service, "metrics", None)
        if metrics is not None:
            for action in ("grow", "shrink", "revive", "hold"):
                metrics.register_view(
                    "repro_autoscaler_decisions_total",
                    "counter",
                    lambda action=action: self._decisions[action],
                    {"action": action},
                    help="Autoscaler decisions by action",
                )
            metrics.register_view(
                "repro_autoscaler_errors_total",
                "counter",
                lambda: self._errors,
                help="Autoscaler ticks that raised (the loop keeps running)",
            )

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def decision_counts(self) -> dict[str, int]:
        """Decisions taken so far, by action (includes holds)."""
        with self._lock:
            return dict(self._decisions)

    def timeline(self) -> list[dict]:
        """Recent acted decisions (grow/shrink/revive), oldest first."""
        with self._lock:
            return [decision.to_dict() for decision in self._timeline]

    def status(self) -> dict:
        """JSON-friendly summary for the gateway ``/status`` document."""
        with self._lock:
            timeline = [decision.to_dict() for decision in self._timeline]
            decisions = dict(self._decisions)
        return {
            "enabled": True,
            "running": self._thread is not None and self._thread.is_alive(),
            "min_shards": self.config.min_shards,
            "max_shards": self.config.max_shards,
            "interval_seconds": self.config.interval_seconds,
            "cooldown_seconds": self.config.cooldown_seconds,
            "decisions": decisions,
            "errors": self._errors,
            "timeline": timeline[-32:],
        }

    # ------------------------------------------------------------------ #
    # the control loop
    # ------------------------------------------------------------------ #
    def signals(self) -> AutoscaleSignals:
        """One scrape of the decision inputs from the live service.

        Liveness is probed first: a heartbeat round convicts shards
        ``waitpid`` cannot see — a kill-9'd *remote* worker (connection
        loss) or a process that still holds its channels while wedged
        (SIGSTOP) — so ``dead_shards`` reflects them and the revive-first
        policy heals them this same tick.
        """
        heartbeat = getattr(self.service, "heartbeat", None)
        if heartbeat is not None:
            try:
                heartbeat()
            except Exception:  # noqa: BLE001 - the probe is advisory
                pass
        return AutoscaleSignals.from_stats(self.service.stats())

    def tick(self, now: float | None = None) -> AutoscaleDecision:
        """Run one deterministic control iteration and apply its decision.

        ``now`` overrides the clock (the fake-clock tests pass scripted
        times).  Raises whatever the applied action raises — the supervision
        thread catches and counts, the tests see the failure.
        """
        now = self._clock() if now is None else now
        decision = self.policy.decide(self.signals(), now)
        self._apply(decision)
        with self._lock:
            self._decisions[decision.action] += 1
            if decision.action != "hold":
                self._timeline.append(decision)
        return decision

    def _apply(self, decision: AutoscaleDecision) -> None:
        if decision.action == "revive":
            for index in self.service.dead_shards():
                if self._revive is not None:
                    self._revive(index)
                else:
                    self.service.revive_shard(
                        index, state=getattr(self.service, "last_snapshot", None)
                    )
            return
        if decision.action in ("grow", "shrink"):
            if self._resize is not None:
                self._resize(decision.to_shards)
            else:
                self.service.reshard(decision.to_shards, on_phase=self._on_phase)

    # ------------------------------------------------------------------ #
    # supervision thread
    # ------------------------------------------------------------------ #
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Start the supervision thread (idempotent)."""
        if self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-autoscaler", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        """Signal the thread and join it (idempotent)."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.config.interval_seconds):
            try:
                self.tick()
            except Exception:
                # The supervision loop must outlive any one bad tick (a
                # shard crash mid-scrape, a reshard racing a manual resize);
                # the error count is on the ops surface.
                with self._lock:
                    self._errors += 1


__all__ = [
    "AutoscaleConfig",
    "AutoscaleDecision",
    "AutoscaleSignals",
    "Autoscaler",
    "HysteresisPolicy",
]
