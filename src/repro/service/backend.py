"""Pluggable detection backends: where a session's evaluation actually runs.

The dispatcher decides *when* a session is evaluated (backpressure, rate
limits); the backend decides *where*:

* :class:`ThreadBackend` — the evaluation runs in the calling thread (the
  dispatcher's worker pool, or the pumping thread with inline workers).  The
  right default: numpy releases the GIL in the FFT kernels, so I/O-light
  tenants scale fine on threads with zero serialization cost.
* :class:`ProcessPoolBackend` — the evaluation is packed into a
  :class:`~repro.service.session.DetectionTask` and shipped to a
  ``ProcessPoolExecutor`` worker.  For CPU-bound tenants (large windows,
  autocorrelation + characterization enabled) this buys true parallelism at
  the cost of pickling the resident window; predictions are bit-identical to
  the thread backend because the worker replays the exact same predictor
  state transition (see :func:`repro.service.session.run_detection_task`).

Backends are deliberately tiny objects so the sharded service can hand one
to every shard subprocess via configuration (a name + worker count), not by
pickling live executors.
"""

from __future__ import annotations

from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor

from repro.core.online import PredictionStep

from repro.service.batch import (
    BatchReport,
    detect_sessions_inline,
    detect_sessions_remote,
    run_batch_detection,
)
from repro.service.session import JobSession, run_detection_task

#: Names accepted by :func:`make_backend` (and ``ServiceConfig.backend``).
BACKEND_NAMES = ("thread", "process")


class DetectionBackend:
    """Interface of a detection backend."""

    #: Configuration name of the backend (one of :data:`BACKEND_NAMES`).
    name: str = ""

    #: Optional kernel-stage observer ``(stage, group_size, seconds)`` set by
    #: the dispatcher when metrics are enabled.  Backends that evaluate the
    #: batched kernels in this process forward it to
    #: :func:`~repro.service.batch.compute_batch_kernels`; the process-pool
    #: backend cannot (the kernels run in a worker process) and ignores it.
    observer = None

    def detect(self, session: JobSession, *, now: float | None = None) -> PredictionStep | None:
        """Evaluate ``session`` once; returns the prediction step (or ``None``)."""
        raise NotImplementedError

    def detect_batch(self, sessions: Sequence[JobSession]) -> BatchReport:
        """Evaluate many due sessions as one batch (shared spectral kernels).

        The default implementation loops :meth:`detect` so custom backends
        stay correct without batching; the built-in backends override it
        with genuinely batched evaluation.  Results are bit-identical to the
        sequential path either way.
        """
        steps: list[PredictionStep | None] = []
        failed: list[bool] = []
        for session in sessions:
            try:
                steps.append(self.detect(session))
                failed.append(False)
            except Exception:
                steps.append(None)
                failed.append(True)
        return BatchReport(steps=steps, failed=failed)

    def close(self) -> None:
        """Release any resources held by the backend."""

    def __enter__(self) -> "DetectionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ThreadBackend(DetectionBackend):
    """Run evaluations in the calling thread (the dispatcher's pool)."""

    name = "thread"

    def detect(self, session: JobSession, *, now: float | None = None) -> PredictionStep | None:
        return session.detect(now=now)

    def detect_batch(self, sessions: Sequence[JobSession]) -> BatchReport:
        return detect_sessions_inline(sessions, observer=self.observer)


class ProcessPoolBackend(DetectionBackend):
    """Fan evaluations onto a ``ProcessPoolExecutor`` for CPU-bound tenants.

    Parameters
    ----------
    max_workers:
        Worker process count (``None`` uses the executor's CPU-count default).
    mp_context:
        Optional ``multiprocessing`` context; the platform default otherwise.
    """

    name = "process"

    def __init__(self, max_workers: int | None = None, *, mp_context=None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self._pool = ProcessPoolExecutor(max_workers=max_workers, mp_context=mp_context)

    def detect(self, session: JobSession, *, now: float | None = None) -> PredictionStep | None:
        return session.detect(now=now, engine=self._run_remote)

    def detect_batch(self, sessions: Sequence[JobSession]) -> BatchReport:
        # One worker evaluates the whole batch: the vectorized kernels beat
        # per-session fan-out once the batch is the unit of work, and distinct
        # batches (successive pumps, distinct shards) still use distinct
        # workers.
        return detect_sessions_remote(
            sessions, lambda tasks: self._pool.submit(run_batch_detection, tasks).result()
        )

    def _run_remote(self, task):
        # The session holds its lock while this waits, so a single job stays
        # sequential; distinct jobs occupy distinct pool workers.
        return self._pool.submit(run_detection_task, task).result()

    def close(self) -> None:
        self._pool.shutdown(wait=True)


def make_backend(name: str, *, workers: int | None = None) -> DetectionBackend:
    """Build a backend from its configuration name (see :data:`BACKEND_NAMES`)."""
    if name == "thread":
        return ThreadBackend()
    if name == "process":
        return ProcessPoolBackend(max_workers=workers)
    known = ", ".join(BACKEND_NAMES)
    raise ValueError(f"unknown detection backend {name!r}; known backends: {known}")
