"""Batched cross-session spectral kernels — the service detection hot path.

When many sessions come due at once the dispatcher no longer evaluates them
one FFT at a time.  The batch engine claims every due session (two-phase, via
:meth:`JobSession.begin_batch_detect`), discretizes their adaptive windows,
groups the prepared signals by effective window length ``(n_samples, fs)``,
stacks each group into one 2-D array and evaluates the group's transforms as
single batched kernels — one 2-D ``rfft`` for the power spectra, one
vectorized Z-score pass, one batched Wiener–Khinchin ACF.  Each session's
slice is then fed back through the ordinary pipeline via
:class:`~repro.core.ftio.SpectralKernels`, so the decision logic (candidate
selection, harmonic rule, classification, confidence) runs unchanged.

**Bit-identity contract.**  Every value a batched evaluation produces equals
the sequential evaluation bit for bit, on both backends.  The kernels only
use 2-D evaluation where numpy produces bit-identical rows: the FFT
transforms, the mean/std axis reductions, and elementwise maps whose every
output element is one exact IEEE operation of its input element (abs,
square, divide, subtract — lane position cannot change those).  The
shape-sensitive steps — complex products like ``x * conj(x)`` and energy dot
products, where SIMD/FMA contraction makes the 2-D form differ from its 1-D
rows in the last ulp — stay per row on contiguous views.  The equivalence
suite asserts the contract across mixed window lengths, ragged NaN-padded
stacks and both backends.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np
from numpy.typing import NDArray

from repro.core.config import FtioConfig
from repro.core.ftio import SpectralKernels
from repro.core.online import OnlinePredictor, PredictionStep, PreparedStep
from repro.freq import plan
from repro.freq.autocorr import autocorrelation_batch
from repro.freq.dft import DftResult
from repro.freq.outliers import OutlierResult, ZScoreDetector, make_detector
from repro.service.session import (
    DetectionOutcome,
    DetectionTask,
    JobSession,
    step_to_entry,
)
from repro.trace.sampling import DiscreteSignal

#: Minimum samples for a spectrum (mirrors :func:`repro.freq.dft.dft`); rows
#: below it fall back to the sequential per-session path, which raises the
#: same ``InsufficientSamplesError`` the offline pipeline would.
_MIN_SPECTRUM_SAMPLES = 4

#: Signature of the optional kernel-stage observer: ``(stage, group_size,
#: seconds)``.  The dispatcher plugs a histogram recorder in here; ``None``
#: (the default everywhere) skips the timing entirely.
KernelObserver = Callable[[str, int, float], None]


@dataclass
class BatchReport:
    """Outcome of one batched evaluation over a set of sessions.

    ``steps`` is aligned with the input sessions (``None`` where the session
    had nothing to evaluate or failed); ``failed`` marks the sessions whose
    evaluation raised and was dropped.
    """

    steps: list[PredictionStep | None]
    failed: list[bool]

    @property
    def failures(self) -> int:
        """Number of sessions whose evaluation failed."""
        return sum(self.failed)


# --------------------------------------------------------------------- #
# stacking + kernels
# --------------------------------------------------------------------- #
def stack_windows(
    samples: Sequence[NDArray[np.float64]],
) -> tuple[NDArray[np.float64], list[int]]:
    """Stack variable-length windows into one NaN-padded ragged 2-D array.

    Row ``i`` holds ``samples[i]`` in its first ``lengths[i]`` columns and
    NaN in the tail; consumers slice ``stack[i, :lengths[i]]`` and never read
    the padding.  The buffer comes from the shared per-thread workspace
    cache, so steady-state batches reuse one allocation.
    """
    lengths = [int(len(row)) for row in samples]
    width = max(lengths, default=0)
    stacked = plan.workspace((len(lengths), width))
    stacked.fill(np.nan)
    for i, row in enumerate(samples):
        stacked[i, : lengths[i]] = row
    return stacked, lengths


def compute_batch_kernels(
    signals: Sequence[DiscreteSignal | None],
    configs: Sequence[FtioConfig],
    observer: KernelObserver | None = None,
) -> list[SpectralKernels | None]:
    """Evaluate the spectral kernels of many prepared signals in batches.

    Signals are grouped by ``(n_samples, sampling_frequency)``; each group
    runs one 2-D ``rfft``, one vectorized Z-score pass and (where the
    configuration asks for it) one batched ACF.  Entries that cannot be
    batched (``None`` signals, fewer than 4 samples, non-batchable outlier
    detectors fall back partially) get ``None`` / partial kernels, and the
    per-session pipeline computes the rest exactly as before.

    ``observer`` (when given) receives ``(stage, group_size, seconds)`` for
    each kernel stage of each window-group: ``rfft``, ``zscore``, ``acf``.

    Every returned kernel is bit-identical to what the sequential pipeline
    would compute from the same signal.
    """
    if len(signals) != len(configs):
        raise ValueError(f"{len(signals)} signals but {len(configs)} configs")
    kernels: list[SpectralKernels | None] = [None] * len(signals)
    # Fleets share a handful of config objects; build each one's detector
    # once per batch instead of once per session.
    detectors: dict[int, object] = {}

    def detector_for(cfg: FtioConfig) -> object:
        detector = detectors.get(id(cfg))
        if detector is None:
            detector = make_detector(cfg.outlier_method, **cfg.outlier_kwargs)
            detectors[id(cfg)] = detector
        return detector

    groups: dict[tuple[int, float], list[int]] = {}
    for i, signal in enumerate(signals):
        if signal is None or signal.n_samples < _MIN_SPECTRUM_SAMPLES:
            continue
        groups.setdefault((signal.n_samples, float(signal.sampling_frequency)), []).append(i)
    if not groups:
        return kernels

    # One ragged NaN-padded master stack for the whole batch; every group's
    # contiguous block is extracted up front because the per-group kernels
    # below reuse the same per-thread workspace buffers.
    order = [i for indices in groups.values() for i in indices]
    stacked, _ = stack_windows(
        [np.asarray(signals[i].samples, dtype=np.float64) for i in order]  # type: ignore[union-attr]
    )
    row_of = {index: row for row, index in enumerate(order)}
    blocks: dict[tuple[int, float], NDArray[np.float64]] = {}
    for key, indices in groups.items():
        n = key[0]
        blocks[key] = stacked[[row_of[i] for i in indices], :n]

    for (n, fs), indices in groups.items():
        block = blocks[(n, fs)]
        stage_started = time.perf_counter() if observer is not None else 0.0
        coefficients = plan.rfft(block, axis=1)
        frequencies = plan.rfftfreq_grid(n, fs)
        if observer is not None:
            now = time.perf_counter()
            observer("rfft", len(indices), now - stage_started)
            stage_started = now

        # Power and Z-scores of the whole group in single elementwise passes:
        # abs, square, divide and subtract map each element independently
        # through exact IEEE operations, so their 2-D forms equal the 1-D
        # per-row results bit for bit.  (Products like ``x * conj(x)`` do NOT
        # qualify — FMA contraction differs across shapes — which is why the
        # power comes from ``abs`` first.)
        amplitudes = np.abs(coefficients)
        np.multiply(amplitudes, amplitudes, out=amplitudes)  # == amplitudes**2
        np.divide(amplitudes, n, out=amplitudes)
        analysis_power = amplitudes[:, 1:]
        means = analysis_power.mean(axis=1)
        stds = analysis_power.std(axis=1)
        scores_block = np.abs(analysis_power)
        np.subtract(scores_block, np.abs(means)[:, None], out=scores_block)
        np.divide(
            scores_block, np.where(stds == 0.0, 1.0, stds)[:, None], out=scores_block
        )
        scores_block[stds == 0.0] = 0.0
        if observer is not None:
            now = time.perf_counter()
            observer("zscore", len(indices), now - stage_started)
            stage_started = now

        acf_rows = [
            row for row, i in enumerate(indices) if configs[i].use_autocorrelation
        ]
        acfs = (
            autocorrelation_batch([signals[indices[row]].samples for row in acf_rows])  # type: ignore[union-attr]
            if acf_rows
            else []
        )
        acf_of = dict(zip(acf_rows, acfs))
        if observer is not None and acf_rows:
            observer("acf", len(acf_rows), time.perf_counter() - stage_started)

        # One 2-D comparison per distinct threshold instead of one ufunc
        # call per row (exact comparisons, identical to the per-row form).
        outlier_masks: dict[float, NDArray[np.bool_]] = {}

        for row, i in enumerate(indices):
            signal = signals[i]
            assert signal is not None
            # Fresh arrays per session: a view would pin the whole group's
            # score block in memory for as long as any one result lives.
            scores = scores_block[row].copy()
            outliers: OutlierResult | None = None
            detector = detector_for(configs[i])
            if isinstance(detector, ZScoreDetector):
                # The Z-score detector recomputes exactly the scores above;
                # its decision is a pure threshold on them.
                mask = outlier_masks.get(detector.threshold)
                if mask is None:
                    mask = scores_block >= detector.threshold
                    outlier_masks[detector.threshold] = mask
                outliers = OutlierResult(
                    scores=scores,
                    is_outlier=mask[row].copy(),
                    method=detector.name,
                )
            kernels[i] = SpectralKernels(
                signal=signal,
                dft=DftResult(
                    coefficients=coefficients[row],
                    frequencies=frequencies,
                    n_samples=n,
                    sampling_frequency=fs,
                ),
                scores=scores,
                outliers=outliers,
                acf=acf_of.get(row),
            )
    return kernels


# --------------------------------------------------------------------- #
# batched evaluation of detection tasks (process-safe)
# --------------------------------------------------------------------- #
def run_batch_detection(tasks: Sequence[DetectionTask]) -> list[DetectionOutcome | None]:
    """Evaluate many :class:`DetectionTask` in one batch (pure, process-safe).

    The process-pool backend ships a whole batch to one worker through this
    function.  Each task's predictor is rebuilt from its state dict, the
    prepared windows are evaluated through the shared batched kernels, and
    the updated states come back — a session whose state round-trips through
    here transitions bit-identically to one that evaluated inline.  A task
    whose evaluation raises yields ``None`` (dropped, like a failed
    sequential dispatch) without poisoning the rest of the batch.
    """
    predictors: list[OnlinePredictor | None] = []
    prepared: list[PreparedStep | None] = []
    for task in tasks:
        predictor = OnlinePredictor(
            config=task.config, adaptive_window=task.adaptive_window, compact_history=True
        )
        predictor.load_state_dict(task.predictor_state)
        try:
            prep = predictor.prepare_step(task.trace, now=task.now)
        except Exception:
            predictor, prep = None, None
        predictors.append(predictor)
        prepared.append(prep)

    kernels = compute_batch_kernels(
        [prep.signal if prep is not None else None for prep in prepared],
        [task.config for task in tasks],
    )

    outcomes: list[DetectionOutcome | None] = []
    for predictor, prep, kernel in zip(predictors, prepared, kernels):
        if predictor is None or prep is None:
            outcomes.append(None)
            continue
        try:
            step = predictor.complete_step(prep, kernels=kernel)
            outcomes.append(
                DetectionOutcome(
                    predictor_state=predictor.state_dict(), step=step_to_entry(step)
                )
            )
        except Exception:
            outcomes.append(None)
    return outcomes


# --------------------------------------------------------------------- #
# batched evaluation of live sessions (backend entry points)
# --------------------------------------------------------------------- #
def detect_sessions_inline(
    sessions: Sequence[JobSession],
    observer: KernelObserver | None = None,
) -> BatchReport:
    """Thread-backend batch: evaluate live sessions with shared kernels.

    Claims every session (two-phase), prepares the windows against the live
    predictors, computes the batched kernels, and commits each session under
    its own lock.  No predictor state is serialized — the live predictor
    steps through exactly the same ``prepare_step``/``complete_step`` pair
    ``step()`` is built from.  ``observer`` is forwarded to
    :func:`compute_batch_kernels` for per-stage timings.
    """
    steps: list[PredictionStep | None] = [None] * len(sessions)
    failed = [False] * len(sessions)
    prepared: list[PreparedStep | None] = [None] * len(sessions)
    configs: list[FtioConfig] = []

    for i, session in enumerate(sessions):
        configs.append(session.config.config)
        task = session.begin_batch_detect()
        if task is None:
            continue
        try:
            prepared[i] = session.predictor.prepare_step(task.trace, now=task.now)
        except Exception:
            session.abort_batch_detect()
            failed[i] = True

    kernels = compute_batch_kernels(
        [prep.signal if prep is not None else None for prep in prepared],
        configs,
        observer,
    )

    for i, session in enumerate(sessions):
        prep = prepared[i]
        if prep is None:
            continue
        try:
            steps[i] = session.complete_batch_detect(prep, kernels=kernels[i])
        except Exception:
            session.abort_batch_detect()
            failed[i] = True
    return BatchReport(steps=steps, failed=failed)


def detect_sessions_remote(
    sessions: Sequence[JobSession],
    submit: Callable[[list[DetectionTask]], list[DetectionOutcome | None]],
) -> BatchReport:
    """Process-backend batch: ship the claimed tasks to a worker as one unit.

    ``submit`` evaluates a task list via :func:`run_batch_detection` in
    another process and returns the aligned outcomes.  If the submission
    itself fails (e.g. a broken pool), every claimed session is released and
    marked failed — the batch is dropped, ingestion is unaffected.
    """
    steps: list[PredictionStep | None] = [None] * len(sessions)
    failed = [False] * len(sessions)
    claimed: list[int] = []
    tasks: list[DetectionTask] = []
    for i, session in enumerate(sessions):
        task = session.begin_batch_detect(with_state=True)
        if task is None:
            continue
        claimed.append(i)
        tasks.append(task)
    if not tasks:
        return BatchReport(steps=steps, failed=failed)

    try:
        outcomes = submit(tasks)
        if len(outcomes) != len(tasks):
            raise RuntimeError(
                f"batch engine returned {len(outcomes)} outcomes for {len(tasks)} tasks"
            )
    except Exception:
        for i in claimed:
            sessions[i].abort_batch_detect()
            failed[i] = True
        return BatchReport(steps=steps, failed=failed)

    for i, outcome in zip(claimed, outcomes):
        if outcome is None:
            sessions[i].abort_batch_detect()
            failed[i] = True
            continue
        steps[i] = sessions[i].finish_batch_detect(outcome)
    return BatchReport(steps=steps, failed=failed)
