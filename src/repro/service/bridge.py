"""Bridge from the cluster simulator's phase observer to flush ingestion.

The simulator reports every completed I/O phase through its
:data:`~repro.cluster.simulator.PhaseObserver` hook.  The bridge turns each
phase into the flush record a TMIO tracer would have emitted for it (one
phase-level request, exactly as :class:`~repro.scheduling.periods.FtioPeriods`
models phases) and ingests it into the prediction service — this is what lets
:class:`~repro.service.provider.ServicePeriodProvider` feed the Set-10
scheduler with live predictions while the simulation runs.
"""

from __future__ import annotations

from repro.cluster.job import JobState, PhaseRecord
from repro.trace.jsonl import FlushRecord
from repro.trace.record import IORequest

#: A completed phase shorter than this is recorded with this duration so the
#: resulting request stays a valid (end > start) interval.
_MIN_PHASE_DURATION = 1e-6


class PhaseFlushBridge:
    """Phase observer that streams completed phases into a prediction service.

    Register an instance with the simulator::

        simulator.add_phase_observer(bridge)
        simulator.add_finish_observer(bridge.on_job_finished)

    Parameters
    ----------
    service:
        Target :class:`~repro.service.service.PredictionService`.
    pump:
        Run the service's dispatcher after every ingested phase, so a
        prediction is available before the scheduler's next decision.  Leave
        it on for live scheduling; turn it off to batch evaluations manually.
    """

    def __init__(self, service, *, pump: bool = True) -> None:
        self._service = service
        self._pump = pump
        self._flush_indices: dict[str, int] = {}

    @property
    def phases_bridged(self) -> int:
        """Number of phase records forwarded so far."""
        return sum(self._flush_indices.values())

    def __call__(self, job: JobState, record: PhaseRecord, time: float) -> None:
        index = self._flush_indices.get(job.name, 0)
        self._flush_indices[job.name] = index + 1
        request = IORequest(
            rank=0,
            start=record.start,
            end=max(record.end, record.start + _MIN_PHASE_DURATION),
            nbytes=int(record.nbytes),
        )
        flush = FlushRecord(flush_index=index, timestamp=float(time), requests=(request,))
        self._service.ingest_flush(job.name, flush)
        if self._pump:
            self._service.pump(wait_for_batch=True)

    def on_job_finished(self, job: JobState, time: float) -> None:
        """Finish observer: stop scheduling further evaluations for the job."""
        self._service.finish_job(job.name)
