"""Flush broker: demultiplexes framed flush streams into per-job sessions.

The broker is the ingestion front end of the prediction service.  Any number
of producers — a tailed spool file, socket pairs, the cluster simulator's
phase bridge, or direct :meth:`ingest` calls — hand it flush records tagged
with a job identity, and the broker routes each one to that job's
:class:`~repro.service.session.JobSession`, creating sessions on demand.
Classification happens on the frame header alone; payloads are only decoded
once (by the frame decoder), never per-consumer.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable

from repro.obs import MetricRegistry, SpanJournal
from repro.trace.framing import FlushFrame, FrameDecoder, FrameReader
from repro.trace.jsonl import FlushRecord

from repro.service.session import JobSession, SessionConfig

#: Callable building the session for a newly seen job.
SessionFactory = Callable[[str], JobSession]


@dataclass(frozen=True)
class BrokerStats:
    """Ingestion counters of a broker."""

    jobs: int
    frames: int
    flushes: int
    requests: int

    @classmethod
    def merge(cls, stats: Iterable["BrokerStats"]) -> "BrokerStats":
        """Aggregate the counters of several brokers (the sharded view).

        Jobs are summed — shards partition the job space, so no job is ever
        counted by two brokers.
        """
        stats = list(stats)
        return cls(
            jobs=sum(s.jobs for s in stats),
            frames=sum(s.frames for s in stats),
            flushes=sum(s.flushes for s in stats),
            requests=sum(s.requests for s in stats),
        )


class FlushBroker:
    """Routes flush frames from N concurrent jobs into per-job sessions.

    Parameters
    ----------
    session_config:
        Configuration applied to sessions created on demand.
    session_factory:
        Alternative constructor for per-job sessions (overrides
        ``session_config``); receives the job id.
    expected_token:
        Require every ingested frame to carry this version-1 tenant/auth
        nibble (wire-level auth; ``None`` accepts any frame).
    journal:
        Optional :class:`~repro.obs.SpanJournal` recording one ``ingest``
        span per routed flush (session append included).  ``None`` — the
        default — keeps the hot path free of any tracing cost.
    """

    def __init__(
        self,
        *,
        session_config: SessionConfig | None = None,
        session_factory: SessionFactory | None = None,
        expected_token: int | None = None,
        journal: SpanJournal | None = None,
    ) -> None:
        self._session_config = session_config or SessionConfig()
        self._factory = session_factory
        self._sessions: dict[str, JobSession] = {}
        self._lock = threading.Lock()
        self._expected_token = expected_token
        self._decoder = FrameDecoder(expected_token=expected_token)
        self._journal = journal
        self._frames = 0
        self._flushes = 0
        self._requests = 0
        # Handover staging (zero-pause migration): while a predicate is
        # armed, decoded frames whose job matches it are buffered in arrival
        # order instead of ingested — see begin_staging()/end_staging().
        self._staging: Callable[[str], bool] | None = None
        self._staged: list[tuple[str, FlushRecord]] = []

    # ------------------------------------------------------------------ #
    @property
    def jobs(self) -> tuple[str, ...]:
        """Identifiers of every job seen so far (ingestion order)."""
        with self._lock:
            return tuple(self._sessions)

    @property
    def stats(self) -> BrokerStats:
        """Current ingestion counters."""
        with self._lock:
            return BrokerStats(
                jobs=len(self._sessions),
                frames=self._frames,
                flushes=self._flushes,
                requests=self._requests,
            )

    def session(self, job: str) -> JobSession:
        """Return (creating if necessary) the session of ``job``."""
        with self._lock:
            return self._session_locked(job)

    def _session_locked(self, job: str) -> JobSession:
        session = self._sessions.get(job)
        if session is None:
            if self._factory is not None:
                session = self._factory(job)
            else:
                session = JobSession(job, self._session_config)
            self._sessions[job] = session
        return session

    def sessions(self) -> tuple[JobSession, ...]:
        """All sessions (ingestion order)."""
        with self._lock:
            return tuple(self._sessions.values())

    def remove(self, job: str) -> JobSession | None:
        """Detach and return the session of ``job`` (``None`` when unknown).

        A flush arriving for the job afterwards transparently creates a fresh
        session, so removal is safe even if a straggler frame shows up.
        """
        with self._lock:
            return self._sessions.pop(job, None)

    def due_sessions(self) -> tuple[JobSession, ...]:
        """The sessions with unevaluated data, respecting per-job rate limits."""
        return tuple(s for s in self.sessions() if s.due())

    # ------------------------------------------------------------------ #
    def ingest(self, job: str, flush: FlushRecord) -> JobSession:
        """Ingest one flush for ``job`` directly (no framing involved)."""
        started = time.perf_counter() if self._journal is not None else 0.0
        with self._lock:
            session = self._session_locked(job)
            self._flushes += 1
            self._requests += len(flush.requests)
        session.ingest(flush)
        if self._journal is not None:
            self._journal.record(
                "ingest", time.perf_counter() - started, job=job, started=started
            )
        return session

    def ingest_frame(self, frame: FlushFrame) -> JobSession | None:
        """Route one decoded frame to its job's session.

        During an armed handover (:meth:`begin_staging`), a frame whose job
        matches the staging predicate is buffered instead of ingested and
        ``None`` is returned; it will be ingested (or deduplicated away) by
        :meth:`end_staging`.
        """
        with self._lock:
            if self._staging is not None and self._staging(frame.job):
                # Not counted in _frames yet: a staged frame is either a
                # duplicate of one the old owner already counted, or will be
                # counted when end_staging() actually ingests it.
                self._staged.append((frame.job, frame.flush))
                return None
            self._frames += 1
        return self.ingest(frame.job, frame.flush)

    def ingest_frames(self, frames: Iterable[FlushFrame]) -> int:
        """Route an iterable of frames; returns how many were ingested."""
        count = 0
        for frame in frames:
            self.ingest_frame(frame)
            count += 1
        return count

    # ------------------------------------------------------------------ #
    # zero-pause handover staging
    # ------------------------------------------------------------------ #
    @property
    def staged_frames(self) -> int:
        """Frames currently buffered by an armed handover staging."""
        with self._lock:
            return len(self._staged)

    def begin_staging(self, predicate: Callable[[str], bool]) -> None:
        """Arm handover staging: buffer frames whose job matches ``predicate``.

        Matching frames are kept in arrival order (never ingested) until
        :meth:`end_staging` replays them or :meth:`abort_staging` discards
        them.  Re-arming replaces the predicate and drops any leftover buffer
        — a new handover supersedes a torn one (the router re-sends the
        frames a respawned target lost).
        """
        with self._lock:
            self._staging = predicate
            self._staged = []

    def end_staging(self, drop_counts: dict[str, int] | None = None) -> tuple[int, int]:
        """Disarm staging; dedup and ingest the buffer.

        Per job, the first ``drop_counts[job]`` staged frames are dropped —
        they were double-delivered and their effect already arrived inside
        the merged session state — and every surviving frame is ingested in
        arrival order.  Returns ``(replayed, dropped)``.
        """
        with self._lock:
            staged = self._staged
            self._staging = None
            self._staged = []
        remaining = dict(drop_counts or {})
        replayed = 0
        dropped = 0
        for job, flush in staged:
            if remaining.get(job, 0) > 0:
                remaining[job] -= 1
                dropped += 1
                continue
            with self._lock:
                self._frames += 1
            self.ingest(job, flush)
            replayed += 1
        return replayed, dropped

    def abort_staging(self) -> int:
        """Disarm staging and discard the buffer; returns frames discarded."""
        with self._lock:
            discarded = len(self._staged)
            self._staging = None
            self._staged = []
        return discarded

    def feed_bytes(self, data: bytes) -> int:
        """Feed raw framed bytes (socket reads); returns completed frames routed."""
        with self._lock:
            self._decoder.feed(data)
            frames = list(self._decoder.frames())
        return self.ingest_frames(frames)

    def feed_borrowed(self, data: memoryview) -> int:
        """Feed bytes whose memory is reclaimed after this call returns.

        Same as :meth:`feed_bytes`, but ``data`` is a borrowed view (a slice
        of the shared-memory ring): any undecoded tail is materialized
        (:meth:`~repro.trace.framing._FrameBuffer.detach`) before returning,
        so the caller may acknowledge/overwrite the memory immediately.  A
        frame completed by this call is decoded straight out of the borrowed
        view — zero copies on the common path.
        """
        with self._lock:
            self._decoder.feed(data)
            frames = list(self._decoder.frames())
            self._decoder.detach()
        return self.ingest_frames(frames)

    @property
    def copy_stats(self) -> dict[str, float]:
        """Ingest-path copy counters of the frame decoder.

        ``bytes_copied_per_frame`` is the headline metric: bytes materialized
        by the decoder per emitted frame (0.0 when every frame was decoded in
        place from borrowed buffers).
        """
        with self._lock:
            return {
                "frames_emitted": self._decoder.frames_emitted,
                "bytes_emitted": self._decoder.bytes_emitted,
                "bytes_copied": self._decoder.bytes_copied,
                "bytes_copied_per_frame": self._decoder.bytes_copied_per_frame,
            }

    def register_metrics(self, registry: MetricRegistry) -> None:
        """Expose the feed and copy counters as snapshot-time metric views.

        Views read the counters the broker already keeps, so ingestion pays
        nothing extra per frame — see :class:`~repro.obs.MetricRegistry`.
        """
        views = (
            ("repro_broker_jobs", "gauge", lambda: len(self._sessions),
             "Jobs with a live session"),
            ("repro_broker_frames_total", "counter", lambda: self._frames,
             "Framed flushes routed"),
            ("repro_broker_flushes_total", "counter", lambda: self._flushes,
             "Flush records ingested"),
            ("repro_broker_requests_total", "counter", lambda: self._requests,
             "I/O requests ingested"),
            ("repro_broker_bytes_emitted_total", "counter",
             lambda: self._decoder.bytes_emitted,
             "Payload bytes emitted by the frame decoder"),
            ("repro_broker_bytes_copied_total", "counter",
             lambda: self._decoder.bytes_copied,
             "Payload bytes the frame decoder had to materialize (copies)"),
        )
        for name, kind, read, help_text in views:
            registry.register_view(name, kind, read, help=help_text)

    def tail(self, path: str | Path, *, offset: int = 0) -> FrameReader:
        """Return a :class:`FrameReader` whose polls feed this broker.

        The reader's sink is this broker, so newly completed frames are
        ingested automatically::

            reader = broker.tail(spool_path)
            ...
            reader.poll()   # routes any new frames into the sessions
        """
        return FrameReader(
            path, offset=offset, sink=self.ingest_frames, expected_token=self._expected_token
        )
