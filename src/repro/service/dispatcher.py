"""Detection dispatcher: batches due evaluations onto a worker pool.

On every :meth:`pump`, the dispatcher collects the sessions that have new,
rate-limit-eligible data (``JobSession.due``) and submits one evaluation per
job to a thread pool.  Two mechanisms keep an overloaded service stable
rather than ever-slower:

* **backpressure** — at most ``max_pending`` evaluations are in flight; when
  the pool is saturated, due sessions are deferred, their flushes keep
  accumulating, and the *next* evaluation covers all of them at once
  (detections coalesce, ingestion never blocks);
* **per-job rate limiting** — ``SessionConfig.min_detection_interval`` spaces
  evaluations of a chatty job in trace time, independent of other jobs.

With ``max_workers=0`` evaluations run inline in the pumping thread, which is
deterministic and what the equivalence tests use.

By default (``batching=True``) a pump that finds several due sessions hands
them to the backend as **one batch** (:meth:`DetectionBackend.detect_batch`):
the backend groups the windows by effective length and evaluates each group
with single vectorized FFT/ACF/outlier kernels (see
:mod:`repro.service.batch`), bit-identical to evaluating the sessions one by
one.  The whole batch occupies one pool slot and counters stay in
*evaluation* units.

**Latency accounting.**  Two different questions hide under "latency" and
the dispatcher now answers both honestly:

* the **observed** latency of a session's result — submit-to-completion wall
  time, which for a batched session is the *whole* batch span (every member
  waited for it), recorded in the ``repro_dispatcher_detect_seconds``
  histogram together with per-batch spans in
  ``repro_dispatcher_batch_seconds``;
* the **attributed cost** per evaluation — the batch wall divided by the
  batch size, which is what :meth:`latencies` / :meth:`latency_percentile`
  and the sink callback have always reported.  Those stay as derived
  per-evaluation *share* views for compatibility; distribution questions
  (p99 and friends) should use the histograms, where a 30-session batch no
  longer masquerades as 30 observations of 1/30th its duration.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable

import numpy as np

from typing import Iterable

from repro.core.online import PredictionStep
from repro.obs import NULL_HISTOGRAM, Histogram, MetricRegistry, NullHistogram, SpanJournal

from repro.service.backend import DetectionBackend, ThreadBackend
from repro.service.broker import FlushBroker
from repro.service.session import JobSession

#: Completion callback signature: (session, step or None, latency seconds).
DetectionSink = Callable[[JobSession, PredictionStep | None, float], None]


@dataclass(frozen=True)
class DispatcherStats:
    """Counters and latency aggregates of a dispatcher."""

    submitted: int
    completed: int
    deferred: int
    failures: int
    pending: int

    @property
    def in_flight(self) -> int:
        """Evaluations currently queued or running."""
        return self.pending

    @classmethod
    def merge(cls, stats: Iterable["DispatcherStats"]) -> "DispatcherStats":
        """Aggregate the counters of several dispatchers (the sharded view)."""
        stats = list(stats)
        return cls(
            submitted=sum(s.submitted for s in stats),
            completed=sum(s.completed for s in stats),
            deferred=sum(s.deferred for s in stats),
            failures=sum(s.failures for s in stats),
            pending=sum(s.pending for s in stats),
        )


class DetectionDispatcher:
    """Schedules due per-job detections with backpressure and rate limiting."""

    def __init__(
        self,
        broker: FlushBroker,
        *,
        sink: DetectionSink | None = None,
        max_workers: int = 0,
        max_pending: int = 64,
        latency_window: int = 4096,
        backend: DetectionBackend | None = None,
        batching: bool = True,
        metrics: MetricRegistry | None = None,
        journal: SpanJournal | None = None,
    ) -> None:
        if max_workers < 0:
            raise ValueError(f"max_workers must be >= 0, got {max_workers}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if latency_window < 1:
            raise ValueError(f"latency_window must be >= 1, got {latency_window}")
        self._broker = broker
        self._sink = sink
        self._backend = backend if backend is not None else ThreadBackend()
        self._pool = ThreadPoolExecutor(max_workers=max_workers) if max_workers else None
        self._max_pending = max_pending
        self._batching = batching
        self._closed = False
        self._futures: set[Future] = set()
        # In-flight count in *evaluation* units (a batch future counts as
        # len(batch)); keeps DispatcherStats.pending and the backpressure
        # capacity independent of how evaluations are packed into futures.
        self._pending_evals = 0
        self._lock = threading.Lock()
        # Bounded: a long-running service must not accumulate one float per
        # evaluation forever; percentiles are over the most recent window.
        self._latencies: deque[float] = deque(maxlen=latency_window)
        self._submitted = 0
        self._completed = 0
        self._deferred = 0
        self._failures = 0
        self._journal = journal
        self._metrics = metrics
        self._batch_hist: Histogram | NullHistogram = NULL_HISTOGRAM
        self._detect_hist: Histogram | NullHistogram = NULL_HISTOGRAM
        if metrics is not None:
            self._batch_hist = metrics.histogram(
                "repro_dispatcher_batch_seconds",
                help="Wall time of one dispatched unit (a batch or a single evaluation)",
            )
            self._detect_hist = metrics.histogram(
                "repro_dispatcher_detect_seconds",
                help="Submit-to-completion latency per session "
                "(batched sessions share the batch span)",
            )
            self._kernel_hists: dict[str, Histogram] = {}
            self._backend.observer = self._observe_kernel_stage
            for attr, metric in (
                ("_submitted", "repro_dispatcher_submitted_total"),
                ("_completed", "repro_dispatcher_completed_total"),
                ("_deferred", "repro_dispatcher_deferred_total"),
                ("_failures", "repro_dispatcher_failures_total"),
            ):
                metrics.register_view(
                    metric, "counter", (lambda a=attr: getattr(self, a)),
                    help=f"Dispatcher {metric.split('_')[2]} count",
                )
            metrics.register_view(
                "repro_dispatcher_pending_evals", "gauge",
                lambda: self._pending_evals,
                help="Evaluations currently queued or running (evaluation units)",
            )

    # ------------------------------------------------------------------ #
    @property
    def backend(self) -> DetectionBackend:
        """The detection backend evaluations run on."""
        return self._backend

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran; a closed dispatcher rejects pumps."""
        return self._closed

    @property
    def stats(self) -> DispatcherStats:
        """Current dispatch counters."""
        with self._lock:
            return DispatcherStats(
                submitted=self._submitted,
                completed=self._completed,
                deferred=self._deferred,
                failures=self._failures,
                pending=self._pending_evals,
            )

    @property
    def detect_histogram(self) -> Histogram | None:
        """The full detection-latency histogram (``None`` with metrics off).

        Unlike :meth:`latencies` — a bounded recent window — the histogram
        counts every completed evaluation, and merges bucket-wise across
        shards, so aggregated percentiles weigh shards by their actual
        detection volume.
        """
        hist = self._detect_hist
        return hist if isinstance(hist, Histogram) else None

    def latencies(self) -> tuple[float, ...]:
        """Durations of the most recent completed evaluations (seconds)."""
        with self._lock:
            return tuple(self._latencies)

    def latency_percentile(self, q: float) -> float | None:
        """Recent-window latency percentile in seconds, or ``None`` if empty."""
        with self._lock:
            if not self._latencies:
                return None
            return float(np.percentile(np.asarray(self._latencies), q))

    # ------------------------------------------------------------------ #
    def pump(self, *, wait_for_batch: bool = False) -> int:
        """Schedule every due session onto the pool; returns the submit count.

        With ``wait_for_batch=True`` (or inline workers) the call returns only
        after the scheduled evaluations finished.
        """
        if self._closed:
            raise RuntimeError("cannot pump a closed dispatcher")
        claim_started = time.perf_counter()
        due = list(self._broker.due_sessions())
        if self._journal is not None:
            self._journal.record(
                "batch_claim",
                time.perf_counter() - claim_started,
                job=f"due[{len(due)}]",
                started=claim_started,
            )
        if not due:
            return 0
        # One lock acquisition for the whole due set: capacity is computed
        # once, the overflow is deferred in one go, and the counters move
        # atomically — the old per-session re-locking let concurrent pumps
        # interleave half-updated counters between sessions.
        with self._lock:
            if self._pool is None:
                # Inline execution completes before pump returns; nothing is
                # ever in flight, so backpressure cannot apply.
                capacity = len(due)
            else:
                capacity = max(0, self._max_pending - self._pending_evals)
            selected = due[:capacity]
            self._deferred += len(due) - len(selected)
            self._submitted += len(selected)
            self._pending_evals += len(selected)
        if not selected:
            return 0

        submitted: list[Future] = []
        submitted_at = time.perf_counter()
        if self._batching and len(selected) > 1:
            if self._pool is None:
                self._run_batch(selected, submitted_at)
            else:
                future = self._pool.submit(self._run_batch, selected, submitted_at)
                with self._lock:
                    self._futures.add(future)
                future.add_done_callback(self._discard_future)
                submitted.append(future)
        else:
            for session in selected:
                if self._pool is None:
                    self._run_one(session, submitted_at)
                else:
                    future = self._pool.submit(self._run_one, session, submitted_at)
                    with self._lock:
                        self._futures.add(future)
                    future.add_done_callback(self._discard_future)
                    submitted.append(future)
        if wait_for_batch and submitted:
            wait(submitted)
        return len(selected)

    def join(self) -> None:
        """Block until every in-flight evaluation has completed."""
        while True:
            with self._lock:
                futures = list(self._futures)
            if not futures:
                return
            wait(futures)

    def close(self) -> None:
        """Wait for in-flight work, shut the pool down and close the backend.

        Idempotent; after the first call :meth:`pump` raises ``RuntimeError``.
        """
        if self._closed:
            return
        self.join()
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        self._backend.close()

    # ------------------------------------------------------------------ #
    def _discard_future(self, future: Future) -> None:
        with self._lock:
            self._futures.discard(future)

    def _observe_kernel_stage(self, stage: str, group_size: int, seconds: float) -> None:
        hist = self._kernel_hists.get(stage)
        if hist is None:
            assert self._metrics is not None
            hist = self._metrics.histogram(
                "repro_batch_kernel_stage_seconds",
                {"stage": stage},
                help="Batched spectral kernel stage time per window-group",
            )
            self._kernel_hists[stage] = hist
        hist.observe(seconds)
        if self._journal is not None:
            self._journal.record("kernel", seconds, job=f"group[{group_size}]:{stage}")

    def _run_one(self, session: JobSession, submitted_at: float | None = None) -> None:
        started = time.perf_counter()
        if submitted_at is None:
            submitted_at = started
        try:
            step = self._backend.detect(session)
        except Exception:
            with self._lock:
                self._failures += 1
                self._pending_evals -= 1
            raise
        completed_at = time.perf_counter()
        latency = completed_at - started
        self._batch_hist.observe(latency)
        # True observed latency: queue wait (for pooled dispatch) + run time.
        self._detect_hist.observe(completed_at - submitted_at)
        if self._journal is not None:
            self._journal.record("detect", latency, job=session.job, started=started)
        with self._lock:
            self._completed += 1
            self._pending_evals -= 1
            self._latencies.append(latency)
        if self._sink is not None:
            self._sink(session, step, latency)

    def _run_batch(self, sessions: list[JobSession], submitted_at: float | None = None) -> None:
        started = time.perf_counter()
        if submitted_at is None:
            submitted_at = started
        try:
            report = self._backend.detect_batch(sessions)
        except Exception:
            # The batched engines degrade per session (a failed session is
            # aborted and reported); an exception here means the backend
            # itself broke, so the whole batch is lost.
            with self._lock:
                self._failures += len(sessions)
                self._pending_evals -= len(sessions)
            raise
        completed_at = time.perf_counter()
        wall = completed_at - started
        # Every member of the batch waited for the whole span: that is the
        # latency each actually observed, and what the histograms record.
        self._batch_hist.observe(wall)
        observed = completed_at - submitted_at
        for failed in report.failed:
            if not failed:
                self._detect_hist.observe(observed)
        if self._journal is not None:
            self._journal.record(
                "detect", wall, job=f"batch[{len(sessions)}]", started=started
            )
        # Derived per-evaluation *share* — the historical value of the
        # latency window and the sink callback, kept for compatibility (see
        # the module docstring for share vs. observed latency).
        latency = wall / len(sessions)
        with self._lock:
            self._failures += report.failures
            self._completed += len(sessions) - report.failures
            self._pending_evals -= len(sessions)
            for ok in report.failed:
                if not ok:
                    self._latencies.append(latency)
        if self._sink is not None:
            for session, step, failed in zip(sessions, report.steps, report.failed):
                if not failed:
                    self._sink(session, step, latency)
