"""Detection dispatcher: batches due evaluations onto a worker pool.

On every :meth:`pump`, the dispatcher collects the sessions that have new,
rate-limit-eligible data (``JobSession.due``) and submits one evaluation per
job to a thread pool.  Two mechanisms keep an overloaded service stable
rather than ever-slower:

* **backpressure** — at most ``max_pending`` evaluations are in flight; when
  the pool is saturated, due sessions are deferred, their flushes keep
  accumulating, and the *next* evaluation covers all of them at once
  (detections coalesce, ingestion never blocks);
* **per-job rate limiting** — ``SessionConfig.min_detection_interval`` spaces
  evaluations of a chatty job in trace time, independent of other jobs.

With ``max_workers=0`` evaluations run inline in the pumping thread, which is
deterministic and what the equivalence tests use.

By default (``batching=True``) a pump that finds several due sessions hands
them to the backend as **one batch** (:meth:`DetectionBackend.detect_batch`):
the backend groups the windows by effective length and evaluates each group
with single vectorized FFT/ACF/outlier kernels (see
:mod:`repro.service.batch`), bit-identical to evaluating the sessions one by
one.  The whole batch occupies one pool slot; counters stay in *evaluation*
units, and per-session latency is reported as the batch wall time divided by
the batch size.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable

import numpy as np

from typing import Iterable

from repro.core.online import PredictionStep

from repro.service.backend import DetectionBackend, ThreadBackend
from repro.service.broker import FlushBroker
from repro.service.session import JobSession

#: Completion callback signature: (session, step or None, latency seconds).
DetectionSink = Callable[[JobSession, PredictionStep | None, float], None]


@dataclass(frozen=True)
class DispatcherStats:
    """Counters and latency aggregates of a dispatcher."""

    submitted: int
    completed: int
    deferred: int
    failures: int
    pending: int

    @property
    def in_flight(self) -> int:
        """Evaluations currently queued or running."""
        return self.pending

    @classmethod
    def merge(cls, stats: Iterable["DispatcherStats"]) -> "DispatcherStats":
        """Aggregate the counters of several dispatchers (the sharded view)."""
        stats = list(stats)
        return cls(
            submitted=sum(s.submitted for s in stats),
            completed=sum(s.completed for s in stats),
            deferred=sum(s.deferred for s in stats),
            failures=sum(s.failures for s in stats),
            pending=sum(s.pending for s in stats),
        )


class DetectionDispatcher:
    """Schedules due per-job detections with backpressure and rate limiting."""

    def __init__(
        self,
        broker: FlushBroker,
        *,
        sink: DetectionSink | None = None,
        max_workers: int = 0,
        max_pending: int = 64,
        latency_window: int = 4096,
        backend: DetectionBackend | None = None,
        batching: bool = True,
    ) -> None:
        if max_workers < 0:
            raise ValueError(f"max_workers must be >= 0, got {max_workers}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if latency_window < 1:
            raise ValueError(f"latency_window must be >= 1, got {latency_window}")
        self._broker = broker
        self._sink = sink
        self._backend = backend if backend is not None else ThreadBackend()
        self._pool = ThreadPoolExecutor(max_workers=max_workers) if max_workers else None
        self._max_pending = max_pending
        self._batching = batching
        self._closed = False
        self._futures: set[Future] = set()
        # In-flight count in *evaluation* units (a batch future counts as
        # len(batch)); keeps DispatcherStats.pending and the backpressure
        # capacity independent of how evaluations are packed into futures.
        self._pending_evals = 0
        self._lock = threading.Lock()
        # Bounded: a long-running service must not accumulate one float per
        # evaluation forever; percentiles are over the most recent window.
        self._latencies: deque[float] = deque(maxlen=latency_window)
        self._submitted = 0
        self._completed = 0
        self._deferred = 0
        self._failures = 0

    # ------------------------------------------------------------------ #
    @property
    def backend(self) -> DetectionBackend:
        """The detection backend evaluations run on."""
        return self._backend

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran; a closed dispatcher rejects pumps."""
        return self._closed

    @property
    def stats(self) -> DispatcherStats:
        """Current dispatch counters."""
        with self._lock:
            return DispatcherStats(
                submitted=self._submitted,
                completed=self._completed,
                deferred=self._deferred,
                failures=self._failures,
                pending=self._pending_evals,
            )

    def latencies(self) -> tuple[float, ...]:
        """Durations of the most recent completed evaluations (seconds)."""
        with self._lock:
            return tuple(self._latencies)

    def latency_percentile(self, q: float) -> float | None:
        """Recent-window latency percentile in seconds, or ``None`` if empty."""
        with self._lock:
            if not self._latencies:
                return None
            return float(np.percentile(np.asarray(self._latencies), q))

    # ------------------------------------------------------------------ #
    def pump(self, *, wait_for_batch: bool = False) -> int:
        """Schedule every due session onto the pool; returns the submit count.

        With ``wait_for_batch=True`` (or inline workers) the call returns only
        after the scheduled evaluations finished.
        """
        if self._closed:
            raise RuntimeError("cannot pump a closed dispatcher")
        due = list(self._broker.due_sessions())
        if not due:
            return 0
        # One lock acquisition for the whole due set: capacity is computed
        # once, the overflow is deferred in one go, and the counters move
        # atomically — the old per-session re-locking let concurrent pumps
        # interleave half-updated counters between sessions.
        with self._lock:
            if self._pool is None:
                # Inline execution completes before pump returns; nothing is
                # ever in flight, so backpressure cannot apply.
                capacity = len(due)
            else:
                capacity = max(0, self._max_pending - self._pending_evals)
            selected = due[:capacity]
            self._deferred += len(due) - len(selected)
            self._submitted += len(selected)
            self._pending_evals += len(selected)
        if not selected:
            return 0

        submitted: list[Future] = []
        if self._batching and len(selected) > 1:
            if self._pool is None:
                self._run_batch(selected)
            else:
                future = self._pool.submit(self._run_batch, selected)
                with self._lock:
                    self._futures.add(future)
                future.add_done_callback(self._discard_future)
                submitted.append(future)
        else:
            for session in selected:
                if self._pool is None:
                    self._run_one(session)
                else:
                    future = self._pool.submit(self._run_one, session)
                    with self._lock:
                        self._futures.add(future)
                    future.add_done_callback(self._discard_future)
                    submitted.append(future)
        if wait_for_batch and submitted:
            wait(submitted)
        return len(selected)

    def join(self) -> None:
        """Block until every in-flight evaluation has completed."""
        while True:
            with self._lock:
                futures = list(self._futures)
            if not futures:
                return
            wait(futures)

    def close(self) -> None:
        """Wait for in-flight work, shut the pool down and close the backend.

        Idempotent; after the first call :meth:`pump` raises ``RuntimeError``.
        """
        if self._closed:
            return
        self.join()
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        self._backend.close()

    # ------------------------------------------------------------------ #
    def _discard_future(self, future: Future) -> None:
        with self._lock:
            self._futures.discard(future)

    def _run_one(self, session: JobSession) -> None:
        started = time.perf_counter()
        try:
            step = self._backend.detect(session)
        except Exception:
            with self._lock:
                self._failures += 1
                self._pending_evals -= 1
            raise
        latency = time.perf_counter() - started
        with self._lock:
            self._completed += 1
            self._pending_evals -= 1
            self._latencies.append(latency)
        if self._sink is not None:
            self._sink(session, step, latency)

    def _run_batch(self, sessions: list[JobSession]) -> None:
        started = time.perf_counter()
        try:
            report = self._backend.detect_batch(sessions)
        except Exception:
            # The batched engines degrade per session (a failed session is
            # aborted and reported); an exception here means the backend
            # itself broke, so the whole batch is lost.
            with self._lock:
                self._failures += len(sessions)
                self._pending_evals -= len(sessions)
            raise
        # The batch shares one wall-clock span; each session is attributed an
        # equal slice so the latency window stays in per-evaluation units.
        latency = (time.perf_counter() - started) / len(sessions)
        with self._lock:
            self._failures += report.failures
            self._completed += len(sessions) - report.failures
            self._pending_evals -= len(sessions)
            for ok in report.failed:
                if not ok:
                    self._latencies.append(latency)
        if self._sink is not None:
            for session, step, failed in zip(sessions, report.steps, report.failed):
                if not failed:
                    self._sink(session, step, latency)
