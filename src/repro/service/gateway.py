"""Asyncio multi-client TCP gateway in front of the prediction service.

The gateway is the network front door of the service: any number of clients
connect over TCP, negotiate a protocol version (:class:`~repro.service.
protocol.Hello`), and then drive one shared engine — a single-process
:class:`~repro.service.service.PredictionService` or a multi-process
:class:`~repro.service.sharding.ShardedService` — through the same typed
message layer the shard control pipes speak (:mod:`repro.service.protocol`).

Design notes:

* **one engine, many clients** — engine calls are serialized behind one
  asyncio lock and executed on a worker thread
  (``loop.run_in_executor``), so a slow ``drain`` from one client never
  stalls the event loop: other clients keep connecting, submitting and
  subscribing meanwhile.
* **data plane stays FTS1** — flush frames travel verbatim inside
  :class:`~repro.service.protocol.SubmitFrames`; the engine classifies them
  header-only exactly as it does for spool files and socketpairs.
* **push and pull results** — :class:`~repro.service.protocol.Pump` /
  ``Drain`` replies carry the updates published during that call (pull),
  and a :class:`~repro.service.protocol.Subscribe` turns the connection into
  a live :class:`~repro.service.protocol.PredictionEvent` stream (push).
* **fail clean, never hang** — a corrupt or oversized control message, a
  version mismatch or a wrong tenant token produce a typed
  :class:`~repro.service.protocol.Error` reply and a closed connection;
  engine-side failures are reported per request and leave the connection
  usable.

:class:`ThreadedGateway` wraps the asyncio server in a background thread for
blocking callers (tests, :func:`repro.api.serve`).
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections.abc import Callable
from typing import Any

from repro.exceptions import ProtocolError, ServiceError, ShardCrashedError
from repro.obs import Histogram, MetricRegistry, merge_snapshots, render_prometheus
from repro.service import protocol as proto
from repro.service.publisher import PredictionUpdate
from repro.service.service import PredictionService
from repro.trace.msgpack import packb

#: Socket read size of the gateway's per-connection loop.
_READ_CHUNK = 1 << 16


class _CloseConnection(Exception):
    """Internal flow control: the connection should be closed (not an error)."""


class _Connection:
    """Per-client state: serialized writes plus the subscription stream."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.write_lock = asyncio.Lock()
        self.subscribed = False
        self.jobs: frozenset[str] | None = None
        self.events: asyncio.Queue[PredictionUpdate] = asyncio.Queue()
        self.sender: asyncio.Task | None = None
        #: Version negotiated in this connection's Hello (v2 messages are
        #: only ever sent to — or accepted from — a v2 peer).
        self.version = proto.PROTOCOL_VERSION
        #: Reassembles an inbound chunked state transfer (v2 restores).
        self.assembler = proto.ChunkAssembler()

    async def send(self, message: proto.Message) -> None:
        async with self.write_lock:
            self.writer.write(proto.encode_message(message))
            await self.writer.drain()

    def wants(self, update: PredictionUpdate) -> bool:
        return self.subscribed and (self.jobs is None or update.job in self.jobs)


class ServiceGateway:
    """Asyncio TCP server speaking the versioned control-plane protocol.

    Parameters
    ----------
    engine:
        The service every client drives: a :class:`PredictionService` or a
        :class:`~repro.service.sharding.ShardedService`.  The gateway does
        **not** own it — closing the gateway leaves the engine running.
    host, port:
        Listen address; port 0 picks a free port (read :attr:`port` after
        :meth:`start`).
    token:
        Require every client's :class:`~repro.service.protocol.Hello` to
        present this tenant/auth nibble (defaults to the engine's configured
        token).
    name:
        Server name reported in the :class:`~repro.service.protocol.
        HelloReply`.
    ops_port:
        When not ``None``, serve the HTTP ops surface on this port (``0``
        picks a free one; read :attr:`ops_port` after :meth:`start`):
        ``GET /healthz`` (liveness), ``GET /status`` (the merged
        stats/metrics tree as JSON) and ``GET /metrics`` (Prometheus text
        exposition).  Defaults to the engine's ``ServiceConfig.ops_port``.
    """

    def __init__(
        self,
        engine,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        token: int | None = None,
        name: str = "repro-gateway",
        ops_port: int | None = None,
    ) -> None:
        self._engine = engine
        self._requested_host = host
        self._requested_port = port
        if token is None:
            token = getattr(engine, "token", None)
            if token is None:
                token = getattr(getattr(engine, "config", None), "token", None)
        self._token = token
        self._name = name
        if ops_port is None:
            ops_port = getattr(getattr(engine, "config", None), "ops_port", None)
        self._requested_ops_port = ops_port
        # The gateway's own registry (request RTT by message type) follows
        # the engine's metrics switch so "metrics off" means off everywhere.
        metrics_on = getattr(getattr(engine, "config", None), "metrics", True)
        self._metrics: MetricRegistry | None = MetricRegistry() if metrics_on else None
        self._rtt_hists: dict[str, Histogram] = {}
        #: Optional :class:`~repro.service.autoscaler.Autoscaler` attached by
        #: the serving wrapper (:class:`ThreadedGateway`); surfaced on
        #: ``/status`` when present.  The gateway does not own its lifecycle.
        self.autoscaler = None
        self._server: asyncio.Server | None = None
        self._ops_server: asyncio.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._engine_lock: asyncio.Lock | None = None
        self._read_lock: asyncio.Lock | None = None
        self._connections: set[_Connection] = set()
        self._subscription: int | None = None
        self._read_events_wired = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def host(self) -> str:
        """Bound listen host."""
        if self._server is None or not self._server.sockets:
            return self._requested_host
        return str(self._server.sockets[0].getsockname()[0])

    @property
    def port(self) -> int:
        """Bound listen port (the actual one when 0 was requested)."""
        if self._server is None or not self._server.sockets:
            return self._requested_port
        return int(self._server.sockets[0].getsockname()[1])

    @property
    def address(self) -> str:
        """``host:port`` of the listening socket."""
        return f"{self.host}:{self.port}"

    @property
    def ops_port(self) -> int | None:
        """Bound ops-listener port.

        ``None`` when the ops surface is off *or not yet bound* — returning
        the requested port before the listener exists would hand callers a
        ``0`` placeholder (with ``ops_port=0`` pick-a-free-port) or a port
        nothing is listening on yet.
        """
        if self._ops_server is None or not self._ops_server.sockets:
            return None
        return int(self._ops_server.sockets[0].getsockname()[1])

    async def start(self) -> "ServiceGateway":
        """Bind the listening socket and start accepting clients."""
        self._loop = asyncio.get_running_loop()
        self._engine_lock = asyncio.Lock()
        self._read_lock = asyncio.Lock()
        self._server = await asyncio.start_server(
            self._serve_client, self._requested_host, self._requested_port
        )
        if self._requested_ops_port is not None:
            self._ops_server = await asyncio.start_server(
                self._serve_ops, self._requested_host, self._requested_ops_port
            )
        # One engine-side subscription fans published predictions out to every
        # subscribed connection; publisher callbacks may fire on worker
        # threads, so the hop onto the loop is thread-safe.  A sharded engine
        # exposes its read plane instead: events stream straight off the
        # shards (no pump-reply batching) and never duplicate — the plane
        # replaces, not augments, the parent publisher subscription here.
        subscribe_events = getattr(self._engine, "subscribe_read_events", None)
        if subscribe_events is not None:
            if not self._read_events_wired:
                self._read_events_wired = True
                subscribe_events(self._on_update)
        else:
            self._subscription = self._engine.publisher.subscribe(self._on_update)
        return self

    async def stop(self) -> None:
        """Stop accepting, drop every connection, detach from the engine."""
        if self._subscription is not None:
            self._engine.publisher.unsubscribe(self._subscription)
            self._subscription = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._ops_server is not None:
            self._ops_server.close()
            await self._ops_server.wait_closed()
            self._ops_server = None
        for connection in list(self._connections):
            if connection.sender is not None:
                connection.sender.cancel()
            connection.writer.close()
        self._connections.clear()

    # ------------------------------------------------------------------ #
    # prediction fan-out (publisher thread -> event loop -> sockets)
    # ------------------------------------------------------------------ #
    def _on_update(self, update: PredictionUpdate) -> None:
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self._fanout, update)

    def _fanout(self, update: PredictionUpdate) -> None:
        for connection in self._connections:
            if connection.wants(update):
                connection.events.put_nowait(update)

    async def _send_events(self, connection: _Connection) -> None:
        while True:
            update = await connection.events.get()
            await connection.send(proto.PredictionEvent(update=update.to_dict()))

    # ------------------------------------------------------------------ #
    # per-connection protocol loop
    # ------------------------------------------------------------------ #
    async def _serve_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _Connection(writer)
        self._connections.add(connection)
        connection.sender = asyncio.ensure_future(self._send_events(connection))
        decoder = proto.MessageDecoder()
        handshaken = False
        try:
            while True:
                try:
                    messages = list(decoder.messages())
                except ProtocolError as exc:
                    # Corrupt framing is unrecoverable on this connection (the
                    # byte stream cannot be resynchronized); reject and close.
                    await connection.send(proto.Error(message=str(exc), code="protocol"))
                    return
                for message in messages:
                    if not handshaken:
                        await self._handle_hello(connection, message)
                        handshaken = True
                    else:
                        await self._handle(connection, message)
                data = await reader.read(_READ_CHUNK)
                if not data:
                    return
                decoder.feed(data)
        except _CloseConnection:
            pass
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover - client vanished
            pass
        finally:
            self._connections.discard(connection)
            if connection.sender is not None:
                connection.sender.cancel()
            writer.close()

    async def _handle_hello(self, connection: _Connection, message: proto.Message) -> None:
        if not isinstance(message, proto.Hello):
            await connection.send(
                proto.Error(
                    message=f"expected Hello, got {type(message).__name__}", code="protocol"
                )
            )
            raise _CloseConnection
        version = proto.negotiate_version(message.versions)
        if version is None:
            await connection.send(
                proto.Error(
                    message=(
                        f"no common protocol version (server speaks "
                        f"{proto.SUPPORTED_VERSIONS}, client offered {message.versions})"
                    ),
                    code="unsupported-version",
                )
            )
            raise _CloseConnection
        if self._token is not None and message.token != self._token:
            await connection.send(
                proto.Error(message="tenant token mismatch", code="unauthorized")
            )
            raise _CloseConnection
        connection.version = version
        await connection.send(
            proto.HelloReply(
                version=version,
                server=self._name,
                shards=int(getattr(self._engine, "n_shards", 0)),
            )
        )

    async def _handle(self, connection: _Connection, message: proto.Message) -> None:
        started = time.perf_counter()
        try:
            reply = await self._dispatch(connection, message)
        except _CloseConnection:
            raise
        except ProtocolError as exc:
            # A torn chunk stream cannot be resynchronized mid-connection.
            await connection.send(proto.Error(message=str(exc), code="protocol"))
            raise _CloseConnection from exc
        except ServiceError as exc:
            reply = proto.Error(message=str(exc), code="service-error")
        except Exception as exc:  # engine-side failure: report, keep serving
            reply = proto.Error(message=f"{type(exc).__name__}: {exc}", code="internal")
        finally:
            self._observe_rtt(type(message).__name__, time.perf_counter() - started)
        for item in reply if isinstance(reply, list) else [reply]:
            await connection.send(item)

    def _observe_rtt(self, message_type: str, seconds: float) -> None:
        if self._metrics is None:
            return
        hist = self._rtt_hists.get(message_type)
        if hist is None:
            hist = self._metrics.histogram(
                "repro_gateway_request_seconds",
                {"type": message_type},
                help="Gateway request handling time by control-message type",
            )
            self._rtt_hists[message_type] = hist
        hist.observe(seconds)

    async def _dispatch(
        self, connection: _Connection, message: proto.Message
    ) -> proto.Message | list[proto.Message]:
        if isinstance(message, proto.SubmitFrames):
            data = message.data
            frames = await self._run_engine(lambda: self._engine.feed_bytes(data))
            return proto.SubmitReply(frames=frames)
        if isinstance(message, proto.Pump):
            submitted, updates = await self._run_engine(
                lambda: self._with_updates(self._pump_engine)
            )
            return proto.PumpReply(submitted=submitted, updates=updates)
        if isinstance(message, proto.Drain):
            _, updates = await self._run_engine(lambda: self._with_updates(self._engine.drain))
            return proto.DrainReply(updates=updates)
        if isinstance(message, proto.Stats):
            return proto.StatsReply(stats=await self._read_engine(self._read_stats))
        if isinstance(message, proto.Snapshot):
            state = await self._run_engine(self._engine.snapshot_state)
            if message.max_chunk is not None and connection.version >= 2:
                max_chunk = message.max_chunk

                def encode_chunks() -> list[proto.Message] | None:
                    # Encoding a large state is exactly the work chunking
                    # exists for — keep it off the event loop (no engine
                    # lock needed; the state is already captured).
                    packed = packb(state)
                    if len(packed) <= max_chunk:
                        return None
                    return list(
                        proto.iter_state_chunks(
                            packed, kind="snapshot", max_chunk=max_chunk
                        )
                    )

                assert self._loop is not None
                chunks = await self._loop.run_in_executor(None, encode_chunks)
                if chunks is not None:
                    return chunks
            return proto.SnapshotReply(state=state)
        if isinstance(message, proto.Restore):
            state = message.state
            await self._run_engine(lambda: self._engine.restore_state(state))
            return proto.RestoreReply(restored=len(state.get("sessions", ())))
        if isinstance(message, proto.SnapshotChunk):
            if connection.version < 2:
                return proto.Error(
                    message="chunked snapshot transfer requires protocol version >= 2",
                    code="protocol",
                )
            if not connection.assembler.receiving and message.kind != "restore":
                return proto.Error(
                    message=f"the gateway only accepts 'restore' chunk streams, "
                    f"got {message.kind!r}",
                    code="unsupported",
                )
            state = connection.assembler.feed(message)
            if state is None:
                return []
            await self._run_engine(lambda: self._engine.restore_state(state))
            return proto.RestoreReply(restored=len(state.get("sessions", ())))
        if isinstance(message, proto.ResizeShards):
            if connection.version < 2:
                return proto.Error(
                    message="ResizeShards requires protocol version >= 2", code="protocol"
                )
            n_shards = message.n_shards
            summary = await self._run_engine(lambda: self._reshard_engine(n_shards))
            return proto.ResizeShardsReply(
                n_shards=int(getattr(self._engine, "n_shards", 0)),
                moved_sessions=int(summary["moved_sessions"]),
                moved_jobs=tuple(summary["moved_jobs"]),
            )
        if isinstance(message, proto.FinishJob):
            job = message.job
            await self._run_engine(lambda: self._engine.finish_job(job))
            return proto.FinishJobReply(job=job)
        if isinstance(message, proto.Subscribe):
            connection.jobs = None if message.jobs is None else frozenset(message.jobs)
            connection.subscribed = True
            return proto.SubscribeReply(subscription=id(connection) & 0x7FFFFFFF)
        if isinstance(message, proto.Close):
            await connection.send(proto.CloseReply())
            raise _CloseConnection
        if isinstance(message, proto.Hello):
            return proto.Error(message="conversation already established", code="protocol")
        return proto.Error(
            message=f"unsupported gateway message {type(message).__name__}", code="unsupported"
        )

    # ------------------------------------------------------------------ #
    # engine access
    # ------------------------------------------------------------------ #
    async def _run_engine(self, fn: Callable[[], Any]) -> Any:
        """Run one blocking engine call off-loop, serialized across clients."""
        assert self._loop is not None and self._engine_lock is not None
        async with self._engine_lock:
            return await self._loop.run_in_executor(None, fn)

    async def _read_engine(self, fn: Callable[[], Any]) -> Any:
        """Run a read-only engine call off-loop, behind its own lock.

        Reads served by the shards' read planes must not queue behind a
        pump or snapshot holding :attr:`_engine_lock` — that lock exists to
        serialize *mutating* control-plane traffic.  A single-process engine
        has no read plane, so its reads fall back to :meth:`_run_engine`
        (they do race the worker threads there, same as always).
        """
        if getattr(self._engine, "read_stats", None) is None:
            return await self._run_engine(fn)
        assert self._loop is not None and self._read_lock is not None
        async with self._read_lock:
            return await self._loop.run_in_executor(None, fn)

    def _read_stats(self) -> dict:
        """Engine stats via the shard read plane when one exists."""
        read_stats = getattr(self._engine, "read_stats", None)
        if read_stats is None:
            return self._engine.stats()
        try:
            return read_stats()
        except (ShardCrashedError, ServiceError, TimeoutError):
            # A shard died mid-read; the control-plane path knows how to
            # skip (or revive) dead shards.
            return self._engine.stats()

    def _reshard_engine(self, n_shards: int) -> dict:
        reshard = getattr(self._engine, "reshard", None)
        if reshard is None:
            raise ServiceError(
                "the engine is single-process; live resharding requires a "
                "sharded deployment (serve with shards >= 1)"
            )
        return reshard(n_shards)

    async def resize(self, n_shards: int) -> dict:
        """Live-reshard the engine to ``n_shards`` (serialized like any call)."""
        return await self._run_engine(lambda: self._reshard_engine(n_shards))

    def _pump_engine(self) -> int:
        if isinstance(self._engine, PredictionService):
            submitted = self._engine.pump(wait_for_batch=True)
            self._engine.dispatcher.join()
            return submitted
        return self._engine.pump()

    def _with_updates(self, fn: Callable[[], Any]) -> tuple[Any, tuple[dict, ...]]:
        """Capture the updates published while ``fn`` runs (for pull replies)."""
        captured: list[dict] = []
        subscription = self._engine.publisher.subscribe(
            lambda update: captured.append(update.to_dict())
        )
        try:
            result = fn()
        finally:
            self._engine.publisher.unsubscribe(subscription)
        return result, tuple(captured)

    # ------------------------------------------------------------------ #
    # ops HTTP surface (/healthz, /status, /metrics)
    # ------------------------------------------------------------------ #
    def _merged_metrics(self) -> dict:
        """Engine metrics (cross-shard merged) + the gateway's own registry.

        Prefers the shard read plane (scrapes never queue behind a pump in
        flight on the control pipes); single-process engines poll directly.
        """
        snapshots: list[dict] = []
        collect = getattr(self._engine, "read_metrics_snapshot", None) or getattr(
            self._engine, "metrics_snapshot", None
        )
        if collect is not None:
            snapshots.append(collect())
        if self._metrics is not None:
            snapshots.append(self._metrics.collect())
        return merge_snapshots(snapshots)

    def _status_document(self) -> dict:
        """The ``/status`` body: full stats tree, merged metrics, spans."""
        document: dict[str, Any] = {
            "server": self._name,
            "healthy": True,
            "shards": int(getattr(self._engine, "n_shards", 0)),
            "stats": self._read_stats(),
            "metrics": self._merged_metrics(),
        }
        details = getattr(self._engine, "shard_details", None)
        if details is not None:
            document["shards_detail"] = details()
        spans = getattr(self._engine, "spans_snapshot", None)
        if spans is not None:
            document["spans"] = spans()
        if self.autoscaler is not None:
            document["autoscale"] = self.autoscaler.status()
        return document

    async def _ops_body(self, path: str) -> tuple[int, str, str]:
        """Resolve an ops route to ``(http_status, content_type, body)``."""
        if path == "/healthz":
            return 200, "text/plain; charset=utf-8", "ok\n"
        if path == "/status":
            document = await self._read_engine(self._status_document)
            return 200, "application/json", json.dumps(document) + "\n"
        if path == "/metrics":
            snapshot = await self._read_engine(self._merged_metrics)
            exposition = render_prometheus(snapshot)
            return 200, "text/plain; version=0.0.4; charset=utf-8", exposition
        return 404, "text/plain; charset=utf-8", f"unknown ops path {path!r}\n"

    async def _serve_ops(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Minimal HTTP/1.1 responder for scrapers and health checks.

        One request per connection (``Connection: close``) — ops traffic is a
        poll every few seconds, not a hot path, and closing keeps the parser
        trivial and stdlib-only.
        """
        try:
            request_line = await reader.readline()
            while True:  # drain headers up to the blank line
                header = await reader.readline()
                if header in (b"", b"\r\n", b"\n"):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            if len(parts) < 2 or parts[0] != "GET":
                status, content_type, body = (
                    405,
                    "text/plain; charset=utf-8",
                    "only GET is supported\n",
                )
            else:
                path = parts[1].split("?", 1)[0]
                try:
                    status, content_type, body = await self._ops_body(path)
                except Exception as exc:  # engine trouble must not kill the listener
                    status, content_type, body = (
                        500,
                        "text/plain; charset=utf-8",
                        f"{type(exc).__name__}: {exc}\n",
                    )
            reason = {200: "OK", 404: "Not Found", 405: "Method Not Allowed"}.get(
                status, "Internal Server Error"
            )
            payload = body.encode("utf-8")
            head = (
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            writer.close()


class ThreadedGateway:
    """A :class:`ServiceGateway` running its own event loop in a thread.

    Blocking callers (tests, :func:`repro.api.serve`) start it, read
    :attr:`host`/:attr:`port`, connect :class:`~repro.client.ServiceClient`
    instances against it, and :meth:`close` it when done::

        with ThreadedGateway(service).start() as gateway:
            client = ServiceClient(gateway.host, gateway.port)

    With ``own_engine=True`` closing the gateway also closes the engine.
    With ``autoscale=AutoscaleConfig(...)`` (sharded engines only) the
    gateway owns an :class:`~repro.service.autoscaler.Autoscaler` whose
    resizes go through :meth:`resize` — i.e. behind the same engine lock
    every client request takes — and whose decision timeline shows up in
    the ``/status`` document under ``"autoscale"``.
    """

    def __init__(
        self,
        engine,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        token: int | None = None,
        name: str = "repro-gateway",
        ops_port: int | None = None,
        own_engine: bool = False,
        autoscale=None,
    ) -> None:
        self._engine = engine
        self._kwargs: dict[str, Any] = {
            "host": host,
            "port": port,
            "token": token,
            "name": name,
            "ops_port": ops_port,
        }
        self._own_engine = own_engine
        self._autoscale = autoscale
        self._autoscaler = None
        self._gateway: ServiceGateway | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._thread: threading.Thread | None = None

    @property
    def engine(self):
        """The service this gateway fronts."""
        return self._engine

    @property
    def host(self) -> str:
        """Bound listen host."""
        assert self._gateway is not None, "gateway not started"
        return self._gateway.host

    @property
    def port(self) -> int:
        """Bound listen port."""
        assert self._gateway is not None, "gateway not started"
        return self._gateway.port

    @property
    def address(self) -> str:
        """``host:port`` of the listening socket."""
        assert self._gateway is not None, "gateway not started"
        return self._gateway.address

    @property
    def ops_port(self) -> int | None:
        """Bound ops-listener port (``None`` when off or not yet bound)."""
        assert self._gateway is not None, "gateway not started"
        return self._gateway.ops_port

    def start(self) -> "ThreadedGateway":
        """Start the server thread; returns once the socket is bound."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name="repro-gateway", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._error is not None:
            error, self._error = self._error, None
            self._thread.join()
            self._thread = None
            raise error
        if self._autoscale is not None:
            if getattr(self._engine, "reshard", None) is None:
                raise ServiceError(
                    "autoscaling requires a sharded engine; serve with "
                    "shards >= 1 to make the topology mutable"
                )
            from repro.service.autoscaler import Autoscaler

            # Resizes go through the gateway so they take the engine lock —
            # an autoscaler-initiated reshard never interleaves with an
            # in-flight client pump/snapshot.
            self._autoscaler = Autoscaler(
                self._engine, self._autoscale, resize=self.resize
            )
            assert self._gateway is not None
            self._gateway.autoscaler = self._autoscaler
            self._autoscaler.start()
        return self

    def _run(self) -> None:
        asyncio.run(self._amain())

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            gateway = ServiceGateway(self._engine, **self._kwargs)
            await gateway.start()
        except BaseException as exc:
            self._error = exc
            self._ready.set()
            return
        self._gateway = gateway
        self._ready.set()
        await self._stop.wait()
        await gateway.stop()

    def resize(self, n_shards: int) -> dict:
        """Live-reshard the served engine to ``n_shards`` worker shards.

        The reshard runs on the gateway's event loop behind the same engine
        lock every client request takes, so it never interleaves with an
        in-flight ``pump``/``snapshot`` — in-progress client calls finish,
        then the topology changes, then traffic resumes.  Returns the
        :meth:`~repro.service.sharding.ShardedService.reshard` summary.
        Raises :class:`~repro.exceptions.ServiceError` for a single-process
        engine (serve with ``shards >= 1`` to make the topology mutable).
        """
        assert self._gateway is not None and self._loop is not None, "gateway not started"
        future = asyncio.run_coroutine_threadsafe(
            self._gateway.resize(n_shards), self._loop
        )
        return future.result()

    @property
    def autoscaler(self):
        """The gateway-owned autoscaler (``None`` unless serving with one)."""
        return self._autoscaler

    def close(self) -> None:
        """Stop the server, join the thread, optionally close the engine."""
        if self._autoscaler is not None:
            # Stop the control loop before the event loop it resizes through.
            self._autoscaler.stop()
            self._autoscaler = None
        thread = self._thread
        if thread is not None and thread.is_alive():
            assert self._loop is not None and self._stop is not None
            self._loop.call_soon_threadsafe(self._stop.set)
            thread.join(timeout=10.0)
        self._thread = None
        if self._own_engine:
            self._engine.close()

    def __enter__(self) -> "ThreadedGateway":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
