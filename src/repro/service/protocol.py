"""Typed, versioned control-plane protocol of the prediction service.

Every control surface of the service speaks one message layer: the shard
control pipe of :class:`~repro.service.sharding.ShardedService`, the asyncio
TCP gateway (:mod:`repro.service.gateway`) and the blocking
:class:`~repro.client.ServiceClient` all exchange the dataclasses defined
here, encoded canonically with the library's own MessagePack implementation
and wrapped in a tiny length-prefixed envelope.

Envelope layout (all integers big-endian)::

    offset  size  field
    0       4     magic  b"FTC1"
    4       1     message type code (see the registry below)
    5       4     body length B
    9       B     body: the message payload as one MessagePack map

The *envelope* is unversioned and stable; the *conversation* is versioned
through the :class:`Hello` handshake: the connecting side offers the protocol
versions it speaks, the serving side picks the highest common one
(:func:`negotiate_version`) and answers with :class:`HelloReply` — or an
:class:`Error` when no common version exists, so an incompatible peer is
rejected cleanly instead of mis-parsed.  :data:`PROTOCOL_VERSION` is the
current version.

Version 2 adds *chunked snapshot transfer* and *elastic resharding*: large
snapshot states travel as a stream of bounded :class:`SnapshotChunk`
messages instead of one giant body (:func:`iter_state_chunks` /
:class:`ChunkAssembler`), a peer can ask a serving side to stream its
snapshot back chunked (``Snapshot.max_chunk``), per-job session state moves
between shards via :class:`ExtractJobs`, and :class:`ResizeShards` drives a
live :meth:`~repro.service.sharding.ShardedService.reshard`.  All of it is
Hello-negotiated: against a version-1 peer none of the new messages are
sent, so v1 clients keep working against a v2 server and vice versa.

Data-plane payloads do not travel here: flush frames keep their FTS1 wire
format (:mod:`repro.trace.framing`) and ride inside :class:`SubmitFrames`
verbatim, so a gateway or router still classifies them header-only and a
payload is decoded exactly once, in the session that owns the job.
"""

from __future__ import annotations

import struct
from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass, field, fields
from typing import Any, TypeVar

from repro.exceptions import ProtocolError
from repro.trace.msgpack import packb, unpackb

#: First bytes of every control-plane envelope.
PROTOCOL_MAGIC = b"FTC1"
#: Current control-plane protocol version.
PROTOCOL_VERSION = 2
#: Every version this implementation can speak.
SUPPORTED_VERSIONS: tuple[int, ...] = (1, 2)
#: Upper bound on one message body; a corrupt length field must never make a
#: reader wait for gigabytes that will not arrive.  Snapshots are the largest
#: messages (bounded session buffers), far below this.
MAX_MESSAGE_BYTES = 1 << 30
#: Default payload size of one v2 :class:`SnapshotChunk`.
DEFAULT_CHUNK_BYTES = 256 * 1024
#: Hard upper bound on one chunk's payload — the whole point of chunking is
#: that no single control message is ever huge, so the bound is enforced at
#: decode time too.
MAX_CHUNK_BYTES = 8 * 1024 * 1024

_ENVELOPE = struct.Struct(">4sBI")

M = TypeVar("M", bound="Message")


class Message:
    """Base class of every control-plane message."""

    def to_payload(self) -> dict:
        """The message body as a MessagePack-serializable map."""
        return {f.name: getattr(self, f.name) for f in fields(self)}  # type: ignore[arg-type]

    @classmethod
    def from_payload(cls: type[M], payload: Mapping) -> M:
        """Rebuild the message from a decoded body map."""
        raise NotImplementedError


def _opt_int(value: Any) -> int | None:
    return None if value is None else int(value)


def _opt_chunk_bound(value: Any) -> int | None:
    # A degenerate bound (0, negative) would make the serving side stream a
    # state as one envelope per byte — reject it at decode time instead.
    if value is None:
        return None
    bound = int(value)
    if bound < 1:
        raise ProtocolError(f"max_chunk must be >= 1, got {bound}")
    return bound


def _str_tuple(value: Any) -> tuple[str, ...]:
    if not isinstance(value, (list, tuple)):
        raise ProtocolError(f"expected a string list, got {type(value).__name__}")
    return tuple(str(item) for item in value)


def _dict_tuple(value: Any) -> tuple[dict, ...]:
    if not isinstance(value, (list, tuple)):
        raise ProtocolError(f"expected a map list, got {type(value).__name__}")
    out = []
    for item in value:
        if not isinstance(item, dict):
            raise ProtocolError(f"expected a map, got {type(item).__name__}")
        out.append(item)
    return tuple(out)


def _opt_float_tuple(value: Any) -> tuple[float, ...] | None:
    if value is None:
        return None
    if not isinstance(value, (list, tuple)):
        raise ProtocolError(f"expected a number list, got {type(value).__name__}")
    out = tuple(float(item) for item in value)
    if any(weight <= 0 for weight in out):
        raise ProtocolError("ring weights must be > 0")
    return out


def _require_dict(value: Any, field: str) -> dict:
    if not isinstance(value, dict):
        raise ProtocolError(f"field {field!r} must be a map, got {type(value).__name__}")
    return value


# --------------------------------------------------------------------- #
# handshake
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class Hello(Message):
    """First message of every conversation: offer versions, present a token.

    ``token`` is the wire-level tenant/auth nibble (the same 0..15 secret the
    FTS1 frame flags carry); a server configured with a token rejects a hello
    that does not present it.
    """

    versions: tuple[int, ...] = SUPPORTED_VERSIONS
    token: int | None = None
    client: str = ""

    @classmethod
    def from_payload(cls, payload: Mapping) -> "Hello":
        versions = payload.get("versions")
        if not isinstance(versions, (list, tuple)) or not versions:
            raise ProtocolError("hello must offer at least one protocol version")
        return cls(
            versions=tuple(int(v) for v in versions),
            token=_opt_int(payload.get("token")),
            client=str(payload.get("client", "")),
        )


@dataclass(frozen=True)
class HelloReply(Message):
    """Successful handshake: the negotiated version plus server facts."""

    version: int = PROTOCOL_VERSION
    server: str = ""
    shards: int = 0

    @classmethod
    def from_payload(cls, payload: Mapping) -> "HelloReply":
        return cls(
            version=int(payload["version"]),
            server=str(payload.get("server", "")),
            shards=int(payload.get("shards", 0)),
        )


@dataclass(frozen=True)
class Error(Message):
    """Failure reply; ``code`` is a stable machine-readable discriminator."""

    message: str
    code: str = "error"

    @classmethod
    def from_payload(cls, payload: Mapping) -> "Error":
        return cls(message=str(payload["message"]), code=str(payload.get("code", "error")))


# --------------------------------------------------------------------- #
# data ingestion and evaluation
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class SubmitFrames(Message):
    """Raw FTS1-framed bytes to ingest (one or more complete or partial frames)."""

    data: bytes

    @classmethod
    def from_payload(cls, payload: Mapping) -> "SubmitFrames":
        data = payload["data"]
        if not isinstance(data, (bytes, bytearray)):
            raise ProtocolError(f"frame data must be binary, got {type(data).__name__}")
        return cls(data=bytes(data))


@dataclass(frozen=True)
class SubmitReply(Message):
    """Frames completed (routed) by the submitted bytes."""

    frames: int

    @classmethod
    def from_payload(cls, payload: Mapping) -> "SubmitReply":
        return cls(frames=int(payload["frames"]))


@dataclass(frozen=True)
class Pump(Message):
    """Evaluate every due session.

    ``expected_bytes`` carries the sender's data-plane byte count when data
    and control travel on different channels (the shard socketpair): the
    receiver drains its data stream up to that mark before pumping, which
    re-orders the two planes deterministically.  ``None`` when both planes
    share one ordered channel (the TCP gateway).
    """

    expected_bytes: int | None = None

    @classmethod
    def from_payload(cls, payload: Mapping) -> "Pump":
        return cls(expected_bytes=_opt_int(payload.get("expected_bytes")))


@dataclass(frozen=True)
class PumpReply(Message):
    """Evaluations submitted, plus the updates published during the pump."""

    submitted: int
    updates: tuple[dict, ...] = ()

    @classmethod
    def from_payload(cls, payload: Mapping) -> "PumpReply":
        return cls(
            submitted=int(payload["submitted"]),
            updates=_dict_tuple(payload.get("updates", ())),
        )


@dataclass(frozen=True)
class Drain(Message):
    """Pump until nothing is due and nothing is in flight."""

    expected_bytes: int | None = None

    @classmethod
    def from_payload(cls, payload: Mapping) -> "Drain":
        return cls(expected_bytes=_opt_int(payload.get("expected_bytes")))


@dataclass(frozen=True)
class DrainReply(Message):
    """Drain finished; carries the updates published while draining."""

    updates: tuple[dict, ...] = ()

    @classmethod
    def from_payload(cls, payload: Mapping) -> "DrainReply":
        return cls(updates=_dict_tuple(payload.get("updates", ())))


@dataclass(frozen=True)
class FinishJob(Message):
    """Mark one job finished (pending data is still evaluated, then idle)."""

    job: str

    @classmethod
    def from_payload(cls, payload: Mapping) -> "FinishJob":
        return cls(job=str(payload["job"]))


@dataclass(frozen=True)
class FinishJobReply(Message):
    """The job was marked finished."""

    job: str

    @classmethod
    def from_payload(cls, payload: Mapping) -> "FinishJobReply":
        return cls(job=str(payload["job"]))


# --------------------------------------------------------------------- #
# introspection, snapshot, subscription, lifecycle
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class Stats(Message):
    """Request the service-wide counters."""

    @classmethod
    def from_payload(cls, payload: Mapping) -> "Stats":
        return cls()


@dataclass(frozen=True)
class StatsReply(Message):
    """One JSON-friendly map of counters (shape owned by the serving side)."""

    stats: dict

    @classmethod
    def from_payload(cls, payload: Mapping) -> "StatsReply":
        return cls(stats=_require_dict(payload["stats"], "stats"))


@dataclass(frozen=True)
class Snapshot(Message):
    """Capture the full service state (see :mod:`repro.service.snapshot`).

    ``max_chunk`` (protocol >= 2) asks the serving side to stream the state
    back as :class:`SnapshotChunk` messages of at most that many payload
    bytes when the encoded state exceeds it; a version-1 peer ignores the
    field (its decoder only reads the keys it knows) and replies with a
    plain :class:`SnapshotReply`, so the requester must accept both shapes.
    """

    expected_bytes: int | None = None
    max_chunk: int | None = None

    @classmethod
    def from_payload(cls, payload: Mapping) -> "Snapshot":
        return cls(
            expected_bytes=_opt_int(payload.get("expected_bytes")),
            max_chunk=_opt_chunk_bound(payload.get("max_chunk")),
        )


@dataclass(frozen=True)
class SnapshotReply(Message):
    """The captured snapshot state."""

    state: dict

    @classmethod
    def from_payload(cls, payload: Mapping) -> "SnapshotReply":
        return cls(state=_require_dict(payload["state"], "state"))


@dataclass(frozen=True)
class Restore(Message):
    """Load a snapshot state into the running service."""

    state: dict

    @classmethod
    def from_payload(cls, payload: Mapping) -> "Restore":
        return cls(state=_require_dict(payload["state"], "state"))


@dataclass(frozen=True)
class RestoreReply(Message):
    """Sessions restored from the snapshot."""

    restored: int

    @classmethod
    def from_payload(cls, payload: Mapping) -> "RestoreReply":
        return cls(restored=int(payload["restored"]))


@dataclass(frozen=True)
class Subscribe(Message):
    """Stream every published prediction back as :class:`PredictionEvent`.

    ``jobs`` restricts the stream to the given job ids (``None`` = all).
    """

    jobs: tuple[str, ...] | None = None

    @classmethod
    def from_payload(cls, payload: Mapping) -> "Subscribe":
        jobs = payload.get("jobs")
        return cls(jobs=None if jobs is None else _str_tuple(jobs))


@dataclass(frozen=True)
class SubscribeReply(Message):
    """Subscription established; events follow asynchronously."""

    subscription: int

    @classmethod
    def from_payload(cls, payload: Mapping) -> "SubscribeReply":
        return cls(subscription=int(payload["subscription"]))


@dataclass(frozen=True)
class PredictionEvent(Message):
    """One published prediction, pushed to a subscribed peer.

    ``update`` is the :meth:`~repro.service.publisher.PredictionUpdate.
    to_dict` map.
    """

    update: dict

    @classmethod
    def from_payload(cls, payload: Mapping) -> "PredictionEvent":
        return cls(update=_require_dict(payload["update"], "update"))


# --------------------------------------------------------------------- #
# protocol version 2: chunked snapshot transfer and elastic resharding
# --------------------------------------------------------------------- #
#: Valid ``SnapshotChunk.kind`` discriminators.  ``snapshot`` and ``extract``
#: flow from the serving side (chunked replies to :class:`Snapshot` /
#: :class:`ExtractJobs`); ``restore`` and ``merge`` flow *to* it (the final
#: chunk triggers the apply and is answered with :class:`RestoreReply`) —
#: ``restore`` replaces the publisher state, ``merge`` folds the carried
#: sessions into a running service without touching other jobs (the
#: resharding migration path).
CHUNK_KINDS: tuple[str, ...] = ("snapshot", "extract", "restore", "merge")


@dataclass(frozen=True)
class SnapshotChunk(Message):
    """One bounded slice of a msgpack-encoded snapshot state (protocol >= 2).

    A transfer is a ``seq = 0, 1, ...`` ordered run of chunks of one
    ``kind``; ``last=True`` marks the final chunk, after which the
    concatenated ``data`` decodes to one snapshot-state map
    (:class:`ChunkAssembler` does the bookkeeping).  Non-final chunks are
    never individually acknowledged — the stream rides an ordered,
    flow-controlled channel, and only the completed transfer gets a reply.
    """

    kind: str
    seq: int
    data: bytes
    last: bool = False

    @classmethod
    def from_payload(cls, payload: Mapping) -> "SnapshotChunk":
        kind = str(payload["kind"])
        if kind not in CHUNK_KINDS:
            raise ProtocolError(f"unknown snapshot-chunk kind {kind!r}")
        data = payload["data"]
        if not isinstance(data, (bytes, bytearray)):
            raise ProtocolError(f"chunk data must be binary, got {type(data).__name__}")
        if len(data) > MAX_CHUNK_BYTES:
            raise ProtocolError(
                f"snapshot chunk of {len(data)} bytes exceeds the {MAX_CHUNK_BYTES}-byte bound"
            )
        seq = int(payload["seq"])
        if seq < 0:
            raise ProtocolError(f"chunk seq must be >= 0, got {seq}")
        return cls(kind=kind, seq=seq, data=bytes(data), last=bool(payload.get("last", False)))


@dataclass(frozen=True)
class ResizeShards(Message):
    """Live-reshard the serving engine to ``n_shards`` worker shards."""

    n_shards: int

    @classmethod
    def from_payload(cls, payload: Mapping) -> "ResizeShards":
        n_shards = int(payload["n_shards"])
        if n_shards < 1:
            raise ProtocolError(f"n_shards must be >= 1, got {n_shards}")
        return cls(n_shards=n_shards)


@dataclass(frozen=True)
class ResizeShardsReply(Message):
    """The reshard finished: the new topology plus what the migration moved."""

    n_shards: int
    moved_sessions: int = 0
    moved_jobs: tuple[str, ...] = ()

    @classmethod
    def from_payload(cls, payload: Mapping) -> "ResizeShardsReply":
        return cls(
            n_shards=int(payload["n_shards"]),
            moved_sessions=int(payload.get("moved_sessions", 0)),
            moved_jobs=_str_tuple(payload.get("moved_jobs", ())),
        )


@dataclass(frozen=True)
class ExtractJobs(Message):
    """Capture *and remove* the given jobs' sessions (the migration source).

    The serving side drains its data plane to ``expected_bytes`` first (the
    same two-plane re-ordering every state-bearing request uses), captures
    the listed jobs' session + publisher state, forgets them, and replies
    with :class:`ExtractJobsReply` — or, when ``max_chunk`` is set and the
    encoded state exceeds it, with a ``kind="extract"`` chunk stream.
    """

    jobs: tuple[str, ...]
    expected_bytes: int | None = None
    max_chunk: int | None = None

    @classmethod
    def from_payload(cls, payload: Mapping) -> "ExtractJobs":
        return cls(
            jobs=_str_tuple(payload["jobs"]),
            expected_bytes=_opt_int(payload.get("expected_bytes")),
            max_chunk=_opt_chunk_bound(payload.get("max_chunk")),
        )


@dataclass(frozen=True)
class ExtractJobsReply(Message):
    """The extracted (and now removed) per-job state."""

    state: dict

    @classmethod
    def from_payload(cls, payload: Mapping) -> "ExtractJobsReply":
        return cls(state=_require_dict(payload["state"], "state"))


@dataclass(frozen=True)
class MetricsReport(Message):
    """Metric registry snapshot, or a poll for one (empty ``metrics``).

    The router polls each shard with an empty report over the control pipe;
    the shard replies with its :meth:`~repro.obs.MetricRegistry.collect`
    tree.  The tree is plain msgpack types and merges across shards with
    :func:`repro.obs.merge_snapshots` — histograms merge bucket-wise, so
    cross-shard quantiles survive aggregation.
    """

    metrics: dict = field(default_factory=dict)

    @classmethod
    def from_payload(cls, payload: Mapping) -> "MetricsReport":
        return cls(metrics=_require_dict(payload.get("metrics", {}), "metrics"))


# --------------------------------------------------------------------- #
# zero-pause handover (double-routed migration)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class BeginHandover(Message):
    """Arm a migration target: stage incoming frames for moving jobs.

    Carries both ring parameterizations (shard counts, replica budget,
    optional per-shard weights) plus the receiving shard's own index, so the
    shard rebuilds the two rings locally and computes its *own* staging
    predicate — a frame is staged iff its job changes owner between the two
    rings **and** the new owner is this shard.  Shipping the rings instead of
    a job list makes the predicate correct even for job ids the router has
    never seen (a brand-new job submitted mid-migration) and independent of
    control/data channel ordering.

    From the reply until :class:`CompleteHandover` (or
    :class:`AbortHandover`), matching frames are buffered in arrival order
    instead of ingested; everything else flows normally — this is what turns
    the old park-and-replay pause into a zero-pause double-routed handover.
    """

    shard: int
    old_shards: int
    new_shards: int
    replicas: int
    old_weights: tuple[float, ...] | None = None
    new_weights: tuple[float, ...] | None = None

    @classmethod
    def from_payload(cls, payload: Mapping) -> "BeginHandover":
        old_shards = int(payload["old_shards"])
        new_shards = int(payload["new_shards"])
        replicas = int(payload["replicas"])
        if old_shards < 1 or new_shards < 1:
            raise ProtocolError(
                f"handover shard counts must be >= 1, got {old_shards} -> {new_shards}"
            )
        if replicas < 1:
            raise ProtocolError(f"replicas must be >= 1, got {replicas}")
        return cls(
            shard=int(payload["shard"]),
            old_shards=old_shards,
            new_shards=new_shards,
            replicas=replicas,
            old_weights=_opt_float_tuple(payload.get("old_weights")),
            new_weights=_opt_float_tuple(payload.get("new_weights")),
        )


@dataclass(frozen=True)
class BeginHandoverReply(Message):
    """Staging is armed; double-routing may start."""

    shard: int

    @classmethod
    def from_payload(cls, payload: Mapping) -> "BeginHandoverReply":
        return cls(shard=int(payload["shard"]))


@dataclass(frozen=True)
class CompleteHandover(Message):
    """Finish a handover: dedup the staged frames, ingest the remainder.

    The shard first drains its data plane to ``expected_bytes`` (so every
    double-routed frame has been staged), then — per job — drops the first
    ``drop_counts[job]`` staged frames: those were *also* delivered to the
    old owner before its state was extracted, so their effect already arrived
    inside the merged session state.  The surviving staged frames (delivered
    only here) are ingested in arrival order, which keeps the whole handover
    exactly-once.
    """

    expected_bytes: int | None = None
    drop_counts: dict = field(default_factory=dict)

    @classmethod
    def from_payload(cls, payload: Mapping) -> "CompleteHandover":
        drops = _require_dict(payload.get("drop_counts", {}), "drop_counts")
        return cls(
            expected_bytes=_opt_int(payload.get("expected_bytes")),
            drop_counts={str(job): int(count) for job, count in drops.items()},
        )


@dataclass(frozen=True)
class CompleteHandoverReply(Message):
    """Handover done: staged frames deduplicated and ingested."""

    replayed: int = 0
    dropped: int = 0

    @classmethod
    def from_payload(cls, payload: Mapping) -> "CompleteHandoverReply":
        return cls(
            replayed=int(payload.get("replayed", 0)),
            dropped=int(payload.get("dropped", 0)),
        )


@dataclass(frozen=True)
class AbortHandover(Message):
    """Roll a handover back: discard the staged frames, stop staging.

    Sent when a failed reshard leaves the *old* ring in charge — the router
    re-routes its own parked copies of the undelivered frames toward the old
    owners, so the staged copies here must be dropped, not ingested.  The
    shard drains its data plane to ``expected_bytes`` before disarming, so a
    double-routed frame still in flight lands in the buffer (and is
    discarded with it) instead of surviving as a stray ingest.
    """

    expected_bytes: int | None = None

    @classmethod
    def from_payload(cls, payload: Mapping) -> "AbortHandover":
        return cls(expected_bytes=_opt_int(payload.get("expected_bytes")))


@dataclass(frozen=True)
class AbortHandoverReply(Message):
    """Staging is disarmed; ``discarded`` staged frames were dropped."""

    discarded: int = 0

    @classmethod
    def from_payload(cls, payload: Mapping) -> "AbortHandoverReply":
        return cls(discarded=int(payload.get("discarded", 0)))


@dataclass(frozen=True)
class ReapFinished(Message):
    """Release the sessions of finished, fully evaluated jobs on a shard.

    The sharded mirror of :meth:`~repro.service.service.PredictionService.
    reap_finished` — without it a long-running sharded deployment can mark
    jobs finished but never free their sessions, so resident load (and the
    autoscaler's sessions-per-shard signal) only ever grows.
    """

    forget_predictions: bool = False

    @classmethod
    def from_payload(cls, payload: Mapping) -> "ReapFinished":
        return cls(forget_predictions=bool(payload.get("forget_predictions", False)))


@dataclass(frozen=True)
class ReapFinishedReply(Message):
    """The job identifiers this shard reaped."""

    jobs: tuple = ()

    @classmethod
    def from_payload(cls, payload: Mapping) -> "ReapFinishedReply":
        return cls(jobs=tuple(str(job) for job in payload.get("jobs", ())))


@dataclass(frozen=True)
class Close(Message):
    """End the conversation (and, on a shard pipe, shut the shard down)."""

    @classmethod
    def from_payload(cls, payload: Mapping) -> "Close":
        return cls()


@dataclass(frozen=True)
class CloseReply(Message):
    """Acknowledged; the peer is about to go away."""

    closed: bool = True

    @classmethod
    def from_payload(cls, payload: Mapping) -> "CloseReply":
        return cls(closed=bool(payload.get("closed", True)))


# --------------------------------------------------------------------- #
# multi-host federation (appended codes, still protocol version 2)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class RegisterShard(Message):
    """A dial-home shard worker introduces itself after the Hello handshake.

    Sent by ``repro-shard`` (:mod:`repro.shard`) on its control connection,
    immediately after :class:`Hello`/:class:`HelloReply`.  Carries the
    worker's identity and capabilities so the router's shard registry can
    place a proportional hash-ring arc on it (``weight``) and label its
    liveness metrics (``name``/``host``/``pid``).
    """

    name: str = ""
    host: str = ""
    pid: int = 0
    cpu_count: int = 0
    weight: float = 1.0

    @classmethod
    def from_payload(cls, payload: Mapping) -> "RegisterShard":
        weight = float(payload.get("weight", 1.0))
        if weight <= 0:
            raise ProtocolError("shard weight must be > 0")
        return cls(
            name=str(payload.get("name", "")),
            host=str(payload.get("host", "")),
            pid=int(payload.get("pid", 0)),
            cpu_count=int(payload.get("cpu_count", 0)),
            weight=weight,
        )


@dataclass(frozen=True)
class RegisterShardReply(Message):
    """The router adopted the worker as shard ``shard``.

    ``config`` is the engine's :class:`~repro.service.service.ServiceConfig`
    in wire form (:func:`~repro.service.transport.config_to_wire`) so the
    remote worker builds exactly the same sessions the local forks do.
    ``data_key`` is an opaque one-time key the worker must echo in an
    :class:`AttachChannel` on each of its data-plane and read-plane
    connections, pairing them to this control connection.
    """

    shard: int = 0
    config: dict = field(default_factory=dict)
    data_key: str = ""

    @classmethod
    def from_payload(cls, payload: Mapping) -> "RegisterShardReply":
        return cls(
            shard=int(payload["shard"]),
            config=_require_dict(payload.get("config", {}), "config"),
            data_key=str(payload.get("data_key", "")),
        )


@dataclass(frozen=True)
class AttachChannel(Message):
    """First envelope on a worker's secondary connection: pair it by key.

    ``channel`` names the plane this connection will carry: ``"data"``
    (framed FTS1 flush bytes, the remote stand-in for the local socketpair)
    or ``"read"`` (Stats/MetricsReport/Subscribe served without touching the
    router's control plane).
    """

    key: str = ""
    channel: str = "data"

    @classmethod
    def from_payload(cls, payload: Mapping) -> "AttachChannel":
        channel = str(payload.get("channel", "data"))
        if channel not in ("data", "read"):
            raise ProtocolError(f"unknown channel kind {channel!r}")
        return cls(key=str(payload.get("key", "")), channel=channel)


@dataclass(frozen=True)
class Heartbeat(Message):
    """Liveness probe; generalizes waitpid kill detection to remote shards.

    ``sent_at`` is the sender's monotonic clock — echoed verbatim in
    :class:`HeartbeatReply` so the sender computes the round trip without
    any cross-host clock agreement.
    """

    seq: int = 0
    sent_at: float = 0.0

    @classmethod
    def from_payload(cls, payload: Mapping) -> "Heartbeat":
        return cls(seq=int(payload.get("seq", 0)), sent_at=float(payload.get("sent_at", 0.0)))


@dataclass(frozen=True)
class HeartbeatReply(Message):
    """Echo of a :class:`Heartbeat` (same ``seq``, same ``sent_at``)."""

    seq: int = 0
    sent_at: float = 0.0

    @classmethod
    def from_payload(cls, payload: Mapping) -> "HeartbeatReply":
        return cls(seq=int(payload.get("seq", 0)), sent_at=float(payload.get("sent_at", 0.0)))


# --------------------------------------------------------------------- #
# registry and codec
# --------------------------------------------------------------------- #
#: Stable wire codes; append-only — codes are part of the wire format.
MESSAGE_TYPES: dict[int, type[Message]] = {
    1: Hello,
    2: HelloReply,
    3: Error,
    4: SubmitFrames,
    5: SubmitReply,
    6: Pump,
    7: PumpReply,
    8: Drain,
    9: DrainReply,
    10: Stats,
    11: StatsReply,
    12: Snapshot,
    13: SnapshotReply,
    14: Restore,
    15: RestoreReply,
    16: Subscribe,
    17: SubscribeReply,
    18: PredictionEvent,
    19: FinishJob,
    20: FinishJobReply,
    21: Close,
    22: CloseReply,
    # --- protocol version 2 ------------------------------------------- #
    23: SnapshotChunk,
    24: ResizeShards,
    25: ResizeShardsReply,
    26: ExtractJobs,
    27: ExtractJobsReply,
    28: MetricsReport,
    29: BeginHandover,
    30: BeginHandoverReply,
    31: CompleteHandover,
    32: CompleteHandoverReply,
    33: AbortHandover,
    34: AbortHandoverReply,
    35: ReapFinished,
    36: ReapFinishedReply,
    # --- multi-host federation ----------------------------------------- #
    37: RegisterShard,
    38: RegisterShardReply,
    39: AttachChannel,
    40: Heartbeat,
    41: HeartbeatReply,
}
_TYPE_CODES: dict[type[Message], int] = {cls: code for code, cls in MESSAGE_TYPES.items()}


def negotiate_version(offered: Iterable[int]) -> int | None:
    """Highest offered version this implementation speaks, or ``None``."""
    common = set(int(v) for v in offered) & set(SUPPORTED_VERSIONS)
    return max(common) if common else None


def encode_message(message: Message) -> bytes:
    """Encode one message as a length-prefixed envelope."""
    try:
        code = _TYPE_CODES[type(message)]
    except KeyError:
        raise ProtocolError(f"{type(message).__name__} is not a registered message type") from None
    body = packb(message.to_payload())
    if len(body) > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"message body of {len(body)} bytes exceeds the protocol limit")
    return _ENVELOPE.pack(PROTOCOL_MAGIC, code, len(body)) + body


def decode_message(data: bytes) -> Message:
    """Decode exactly one enveloped message (trailing bytes are an error)."""
    decoder = MessageDecoder()
    decoder.feed(data)
    messages = list(decoder.messages())
    if not messages or decoder.buffered_bytes:
        raise ProtocolError(
            f"expected exactly one complete message in {len(data)} bytes, got "
            f"{len(messages)} plus {decoder.buffered_bytes} trailing"
        )
    if len(messages) > 1:
        raise ProtocolError(f"expected exactly one message, got {len(messages)}")
    return messages[0]


def iter_state_chunks(
    state: Mapping | bytes,
    *,
    kind: str,
    max_chunk: int = DEFAULT_CHUNK_BYTES,
) -> Iterator[SnapshotChunk]:
    """Slice one snapshot state into an ordered :class:`SnapshotChunk` run.

    ``state`` is either the state map itself or its already msgpack-encoded
    bytes (the callers that must decide *whether* to chunk encode once and
    pass the bytes).  Yields at least one chunk; the final one has
    ``last=True``.
    """
    if kind not in CHUNK_KINDS:
        raise ProtocolError(f"unknown snapshot-chunk kind {kind!r}")
    if not isinstance(state, (bytes, bytearray)):
        state = packb(dict(state))
    payload = bytes(state)
    max_chunk = max(1, min(int(max_chunk), MAX_CHUNK_BYTES))
    total = len(payload)
    seq = 0
    offset = 0
    while True:
        piece = payload[offset : offset + max_chunk]
        offset += len(piece)
        yield SnapshotChunk(kind=kind, seq=seq, data=piece, last=offset >= total)
        if offset >= total:
            return
        seq += 1


class ChunkAssembler:
    """Reassemble one :class:`SnapshotChunk` run back into a state map.

    Feed chunks in arrival order; :meth:`feed` returns ``None`` until the
    ``last`` chunk lands, then the decoded state dict.  Out-of-order
    sequence numbers, a kind change mid-transfer, or an undecodable body all
    raise :class:`~repro.exceptions.ProtocolError` — a receiver can reject
    the peer instead of applying a torn state.
    """

    def __init__(self, *, expected_kind: str | None = None) -> None:
        self._expected_kind = expected_kind
        self._kind: str | None = None
        self._next_seq = 0
        self._parts: list[bytes] = []

    @property
    def receiving(self) -> bool:
        """Whether a transfer is in progress (chunks fed, no ``last`` yet)."""
        return bool(self._parts)

    @property
    def kind(self) -> str | None:
        """Kind of the in-progress transfer (``None`` between transfers)."""
        return self._kind

    def feed(self, chunk: SnapshotChunk) -> dict | None:
        """Accept the next chunk; returns the decoded state when complete."""
        if self._expected_kind is not None and chunk.kind != self._expected_kind:
            raise ProtocolError(
                f"expected {self._expected_kind!r} snapshot chunks, got {chunk.kind!r}"
            )
        if self._kind is None:
            self._kind = chunk.kind
        elif chunk.kind != self._kind:
            raise ProtocolError(
                f"snapshot-chunk kind changed mid-transfer ({self._kind!r} -> {chunk.kind!r})"
            )
        if chunk.seq != self._next_seq:
            raise ProtocolError(
                f"snapshot chunk out of order: expected seq {self._next_seq}, got {chunk.seq}"
            )
        self._next_seq += 1
        self._parts.append(chunk.data)
        if not chunk.last:
            return None
        payload = b"".join(self._parts)
        self._kind = None
        self._next_seq = 0
        self._parts = []
        try:
            state = unpackb(payload)
        except Exception as exc:
            raise ProtocolError(f"undecodable chunked snapshot state: {exc}") from exc
        if not isinstance(state, dict):
            raise ProtocolError(
                f"chunked snapshot state must be a map, got {type(state).__name__}"
            )
        return state


class MessageDecoder:
    """Incremental envelope decoder: ``feed()`` bytes in, iterate messages out.

    Bytes of an incomplete trailing message stay buffered until more data
    arrives; corrupt input (bad magic, unknown type code, oversized or
    undecodable body) raises :class:`~repro.exceptions.ProtocolError` without
    consuming past the fault, so a server can reject the peer cleanly.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def buffered_bytes(self) -> int:
        """Number of bytes waiting for the rest of their message."""
        return len(self._buffer)

    def feed(self, data: bytes) -> None:
        """Append raw bytes received from the stream."""
        self._buffer.extend(data)

    def messages(self) -> Iterator[Message]:
        """Yield (and consume) every complete message currently buffered."""
        while True:
            message = self._try_decode_one()
            if message is None:
                return
            yield message

    def _try_decode_one(self) -> Message | None:
        buffer = self._buffer
        if len(buffer) < _ENVELOPE.size:
            return None
        magic, code, body_len = _ENVELOPE.unpack_from(buffer)
        if magic != PROTOCOL_MAGIC:
            raise ProtocolError(
                f"bad control-message magic {bytes(magic)!r}; the stream is not "
                f"FTC1-enveloped or is corrupt"
            )
        cls = MESSAGE_TYPES.get(code)
        if cls is None:
            raise ProtocolError(f"unknown control-message type code {code}")
        if body_len > MAX_MESSAGE_BYTES:
            raise ProtocolError(f"control-message body length {body_len} exceeds the limit")
        total = _ENVELOPE.size + body_len
        if len(buffer) < total:
            return None
        body = bytes(buffer[_ENVELOPE.size : total])
        del buffer[:total]
        try:
            payload = unpackb(body)
        except Exception as exc:
            raise ProtocolError(f"undecodable {cls.__name__} body: {exc}") from exc
        if not isinstance(payload, dict):
            raise ProtocolError(
                f"{cls.__name__} body must be a map, got {type(payload).__name__}"
            )
        try:
            return cls.from_payload(payload)
        except ProtocolError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed {cls.__name__} payload: {exc}") from exc
