"""Live FTIO-driven period knowledge for the Set-10 scheduler.

:class:`ServicePeriodProvider` closes the paper's Figure 17 loop end to end:
the cluster simulator's completed I/O phases are streamed into the prediction
service (see :mod:`repro.service.bridge`), the service publishes per-job
period predictions, and this provider hands them to
:class:`~repro.scheduling.set10.Set10Scheduler` — the scheduler is driven by
*live* FTIO output instead of pre-baked periods.

Before the service has produced a first prediction for a job, the provider
falls back to the mean gap between the job's observed phase starts (the same
bootstrap the in-process :class:`~repro.scheduling.periods.FtioPeriods`
provider uses), so freshly started jobs are scheduled sensibly instead of
being starved in the unknown set.
"""

from __future__ import annotations

from repro.cluster.job import JobState, PhaseRecord
from repro.scheduling.periods import PeriodProvider


class ServicePeriodProvider(PeriodProvider):
    """Period estimates served by a running :class:`PredictionService`.

    Parameters
    ----------
    service:
        The prediction service publishing per-job predictions.
    bootstrap:
        Use the mean phase-start gap while no prediction exists yet.
    """

    def __init__(self, service, *, bootstrap: bool = True) -> None:
        self._service = service
        self._bootstrap = bootstrap
        self._phase_starts: dict[str, list[float]] = {}

    def period_of(self, job_name: str) -> float | None:
        period = self._service.publisher.latest_period(job_name)
        if period is not None:
            return period
        if not self._bootstrap:
            return None
        starts = self._phase_starts.get(job_name)
        if starts is None or len(starts) < 2:
            return None
        gaps = [b - a for a, b in zip(starts, starts[1:])]
        return sum(gaps) / len(gaps)

    def observe_phase(self, job: JobState, record: PhaseRecord, time: float) -> None:
        # The scheduler forwards every completed phase; the provider only
        # keeps the start times for the bootstrap estimate — the actual
        # prediction data flows through the service's flush bridge.
        self._phase_starts.setdefault(job.name, []).append(record.start)
