"""Prediction publisher: per-job latest predictions plus a subscription API.

Every completed evaluation is condensed into a :class:`PredictionUpdate` and
published: the latest update per job is kept for pull-style consumers (the
scheduler's period provider polls it on every allocation decision), and
push-style subscribers — dashboards, loggers, downstream controllers — are
notified synchronously with each update.  Subscribers may filter by job.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.core.online import PredictionStep

#: Subscriber callback signature.
Subscriber = Callable[["PredictionUpdate"], None]


@dataclass(frozen=True)
class PredictionUpdate:
    """One published prediction for one job.

    Attributes
    ----------
    job:
        Job identifier the prediction belongs to.
    index:
        Sequence number of the evaluation within the job's session.
    time:
        Trace time at which the evaluation was triggered.
    frequency, period:
        Dominant frequency [Hz] / period [s], or ``None`` when the evaluation
        found no periodicity.
    confidence:
        Confidence of the evaluation (0 when nothing was found).
    latency:
        Wall-clock seconds the evaluation took (detection latency).
    """

    job: str
    index: int
    time: float
    frequency: float | None
    period: float | None
    confidence: float
    latency: float | None = None

    def to_dict(self) -> dict:
        """Serialize for a control channel (the shard→router update stream)."""
        return {
            "job": self.job,
            "index": self.index,
            "time": self.time,
            "frequency": self.frequency,
            "period": self.period,
            "confidence": self.confidence,
            "latency": self.latency,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PredictionUpdate":
        """Reconstruct an update from :meth:`to_dict` output."""
        return cls(
            job=str(data["job"]),
            index=int(data["index"]),
            time=float(data["time"]),
            frequency=data["frequency"],
            period=data["period"],
            confidence=float(data["confidence"]),
            latency=data.get("latency"),
        )


class PredictionPublisher:
    """Stores the latest prediction per job and fans updates out to subscribers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._latest: dict[str, PredictionUpdate] = {}
        self._latest_period: dict[str, float] = {}
        self._subscribers: dict[int, tuple[Subscriber, frozenset[str] | None]] = {}
        self._next_subscription = 0
        self._published = 0

    # ------------------------------------------------------------------ #
    @property
    def published(self) -> int:
        """Total number of updates published."""
        with self._lock:
            return self._published

    def subscribe(self, callback: Subscriber, *, jobs: Iterable[str] | None = None) -> int:
        """Register a callback for every update (optionally only some jobs).

        Returns a subscription id for :meth:`unsubscribe`.  Callbacks run
        synchronously on the publishing (worker) thread and must be quick.
        """
        with self._lock:
            subscription = self._next_subscription
            self._next_subscription += 1
            job_filter = frozenset(jobs) if jobs is not None else None
            self._subscribers[subscription] = (callback, job_filter)
            return subscription

    def unsubscribe(self, subscription: int) -> None:
        """Remove a subscription; unknown ids are ignored."""
        with self._lock:
            self._subscribers.pop(subscription, None)

    # ------------------------------------------------------------------ #
    def publish_step(
        self, job: str, step: PredictionStep, *, latency: float | None = None
    ) -> PredictionUpdate:
        """Condense a prediction step into an update and publish it."""
        update = PredictionUpdate(
            job=job,
            index=step.index,
            time=step.time,
            frequency=step.dominant_frequency,
            period=step.period,
            confidence=step.confidence,
            latency=latency,
        )
        self.publish(update)
        return update

    def publish(self, update: PredictionUpdate) -> None:
        """Publish one update: store it and notify the matching subscribers."""
        with self._lock:
            self._latest[update.job] = update
            if update.period is not None:
                self._latest_period[update.job] = update.period
            self._published += 1
            subscribers = [
                callback
                for callback, job_filter in self._subscribers.values()
                if job_filter is None or update.job in job_filter
            ]
        for callback in subscribers:
            callback(update)

    # ------------------------------------------------------------------ #
    def latest(self, job: str) -> PredictionUpdate | None:
        """Latest update of ``job``, or ``None``."""
        with self._lock:
            return self._latest.get(job)

    def latest_period(self, job: str) -> float | None:
        """Most recent successfully predicted period of ``job``, or ``None``.

        Unlike :meth:`latest`, this survives evaluations that found nothing:
        the scheduler keeps using the last known period until a new one lands.
        """
        with self._lock:
            return self._latest_period.get(job)

    def forget(self, job: str) -> None:
        """Drop the stored predictions of ``job`` (after the job was reaped)."""
        with self._lock:
            self._latest.pop(job, None)
            self._latest_period.pop(job, None)

    def snapshot(self) -> dict[str, PredictionUpdate]:
        """Latest update of every job (a copy)."""
        with self._lock:
            return dict(self._latest)

    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        """Serializable snapshot (crash recovery)."""
        with self._lock:
            return {
                "latest": {
                    job: {
                        "index": u.index,
                        "time": u.time,
                        "frequency": u.frequency,
                        "period": u.period,
                        "confidence": u.confidence,
                    }
                    for job, u in self._latest.items()
                },
                "latest_period": dict(self._latest_period),
            }

    def load_state_dict(self, state: dict) -> None:
        """Restore published predictions from a :meth:`state_dict` snapshot."""
        with self._lock:
            self._latest = self._decode_latest(state)
            self._latest_period = {
                job: float(period) for job, period in state["latest_period"].items()
            }

    def merge_state_dict(self, state: dict) -> None:
        """Merge a snapshot into the current state without dropping other jobs.

        The sharded router uses this when a single revived shard is restored:
        only that shard's jobs roll back to the snapshot, every other job's
        live prediction stays.
        """
        with self._lock:
            self._latest.update(self._decode_latest(state))
            self._latest_period.update(
                {job: float(period) for job, period in state["latest_period"].items()}
            )

    @staticmethod
    def _decode_latest(state: dict) -> dict[str, PredictionUpdate]:
        return {
            job: PredictionUpdate(
                job=job,
                index=int(entry["index"]),
                time=float(entry["time"]),
                frequency=entry["frequency"],
                period=entry["period"],
                confidence=float(entry["confidence"]),
            )
            for job, entry in state["latest"].items()
        }
