"""The streaming prediction service facade.

:class:`PredictionService` wires the subsystem together: the
:class:`~repro.service.broker.FlushBroker` demultiplexes incoming flushes
into bounded-memory per-job sessions, the
:class:`~repro.service.dispatcher.DetectionDispatcher` batches due
evaluations onto a worker pool, and every completed evaluation is pushed to
the :class:`~repro.service.publisher.PredictionPublisher`, where schedulers
and subscribers consume it.  One service instance serves any number of
concurrent jobs::

    service = PredictionService(ServiceConfig(session=SessionConfig(...)))
    service.feed_bytes(framed_bytes)          # or ingest_flush / tail_file
    service.pump(wait_for_batch=True)         # evaluate whatever is due
    service.publisher.latest_period("job-7")  # -> predicted period [s]

Snapshot/restore for crash recovery lives in :mod:`repro.service.snapshot`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs import MetricRegistry, SpanJournal
from repro.trace.framing import FlushFrame, FrameReader, compact_spool
from repro.trace.jsonl import FlushRecord

from repro.service.autoscaler import AutoscaleConfig
from repro.service.backend import DetectionBackend, make_backend
from repro.service.broker import FlushBroker
from repro.service.dispatcher import DetectionDispatcher, DispatcherStats
from repro.service.provider import ServicePeriodProvider
from repro.service.publisher import PredictionPublisher
from repro.service.session import JobSession, SessionConfig


@dataclass(frozen=True)
class ServiceConfig:
    """Configuration of a :class:`PredictionService`.

    Attributes
    ----------
    session:
        Per-job session configuration (analysis config, memory cap, rate
        limit).
    max_workers:
        Size of the detection worker pool; 0 evaluates inline during
        :meth:`PredictionService.pump` (deterministic, single-threaded).
    max_pending:
        Backpressure bound: maximum evaluations in flight at once.
    latency_window:
        Number of recent detection latencies retained for the percentile
        statistics (bounded, so stats cost O(1) memory on long runs).
    backend:
        Detection backend name: ``"thread"`` evaluates in the dispatcher's
        threads, ``"process"`` fans CPU-bound evaluations onto a
        ``ProcessPoolExecutor`` (see :mod:`repro.service.backend`).
    backend_workers:
        Worker count of a process backend (``None`` = CPU-count default).
    batching:
        Evaluate the due sessions of one pump as a single batch with shared
        vectorized spectral kernels (see :mod:`repro.service.batch`);
        bit-identical to sequential evaluation, substantially faster with
        many concurrent jobs.  Disable to force one evaluation per pool task.
    ring_bytes:
        Sharded deployments only: capacity of the shared-memory ring carrying
        frames from the router to each shard (see
        :mod:`repro.service.shm_ring`).  ``0`` moves frame bytes over the
        socketpair instead (the legacy two-copy data plane).
    token:
        Wire-level tenant/auth nibble (0..15).  When set, every ingested FTS1
        frame must carry it and every control-plane peer must present it in
        its :class:`~repro.service.protocol.Hello`.
    auto_compact:
        Compact every tailed spool after a successful snapshot, dropping the
        prefix the snapshot already covers (see
        :meth:`PredictionService.compact_spools`).
    auto_revive:
        Sharded deployments only: :meth:`~repro.service.sharding.
        ShardedService.pump` transparently revives a crashed shard from the
        last snapshot instead of raising ``ShardCrashedError``.
    revive_budget:
        Maximum number of automatic revives before crashes surface again.
    metrics:
        Keep the metric registry on (counters, latency/kernel histograms,
        Prometheus exposition via the gateway's ops listener).  On by
        default — the hot-path cost is bounded by the ``obs.overhead``
        benchmark floor (< 5%); disable only to shave the last percent off a
        closed-box deployment.
    spans:
        Record frame-lifecycle spans into a bounded ring-buffer journal
        (see :mod:`repro.obs.spans`).  **Off by default**; tracing is an
        explicit opt-in.
    span_capacity:
        Ring capacity of the span journal (spans retained).
    ops_port:
        Gateway deployments only: when not ``None``, the gateway serves a
        plaintext HTTP ops surface on this port — ``/healthz``, ``/status``
        (merged stats/metrics JSON) and ``/metrics`` (Prometheus text
        exposition).  ``0`` picks a free port.
    autoscale:
        Sharded gateway deployments only: when set, the gateway runs an
        :class:`~repro.service.autoscaler.Autoscaler` supervision thread
        that watches the service's own stats (sessions, queue depth, p99
        detection latency) and drives ``reshard()`` / ``revive_shard()``
        with hysteresis, a cooldown and min/max shard clamps.  ``None``
        (the default) keeps the topology fixed.
    shard_port:
        Sharded deployments only: when not ``None``, the router listens on
        this TCP port (``0`` picks a free one) for dial-home ``repro-shard``
        workers (:mod:`repro.shard`), so shard slots placed ``"remote"`` can
        live on other machines.  ``None`` (the default) keeps every shard a
        local fork.
    heartbeat_timeout:
        Sharded deployments only: seconds a shard may take to answer a
        read-plane :class:`~repro.service.protocol.Heartbeat` before
        :meth:`~repro.service.sharding.ShardedService.heartbeat` declares it
        dead — the connection-loss/timeout generalization of the local
        waitpid liveness check.
    """

    session: SessionConfig = field(default_factory=SessionConfig)
    max_workers: int = 0
    max_pending: int = 64
    latency_window: int = 4096
    backend: str = "thread"
    backend_workers: int | None = None
    batching: bool = True
    ring_bytes: int = 1 << 20
    token: int | None = None
    auto_compact: bool = False
    auto_revive: bool = False
    revive_budget: int = 3
    metrics: bool = True
    spans: bool = False
    span_capacity: int = 2048
    ops_port: int | None = None
    autoscale: "AutoscaleConfig | None" = None
    shard_port: int | None = None
    heartbeat_timeout: float = 5.0


def tail_positions(tails: dict[Path, FrameReader]) -> dict[str, dict]:
    """Rotation-proof resume point of every tailed spool, keyed by path."""
    return {str(path): reader.position for path, reader in tails.items()}


def compact_tails(tails: dict[Path, FrameReader]) -> dict[str, int]:
    """Compact every tailed spool up to its reader's consumed position.

    Shared by the single-process and sharded engines so the compaction
    protocol (live-generation guard, reader rebase) can never diverge
    between them.  Returns the bytes removed per spool path.
    """
    removed: dict[str, int] = {}
    for path, reader in tails.items():
        position = reader.position
        up_to = int(position["offset"])
        if up_to <= 0 or not path.exists():
            continue
        if position["inode"] != os.stat(path).st_ino:
            continue
        dropped = compact_spool(path, up_to=up_to)
        if dropped:
            reader.rebase(dropped)
            removed[str(path)] = dropped
    return removed


class PredictionService:
    """Multi-job streaming prediction service (broker + dispatcher + publisher).

    ``backend`` overrides the config-built detection backend with a live
    instance (the dispatcher takes ownership and closes it).
    """

    def __init__(
        self, config: ServiceConfig | None = None, *, backend: DetectionBackend | None = None
    ) -> None:
        self.config = config or ServiceConfig()
        if backend is None:
            backend = make_backend(self.config.backend, workers=self.config.backend_workers)
        self.metrics = MetricRegistry() if self.config.metrics else None
        self.journal = (
            SpanJournal(self.config.span_capacity) if self.config.spans else None
        )
        self.publisher = PredictionPublisher()
        self.broker = FlushBroker(
            session_config=self.config.session,
            expected_token=self.config.token,
            journal=self.journal,
        )
        self._tails: dict[Path, FrameReader] = {}
        self.dispatcher = DetectionDispatcher(
            self.broker,
            sink=self._on_detection,
            max_workers=self.config.max_workers,
            max_pending=self.config.max_pending,
            latency_window=self.config.latency_window,
            backend=backend,
            batching=self.config.batching,
            metrics=self.metrics,
            journal=self.journal,
        )
        if self.metrics is not None:
            self.broker.register_metrics(self.metrics)
            self.metrics.register_view(
                "repro_published_total", "counter", lambda: self.publisher.published,
                help="Prediction updates published",
            )
            self.metrics.register_view(
                "repro_resident_samples", "gauge",
                lambda: sum(s.resident_samples for s in self.broker.sessions()),
                help="Samples resident across all session windows",
            )

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def ingest_flush(self, job: str, flush: FlushRecord) -> JobSession:
        """Ingest one flush record for ``job``."""
        return self.broker.ingest(job, flush)

    def ingest_frame(self, frame: FlushFrame) -> JobSession:
        """Ingest one decoded flush frame."""
        return self.broker.ingest_frame(frame)

    def feed_bytes(self, data: bytes) -> int:
        """Feed raw framed bytes (e.g. socket reads); returns frames routed."""
        return self.broker.feed_bytes(data)

    def feed_borrowed(self, data: memoryview) -> int:
        """Feed framed bytes from a borrowed buffer (shared-memory ring views).

        The buffer may be reclaimed as soon as this returns; see
        :meth:`~repro.service.broker.FlushBroker.feed_borrowed`.
        """
        return self.broker.feed_borrowed(data)

    def tail_file(self, path: str | Path, *, offset: int = 0) -> FrameReader:
        """Tail a framed spool file; each ``poll()`` ingests the new frames.

        The reader is remembered so snapshot-driven spool compaction
        (:meth:`compact_spools`, ``ServiceConfig.auto_compact``) knows how far
        each spool has been consumed.
        """
        reader = self.broker.tail(path, offset=offset)
        self._tails[Path(path)] = reader
        return reader

    def spool_positions(self) -> dict[str, dict]:
        """Rotation-proof resume point of every tailed spool (by path)."""
        return tail_positions(self._tails)

    def compact_spools(self) -> dict[str, int]:
        """Compact every tailed spool up to its reader's consumed position.

        Only the live generation the reader is actually positioned in is
        compacted (a reader still catching up on a rotated-away generation is
        left alone), and the reader is rebased so tailing continues
        seamlessly.  Returns the bytes removed per spool path.
        """
        return compact_tails(self._tails)

    def finish_job(self, job: str) -> None:
        """Mark a job finished: pending data is still evaluated, then idle.

        The session itself stays resident (so late subscribers can still read
        its state) until :meth:`reap_finished` releases it.
        """
        self.broker.session(job).mark_finished()

    def reap_finished(self, *, forget_predictions: bool = False) -> tuple[str, ...]:
        """Release the sessions of finished, fully evaluated jobs.

        Call after :meth:`drain` (or between pumps) on long-running services:
        without reaping, memory grows with the total number of jobs ever
        seen, not with the live ones.  With ``forget_predictions=True`` the
        publisher's last prediction of each reaped job is dropped as well;
        by default it is kept so consumers can still query recently finished
        jobs.  Returns the reaped job identifiers.
        """
        reaped: list[str] = []
        for session in self.broker.sessions():
            if session.finished and not session.due():
                if self.broker.remove(session.job) is not None:
                    reaped.append(session.job)
                    if forget_predictions:
                        self.publisher.forget(session.job)
        return tuple(reaped)

    # ------------------------------------------------------------------ #
    # evaluation and results
    # ------------------------------------------------------------------ #
    def pump(self, *, wait_for_batch: bool = False) -> int:
        """Evaluate every due session (see the dispatcher); returns submissions."""
        return self.dispatcher.pump(wait_for_batch=wait_for_batch)

    def drain(self) -> None:
        """Pump until nothing is due and nothing is in flight."""
        while True:
            submitted = self.pump(wait_for_batch=True)
            self.dispatcher.join()
            if submitted == 0 and not self.broker.due_sessions():
                return

    def close(self) -> None:
        """Finish in-flight evaluations and release the worker pool."""
        self.dispatcher.close()

    def period_provider(self, *, bootstrap: bool = True) -> ServicePeriodProvider:
        """A Set-10 :class:`PeriodProvider` backed by this service's publisher."""
        return ServicePeriodProvider(self, bootstrap=bootstrap)

    # ------------------------------------------------------------------ #
    # snapshot / restore
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> dict:
        """Capture the full service state (see :mod:`repro.service.snapshot`).

        With ``ServiceConfig.auto_compact`` set, every tailed spool is
        compacted up to the position this snapshot covers right after the
        capture — the snapshot plus the remaining spool tail is always a
        complete recovery recipe, and spools stop growing without bound.
        """
        from repro.service.snapshot import snapshot_state

        state = snapshot_state(self)
        if self.config.auto_compact:
            self.compact_spools()
        return state

    def restore_state(self, state: dict) -> "PredictionService":
        """Load a snapshot's sessions and publisher into this running service."""
        from repro.service.snapshot import apply_state

        return apply_state(self, state)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def jobs(self) -> tuple[str, ...]:
        """Identifiers of every job seen so far."""
        return self.broker.jobs

    def session(self, job: str) -> JobSession:
        """The session of ``job`` (created on demand)."""
        return self.broker.session(job)

    @property
    def dispatcher_stats(self) -> DispatcherStats:
        """Dispatch counters (submitted / completed / deferred / failures)."""
        return self.dispatcher.stats

    def stats(self) -> dict:
        """One JSON-friendly dict of service-wide counters.

        The key set is part of the service's observability contract: it is
        identical for single-process and sharded deployments (modulo the
        sharding-only keys) and pinned by ``tests/service/test_stats_schema``
        so dashboards and autoscalers can rely on it.
        """
        broker = self.broker.stats
        dispatch = self.dispatcher.stats
        sessions = self.broker.sessions()
        copies = self.broker.copy_stats
        return {
            "jobs": broker.jobs,
            "frames": broker.frames,
            "flushes": broker.flushes,
            "requests": broker.requests,
            "bytes_copied_per_frame": copies["bytes_copied_per_frame"],
            "resident_samples": sum(s.resident_samples for s in sessions),
            "evicted_samples": sum(s.evicted_samples for s in sessions),
            "detections": dispatch.completed,
            "deferred": dispatch.deferred,
            "failures": dispatch.failures,
            "pending_evaluations": dispatch.pending,
            "published": self.publisher.published,
            "p50_detection_latency_seconds": self.dispatcher.latency_percentile(50),
            "p99_detection_latency_seconds": self.dispatcher.latency_percentile(99),
        }

    def metrics_snapshot(self) -> dict:
        """Plain-type snapshot of the metric registry (empty when disabled).

        The tree is msgpack/JSON-safe: shards ship it to the router inside a
        :class:`~repro.service.protocol.MetricsReport` and the gateway's
        ``/metrics`` endpoint renders the merged result (see
        :func:`repro.obs.merge_snapshots`).
        """
        if self.metrics is None:
            return {}
        return self.metrics.collect()

    def spans_snapshot(self) -> list[dict]:
        """Recent frame-lifecycle spans (empty unless ``ServiceConfig.spans``)."""
        if self.journal is None:
            return []
        return self.journal.snapshot()

    # ------------------------------------------------------------------ #
    def _on_detection(self, session: JobSession, step, latency: float) -> None:
        if step is not None:
            if self.journal is not None:
                with self.journal.span("publish", job=session.job):
                    self.publisher.publish_step(session.job, step, latency=latency)
            else:
                self.publisher.publish_step(session.job, step, latency=latency)
