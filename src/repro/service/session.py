"""Per-job prediction sessions with bounded memory.

A session owns everything the service knows about one job: a ring-buffered
columnar copy of the requests still relevant to the next prediction, the
job's :class:`~repro.core.online.OnlinePredictor`, merged metadata, and the
bookkeeping the dispatcher uses for rate limiting.  The buffer is the key to
multi-tenant scale — memory per job is O(analysis window), not O(runtime):

* after every evaluation the predictor exposes the timestamp before which no
  future evaluation will look (:meth:`OnlinePredictor.evictable_before`), and
  the session drops every request that completed before it (minus a safety
  margin of a few periods, so a temporarily larger period estimate can still
  widen the window);
* a hard ``max_samples`` cap bounds the buffer even while the adaptive window
  has not converged yet (the oldest requests are dropped first).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np
from numpy.typing import NDArray

from typing import Callable

from repro.core.config import FtioConfig
from repro.core.ftio import SpectralKernels
from repro.core.online import OnlinePredictor, PredictionStep, PreparedStep, RestoredResult
from repro.trace.jsonl import FlushRecord
from repro.trace.trace import Trace
from repro.utils.validation import check_non_negative, check_positive_int

#: Fixed dtype of the kind column ("write"/"read" fit comfortably).
_KIND_DTYPE = "<U8"


@dataclass(frozen=True)
class DetectionTask:
    """Everything a detection engine needs to evaluate one session remotely.

    The task is a pure value (picklable: config, predictor state dict, a
    columnar trace, the trigger time), so an engine may run it in another
    process — the process-pool backend does exactly that.
    """

    job: str
    config: FtioConfig
    adaptive_window: bool
    predictor_state: dict
    trace: Trace
    now: float


@dataclass(frozen=True)
class DetectionOutcome:
    """Result of running a :class:`DetectionTask`: new predictor state + step.

    ``step`` carries the compact fields of the evaluation
    (index/time/window/frequency/period/confidence) — the same shape the
    predictor's own compact history keeps.
    """

    predictor_state: dict
    step: dict


#: A detection engine evaluates one task and returns the outcome; the default
#: engine runs inline, the process-pool backend ships the task to a worker.
DetectionEngine = Callable[[DetectionTask], DetectionOutcome]


def step_to_entry(step: PredictionStep) -> dict:
    """Compact, picklable record of one evaluation (inverse of ``_step_from_entry``)."""
    return {
        "index": step.index,
        "time": step.time,
        "window": [step.window[0], step.window[1]],
        "frequency": step.dominant_frequency,
        "period": step.period,
        "confidence": step.confidence,
    }


def _step_from_entry(entry: dict) -> PredictionStep:
    """Rebuild a compact :class:`PredictionStep` from an outcome's step dict."""
    result: RestoredResult | None = None
    if entry["frequency"] is not None or entry["period"] is not None:
        result = RestoredResult(
            dominant_frequency=entry["frequency"],
            period=entry["period"],
            best_confidence=float(entry["confidence"]),
        )
    return PredictionStep(
        index=int(entry["index"]),
        time=float(entry["time"]),
        window=(float(entry["window"][0]), float(entry["window"][1])),
        result=result,
    )


def run_detection_task(task: DetectionTask) -> DetectionOutcome:
    """Evaluate one :class:`DetectionTask` (pure function, process-safe).

    Rebuilds the predictor from the task's state dict, runs one step exactly
    as the in-session predictor would, and returns the updated state — so a
    session whose state is round-tripped through this function transitions
    bit-identically to one that evaluated inline.
    """
    predictor = OnlinePredictor(
        config=task.config, adaptive_window=task.adaptive_window, compact_history=True
    )
    predictor.load_state_dict(task.predictor_state)
    step = predictor.step(task.trace, now=task.now)
    return DetectionOutcome(predictor_state=predictor.state_dict(), step=step_to_entry(step))


@dataclass(frozen=True)
class SessionConfig:
    """Tuning knobs of one job session (shared service-wide by default).

    Attributes
    ----------
    config:
        FTIO analysis configuration used by the session's predictor.
    adaptive_window:
        Enable the online adaptive time window (Section II-D).
    max_samples:
        Hard cap on the number of resident requests per job.
    eviction_margin_periods:
        Extra periods of history retained behind the predictor's evictable
        cutoff, so a growing period estimate can re-widen the window without
        the data having been dropped.
    min_detection_interval:
        Minimum trace-time seconds between two evaluations of the same job
        (per-job rate limiting; 0 evaluates after every flush).
    min_requests:
        Evaluations are skipped while fewer requests are resident.
    """

    config: FtioConfig = field(default_factory=FtioConfig)
    adaptive_window: bool = True
    max_samples: int = 65_536
    eviction_margin_periods: float = 2.0
    min_detection_interval: float = 0.0
    min_requests: int = 1

    def __post_init__(self) -> None:
        check_positive_int(self.max_samples, "max_samples")
        check_non_negative(self.eviction_margin_periods, "eviction_margin_periods")
        check_non_negative(self.min_detection_interval, "min_detection_interval")
        check_positive_int(self.min_requests, "min_requests")


class RingColumnStore:
    """Columnar request buffer with amortized append and front eviction.

    Requests live in preallocated numpy columns sorted by start time; the
    buffer grows geometrically at the tail and evicts at the head, so a
    steady-state session settles at a fixed allocation sized by the analysis
    window.  Appends of already-later chunks (the common streaming case) are
    pure copies; out-of-order chunks fall back to a stable merge.
    """

    def __init__(self, *, initial_capacity: int = 256) -> None:
        check_positive_int(initial_capacity, "initial_capacity")
        self._capacity = int(initial_capacity)
        self._starts = np.empty(self._capacity, dtype=np.float64)
        self._ends = np.empty(self._capacity, dtype=np.float64)
        self._nbytes = np.empty(self._capacity, dtype=np.int64)
        self._ranks = np.empty(self._capacity, dtype=np.int64)
        self._kinds = np.empty(self._capacity, dtype=_KIND_DTYPE)
        self._head = 0
        self._size = 0
        self._evicted = 0

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._size

    @property
    def capacity(self) -> int:
        """Current allocation size (in requests)."""
        return self._capacity

    @property
    def evicted(self) -> int:
        """Total number of requests dropped since the session started."""
        return self._evicted

    def _live(self, column: NDArray) -> NDArray:
        return column[self._head : self._head + self._size]

    # ------------------------------------------------------------------ #
    def append(self, chunk: Trace) -> None:
        """Append the (sorted) requests of ``chunk`` keeping global order."""
        n = len(chunk)
        if n == 0:
            return
        self._reserve(n)
        tail = self._head + self._size
        self._starts[tail : tail + n] = chunk.starts
        self._ends[tail : tail + n] = chunk.ends
        self._nbytes[tail : tail + n] = chunk.nbytes
        self._ranks[tail : tail + n] = chunk.ranks
        self._kinds[tail : tail + n] = chunk.kinds
        out_of_order = self._size > 0 and chunk.starts[0] < self._starts[tail - 1]
        self._size += n
        if out_of_order:
            live = self._live(self._starts)
            order = np.argsort(live, kind="stable")
            for column in (self._starts, self._ends, self._nbytes, self._ranks, self._kinds):
                self._live(column)[:] = self._live(column)[order]

    def _reserve(self, n: int) -> None:
        needed = self._size + n
        if self._head + needed <= self._capacity:
            return
        capacity = self._capacity
        while capacity < needed:
            capacity *= 2
        if capacity == self._capacity:
            # Enough total room: compacting the live region to the front of
            # the existing allocation is all that is needed.
            self._compact(self._starts, self._ends, self._nbytes, self._ranks, self._kinds)
            return
        self._grow(capacity)

    def _grow(self, capacity: int) -> None:
        new_columns = (
            np.empty(capacity, dtype=np.float64),
            np.empty(capacity, dtype=np.float64),
            np.empty(capacity, dtype=np.int64),
            np.empty(capacity, dtype=np.int64),
            np.empty(capacity, dtype=_KIND_DTYPE),
        )
        self._compact(*new_columns)
        self._starts, self._ends, self._nbytes, self._ranks, self._kinds = new_columns
        self._capacity = capacity

    def _compact(self, starts, ends, nbytes, ranks, kinds) -> None:
        n = self._size
        starts[:n] = self._live(self._starts)
        ends[:n] = self._live(self._ends)
        nbytes[:n] = self._live(self._nbytes)
        ranks[:n] = self._live(self._ranks)
        kinds[:n] = self._live(self._kinds)
        self._head = 0

    # ------------------------------------------------------------------ #
    def evict_completed_before(self, cutoff: float) -> int:
        """Drop every request that ended at or before ``cutoff``; returns the count."""
        if self._size == 0:
            return 0
        keep = self._live(self._ends) > cutoff
        dropped = int(self._size - keep.sum())
        if dropped == 0:
            return 0
        # Fast path: with starts sorted, evictable requests are usually a
        # contiguous prefix — then eviction is just a head advance.
        first_keep = int(np.argmax(keep))
        if keep[first_keep:].all():
            self._head += first_keep
            self._size -= first_keep
        else:
            for column in (self._starts, self._ends, self._nbytes, self._ranks, self._kinds):
                live = self._live(column)
                column[self._head : self._head + self._size - dropped] = live[keep]
            self._size -= dropped
        self._evicted += dropped
        return dropped

    def evict_to_cap(self, max_samples: int) -> int:
        """Drop the oldest requests so at most ``max_samples`` stay resident."""
        overflow = self._size - int(max_samples)
        if overflow <= 0:
            return 0
        self._head += overflow
        self._size -= overflow
        self._evicted += overflow
        return overflow

    # ------------------------------------------------------------------ #
    def trace(self, *, metadata: dict | None = None) -> Trace:
        """Materialize the resident requests as an immutable :class:`Trace`.

        The columns are copied: the returned trace stays valid while the
        buffer keeps mutating under subsequent flushes.
        """
        return Trace(
            starts=self._live(self._starts).copy(),
            ends=self._live(self._ends).copy(),
            nbytes=self._live(self._nbytes).copy(),
            ranks=self._live(self._ranks).copy(),
            kinds=self._live(self._kinds).copy(),
            metadata=dict(metadata or {}),
        )


class JobSession:
    """All service state of one job: buffer, predictor, rate-limit bookkeeping.

    Thread safety: ``ingest`` (broker thread) and ``detect`` (worker threads)
    both take the session lock, so one job is always evaluated sequentially
    while different jobs run in parallel.
    """

    def __init__(self, job: str, config: SessionConfig | None = None) -> None:
        self.job = job
        self.config = config or SessionConfig()
        self.predictor = OnlinePredictor(
            config=self.config.config,
            adaptive_window=self.config.adaptive_window,
            # Keep only compact per-evaluation records: full FtioResults hold
            # the spectrum and the signal, which would grow session memory by
            # O(window) per detection.
            compact_history=True,
        )
        self._store = RingColumnStore()
        self._metadata: dict = {}
        self._lock = threading.Lock()
        self._pending_time: float | None = None
        self._last_detection_time: float | None = None
        self._batch_in_flight = False
        self._ingested_flushes = 0
        self._ingested_requests = 0
        self._detections = 0
        self._skipped_detections = 0
        self._finished = False

    # ------------------------------------------------------------------ #
    @property
    def resident_samples(self) -> int:
        """Number of requests currently held in memory for this job."""
        return len(self._store)

    @property
    def evicted_samples(self) -> int:
        """Number of requests evicted so far."""
        return self._store.evicted

    @property
    def ingested_flushes(self) -> int:
        """Number of flushes ingested so far."""
        return self._ingested_flushes

    @property
    def ingested_requests(self) -> int:
        """Number of requests ingested so far."""
        return self._ingested_requests

    @property
    def detections(self) -> int:
        """Number of evaluations performed so far."""
        return self._detections

    @property
    def metadata(self) -> dict:
        """Merged metadata of every flush seen so far."""
        return dict(self._metadata)

    @property
    def finished(self) -> bool:
        """True once the job was marked finished (no further evaluations)."""
        return self._finished

    def mark_finished(self) -> None:
        """Mark the job as finished: pending data is still evaluated, then idle."""
        self._finished = True

    def latest_period(self) -> float | None:
        """Most recent predicted period, or ``None``."""
        return self.predictor.latest_period()

    # ------------------------------------------------------------------ #
    def ingest(self, flush: FlushRecord) -> None:
        """Ingest one flush: append its requests and merge its metadata."""
        with self._lock:
            if flush.metadata:
                self._metadata.update(flush.metadata)
            if flush.requests:
                self._store.append(Trace.from_requests(flush.requests))
                self._store.evict_to_cap(self.config.max_samples)
                self._ingested_requests += len(flush.requests)
            self._ingested_flushes += 1
            pending = self._pending_time
            self._pending_time = (
                float(flush.timestamp) if pending is None else max(pending, float(flush.timestamp))
            )

    def due(self) -> bool:
        """Whether an evaluation should be scheduled for this session."""
        with self._lock:
            # While a batched evaluation is in flight the session must not be
            # scheduled again: the outcome of the running batch has not been
            # applied yet, and a second evaluation would race its state.
            if self._batch_in_flight:
                return False
            if self._pending_time is None:
                return False
            if self._last_detection_time is None:
                return True
            # A finished job bypasses the rate limit: no further flush will
            # ever arrive to carry its last data past the interval.
            if self._finished:
                return True
            return (
                self._pending_time - self._last_detection_time
                >= self.config.min_detection_interval
            )

    def detect(
        self, *, now: float | None = None, engine: DetectionEngine | None = None
    ) -> PredictionStep | None:
        """Run one evaluation over the resident data (or skip when too little).

        ``now`` defaults to the newest ingested flush timestamp.  After the
        evaluation, history older than the predictor's evictable cutoff
        (minus the configured margin) is dropped.

        With ``engine`` set, the evaluation is delegated: the session packs a
        :class:`DetectionTask`, the engine runs it (possibly in another
        process), and the returned predictor state is applied back.  The
        session lock is held throughout, so one job is always evaluated
        sequentially no matter which engine runs it.
        """
        with self._lock:
            if self._batch_in_flight:
                return None
            task = self._claim_task_locked(now, with_state=engine is not None)
            if task is None:
                return None
            if engine is None:
                step = self.predictor.step(task.trace, now=task.now)
            else:
                outcome = engine(task)
                self.predictor.load_state_dict(outcome.predictor_state)
                step = _step_from_entry(outcome.step)
            self._detections += 1
            self._evict_stale()
            return step

    # ------------------------------------------------------------------ #
    # batched evaluation (two-phase, used by repro.service.batch)
    # ------------------------------------------------------------------ #
    def begin_batch_detect(
        self, *, now: float | None = None, with_state: bool = False
    ) -> DetectionTask | None:
        """Phase 1 of a batched evaluation: claim the pending work as a task.

        Performs exactly the bookkeeping :meth:`detect` does before the
        evaluation (clear the pending mark, stamp the rate limit, skip when
        below ``min_requests``) and returns the :class:`DetectionTask`, or
        ``None`` when there is nothing to evaluate.  ``with_state`` controls
        whether the predictor state dict is serialized into the task (needed
        only when the batch is shipped to another process).  Until one of
        :meth:`complete_batch_detect`, :meth:`finish_batch_detect` or
        :meth:`abort_batch_detect` runs, the session reports not-due, so no
        second evaluation can race the in-flight batch.
        """
        with self._lock:
            if self._batch_in_flight:
                return None
            task = self._claim_task_locked(now, with_state=with_state)
            if task is None:
                return None
            self._batch_in_flight = True
            return task

    def complete_batch_detect(
        self, prepared: PreparedStep, kernels: SpectralKernels | None = None
    ) -> PredictionStep:
        """Phase 2 (thread backend): commit a locally prepared evaluation.

        Runs the live predictor's :meth:`~OnlinePredictor.complete_step`
        with the batch-computed kernels under the session lock, then applies
        the same post-evaluation bookkeeping as :meth:`detect`.
        """
        with self._lock:
            self._batch_in_flight = False
            step = self.predictor.complete_step(prepared, kernels=kernels)
            self._detections += 1
            self._evict_stale()
            return step

    def finish_batch_detect(self, outcome: DetectionOutcome) -> PredictionStep:
        """Phase 2 (process backend): apply an outcome computed in a worker."""
        with self._lock:
            self._batch_in_flight = False
            self.predictor.load_state_dict(outcome.predictor_state)
            step = _step_from_entry(outcome.step)
            self._detections += 1
            self._evict_stale()
            return step

    def abort_batch_detect(self) -> None:
        """Release a batch claim without applying anything (failed batch).

        The evaluation is dropped, exactly like a failed sequential dispatch.
        """
        with self._lock:
            self._batch_in_flight = False

    def _claim_task_locked(
        self, now: float | None, *, with_state: bool = True
    ) -> DetectionTask | None:
        """Shared pre-evaluation bookkeeping; the caller holds the lock.

        ``with_state=False`` skips serializing the predictor (O(history));
        the inline sequential path steps the live predictor directly and
        never reads the task's state dict.
        """
        if now is None:
            now = self._pending_time
        if now is None:
            return None
        self._pending_time = None
        self._last_detection_time = float(now)
        if len(self._store) < self.config.min_requests:
            self._skipped_detections += 1
            return None
        return DetectionTask(
            job=self.job,
            config=self.config.config,
            adaptive_window=self.config.adaptive_window,
            predictor_state=self.predictor.state_dict() if with_state else {},
            trace=self._store.trace(metadata=self._metadata),
            now=float(now),
        )

    def _evict_stale(self) -> None:
        cutoff = self.predictor.evictable_before()
        if cutoff is None:
            return
        last_period = self.predictor.latest_period() or 0.0
        margin = self.config.eviction_margin_periods * last_period
        self._store.evict_completed_before(cutoff - margin)

    # ------------------------------------------------------------------ #
    # snapshot / restore
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        """Serializable snapshot of the session (see :mod:`repro.service.snapshot`)."""
        with self._lock:
            trace = self._store.trace()
            return {
                "job": self.job,
                "metadata": dict(self._metadata),
                "pending_time": self._pending_time,
                "last_detection_time": self._last_detection_time,
                "ingested_flushes": self._ingested_flushes,
                "ingested_requests": self._ingested_requests,
                "detections": self._detections,
                "evicted": self._store.evicted,
                "finished": self._finished,
                "buffer": {
                    "n": len(trace),
                    "starts": trace.starts.tobytes(),
                    "ends": trace.ends.tobytes(),
                    "nbytes": trace.nbytes.tobytes(),
                    "ranks": trace.ranks.tobytes(),
                    "kinds": list(trace.kinds),
                },
                "predictor": self.predictor.state_dict(),
            }

    def load_state_dict(self, state: dict) -> None:
        """Restore the session from a :meth:`state_dict` snapshot."""
        with self._lock:
            buffer = state["buffer"]
            n = int(buffer["n"])
            restored = Trace(
                starts=np.frombuffer(buffer["starts"], dtype=np.float64, count=n).copy(),
                ends=np.frombuffer(buffer["ends"], dtype=np.float64, count=n).copy(),
                nbytes=np.frombuffer(buffer["nbytes"], dtype=np.int64, count=n).copy(),
                ranks=np.frombuffer(buffer["ranks"], dtype=np.int64, count=n).copy(),
                kinds=np.asarray(list(buffer["kinds"]), dtype=_KIND_DTYPE),
            )
            self._store = RingColumnStore()
            self._store.append(restored)
            self._store._evicted = int(state["evicted"])
            self._metadata = dict(state["metadata"])
            self._pending_time = state["pending_time"]
            self._last_detection_time = state["last_detection_time"]
            self._ingested_flushes = int(state["ingested_flushes"])
            self._ingested_requests = int(state["ingested_requests"])
            self._detections = int(state["detections"])
            self._finished = bool(state["finished"])
            self.predictor.load_state_dict(state["predictor"])
