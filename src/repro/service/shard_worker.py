"""Dial-home federated shard worker (the ``repro-shard`` process).

A :class:`~repro.service.sharding.ShardedService` configured with
``placement=["remote", ...]`` does not fork those slots — it adopts workers
that *dial home* to its :class:`~repro.service.transport.ShardListener`
(only the router needs a routable address; workers can sit behind NAT).
This module is the worker side of that adoption:

1. **Dial + handshake** — connect to ``host:port`` (with retry/backoff: the
   worker may come up before the router), send the standard FTC1
   :class:`~repro.service.protocol.Hello` (token, versions) and expect a
   :class:`~repro.service.protocol.HelloReply`.
2. **Register** — announce identity and capacity with
   :class:`~repro.service.protocol.RegisterShard` (name, hostname, pid,
   cpu count, ring weight), then block until the router adopts this worker
   into a shard slot (:class:`~repro.service.protocol.RegisterShardReply`
   carrying the slot index, the wire-form
   :class:`~repro.service.service.ServiceConfig` and a one-time pairing
   key).
3. **Attach** — open two more TCP connections to the same listener, each
   introducing itself with :class:`~repro.service.protocol.AttachChannel`
   (the pairing key + ``"data"`` / ``"read"``): the framed-TCP data plane
   and the read plane.
4. **Serve** — run the exact same worker loop a forked local shard runs
   (:func:`~repro.service.sharding._shard_main`), with the dial connection
   as the control channel.  From here on the router cannot tell this worker
   from a local fork except by looking at ``shard_details()``.
"""

from __future__ import annotations

import os
import socket
import time

from repro.exceptions import ProtocolError, ServiceError

from repro.service import protocol as proto
from repro.service.sharding import _shard_main
from repro.service.transport import (
    SocketChannel,
    config_from_wire,
    recv_message,
    send_message,
)


class ShardWorker:
    """One dial-home worker: connect, register, await adoption, serve.

    Parameters
    ----------
    host, port:
        The router's shard listener (``ServiceConfig.shard_port``).
    token:
        Tenant token; must match the router's or the dial is rejected.
    name:
        Worker identity shown in ``shard_details()`` (default
        ``<hostname>:<pid>``).
    weight:
        Advertised ring weight (bigger hardware → proportionally more jobs;
        applied by the router via a weighted reshard).
    retries, retry_delay:
        Dial attempts and the (linear) backoff between them — the worker may
        start before the router listens.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        token: int | None = None,
        name: str | None = None,
        weight: float = 1.0,
        retries: int = 30,
        retry_delay: float = 0.5,
    ) -> None:
        self._host = host
        self._port = int(port)
        self._token = token
        self._name = name or f"{socket.gethostname()}:{os.getpid()}"
        self._weight = float(weight)
        self._retries = max(1, int(retries))
        self._retry_delay = float(retry_delay)

    def _dial(self) -> socket.socket:
        last: OSError | None = None
        for attempt in range(self._retries):
            try:
                return socket.create_connection((self._host, self._port), timeout=30.0)
            except OSError as exc:
                last = exc
                if attempt + 1 < self._retries:
                    time.sleep(self._retry_delay)
        raise ServiceError(
            f"could not reach the shard router at {self._host}:{self._port} "
            f"after {self._retries} attempts: {last}"
        )

    def _open_channel(self, key: str, kind: str) -> socket.socket:
        sock = socket.create_connection((self._host, self._port), timeout=30.0)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.sendall(proto.encode_message(proto.AttachChannel(key=key, channel=kind)))
        sock.settimeout(None)
        return sock

    def run(self) -> None:
        """Dial home, complete adoption, and serve until the router closes us.

        Raises :class:`~repro.exceptions.ServiceError` on a rejected
        handshake (bad token, no common version) and
        :class:`~repro.exceptions.ProtocolError` on a peer that does not
        speak the adoption sequence.
        """
        control = SocketChannel(self._dial())
        try:
            send_message(
                control,
                proto.Hello(
                    versions=proto.SUPPORTED_VERSIONS,
                    token=self._token,
                    client=self._name,
                ),
            )
            reply = recv_message(control)
            if isinstance(reply, proto.Error):
                raise ServiceError(
                    f"router rejected the dial-home handshake "
                    f"({reply.code}): {reply.message}"
                )
            if not isinstance(reply, proto.HelloReply):
                raise ProtocolError(
                    f"expected HelloReply from the router, got {type(reply).__name__}"
                )
            send_message(
                control,
                proto.RegisterShard(
                    name=self._name,
                    host=socket.gethostname(),
                    pid=os.getpid(),
                    cpu_count=os.cpu_count() or 0,
                    weight=self._weight,
                ),
            )
            # Blocks until the router adopts us into a slot — possibly long
            # after the dial (the router may be waiting for a reshard).
            adoption = recv_message(control)
            if isinstance(adoption, proto.Error):
                raise ServiceError(
                    f"router refused adoption ({adoption.code}): {adoption.message}"
                )
            if not isinstance(adoption, proto.RegisterShardReply):
                raise ProtocolError(
                    f"expected RegisterShardReply, got {type(adoption).__name__}"
                )
            config = config_from_wire(adoption.config)
            data_sock = self._open_channel(adoption.data_key, "data")
            read_channel = SocketChannel(self._open_channel(adoption.data_key, "read"))
        except BaseException:
            control.close()
            raise
        # The worker loop owns (and closes) every channel from here.
        _shard_main(
            adoption.shard,
            config,
            data_sock,
            control,
            ring_handle=None,
            read_channel=read_channel,
        )
