"""Sharded multi-process prediction service.

One :class:`~repro.service.service.PredictionService` scales to hundreds of
jobs in a single process, but its detections all share one GIL and one crash
domain.  :class:`ShardedService` scales the service *out*: job ids are
consistent-hashed onto N worker shards, each shard runs a full service
(broker + dispatcher + publisher) in its own subprocess, and the parent acts
as a thin router:

* **data plane** — every shard is fed through a shared-memory ring
  (:mod:`repro.service.shm_ring`) carrying ordinary FTS1 frames
  (:mod:`repro.trace.framing`): the router copies each frame into the ring
  once, the shard decodes it straight out of the mapped memory as a borrowed
  ``memoryview``, and the ``socketpair`` between them is demoted to a
  doorbell carrying byte totals.  The router classifies frames from the
  header alone (:class:`~repro.trace.framing.FrameSplitter`) and forwards
  the raw bytes; a payload is decoded exactly once, inside the shard that
  owns the job — the same header-only property the single-process broker
  has, preserved across the process boundary at ≤1 copy per frame per hop
  (``ServiceConfig.ring_bytes = 0`` restores the two-copy socket data
  plane).
* **control plane** — a ``multiprocessing`` pipe per shard carries the typed,
  versioned messages of :mod:`repro.service.protocol` (the same protocol the
  TCP gateway speaks): :class:`~repro.service.protocol.Hello` negotiation at
  spawn, then Pump/Drain/Stats/Snapshot/Restore/Close request/response
  pairs.  Because data and control travel on different channels, every
  control request that depends on the data stream carries the router's byte
  count (``expected_bytes``) and the shard drains its socket up to that mark
  first — the two planes are re-ordered deterministically.

Sessions are already independent and lock-isolated, so sharding changes no
prediction: the ``shards=N`` service is bit-identical to the single-process
one on the same input (asserted by ``tests/service/test_sharding.py``).

Crash recovery composes out of existing pieces: shard death is detected on
the control channel (:class:`~repro.exceptions.ShardCrashedError`), the lost
shard's sessions are restored from the last merged snapshot
(:func:`~repro.service.snapshot.split_state`), and the spool tail written
since the snapshot is replayed through the router.  With
``ServiceConfig.auto_revive`` the router does this by itself: a crash
surfacing during :meth:`ShardedService.pump` or :meth:`~ShardedService.
drain` triggers :meth:`~ShardedService.revive_shard` from the last snapshot
taken through :meth:`~ShardedService.snapshot_state` (bounded by
``ServiceConfig.revive_budget``), and the pump is retried.

The topology itself is elastic: :meth:`ShardedService.reshard` grows or
shrinks the shard count *live*.  Because the hash ring is consistent, only
the jobs whose arc changed owner move; their sessions are extracted from the
source shards (:class:`~repro.service.protocol.ExtractJobs` — capture and
remove in one drained step), carried over the protocol-v2 chunked snapshot
transfer (:class:`~repro.service.protocol.SnapshotChunk`), and merged into
their new owners, while any frame arriving for a moving job is parked in a
per-job migration buffer and replayed — in arrival order — once the handover
finished.  The end state is bit-identical to having ingested the same stream
at the target shard count from scratch (``tests/service/test_resharding.py``
asserts this under chaotic interleavings, kill -9 included).
"""

from __future__ import annotations

import multiprocessing
import os
import select
import selectors
import signal
import socket
import threading
import time
import warnings
from bisect import bisect_right
from dataclasses import dataclass, field
from hashlib import blake2b
from pathlib import Path
from struct import unpack
from typing import Callable

import numpy as np

from repro.exceptions import ProtocolError, ServiceError, ShardCrashedError
from repro.obs import Histogram, MetricRegistry, SpanJournal, merge_snapshots
from repro.trace.framing import FrameReader, FrameSplitter, RawFrame, encode_frame
from repro.trace.jsonl import FlushRecord
from repro.trace.msgpack import packb

from repro.service import protocol as proto
from repro.service.broker import BrokerStats
from repro.service.shm_ring import RingHandle, ShmRingReader, ShmRingWriter
from repro.service.dispatcher import DispatcherStats
from repro.service.publisher import PredictionPublisher, PredictionUpdate
from repro.service.service import (
    PredictionService,
    ServiceConfig,
    compact_tails,
    tail_positions,
)
from repro.service.snapshot import (
    apply_state,
    check_snapshot_version,
    extract_service_jobs,
    merge_into,
    merge_states,
    snapshot_state,
    split_state,
)
from repro.service.transport import (
    ReadPlane,
    ShardListener,
    SocketChannel,
    config_to_wire,
    send_message,
)

#: Socket read size of the shard ingestion loop.
_RECV_CHUNK = 1 << 16

#: Sentinel distinguishing "token not passed" from "token=None".
_UNSET = object()


class HashRing:
    """Consistent hashing of job ids onto shard indices.

    Each shard owns ``replicas`` pseudo-random points on a 64-bit ring; a job
    hashes to the first point at or after it.  The mapping is deterministic
    across processes and Python runs (``blake2b``, not ``hash()``), balanced
    to a few percent at 64 replicas, and *consistent*: changing the shard
    count moves only the jobs whose arc changed owner — the property that
    lets a snapshot taken at one shard count restore onto another with
    minimal data movement.

    ``weights`` makes the ring heterogeneous: shard ``i`` places
    ``round(replicas * weights[i])`` points (at least one), so its expected
    arc share is proportional to its weight — a beefy ProcessPoolBackend
    shard can take a double arc.  Replica keys are a per-shard prefix
    (``shard-i-replica-0..k``), so changing *only* the weights adds or
    removes points at each shard's tail: jobs move only into a shard whose
    weight grew or out of one whose weight shrank — minimal movement holds
    for weight changes exactly as it does for count changes
    (``tests/service/test_weighted_ring.py`` pins both properties).
    """

    def __init__(
        self,
        n_shards: int,
        *,
        replicas: int = 64,
        weights: tuple[float, ...] | list[float] | None = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.n_shards = int(n_shards)
        self.replicas = int(replicas)
        if weights is None:
            self.weights: tuple[float, ...] | None = None
            counts = [self.replicas] * self.n_shards
        else:
            if len(weights) != self.n_shards:
                raise ValueError(
                    f"weights must have one entry per shard "
                    f"({self.n_shards}), got {len(weights)}"
                )
            if any(w <= 0 for w in weights):
                raise ValueError(f"weights must be > 0, got {tuple(weights)}")
            self.weights = tuple(float(w) for w in weights)
            counts = [max(1, round(self.replicas * w)) for w in self.weights]
        self.replica_counts: tuple[int, ...] = tuple(counts)
        points: list[tuple[int, int]] = []
        for shard, count in enumerate(counts):
            for replica in range(count):
                points.append((self._hash(f"shard-{shard}-replica-{replica}"), shard))
        # (hash, shard) tuples sort lexicographically: equal hash points
        # (rare but possible) tie-break on the shard index, so the ring
        # layout — and therefore every reshard's moved-job set — is
        # identical across processes, Python hash seeds (PYTHONHASHSEED),
        # and grow -> shrink -> grow cycles
        # (tests/service/test_resharding.py pins this in subprocesses).
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [s for _, s in points]

    @staticmethod
    def _hash(key: str) -> int:
        return unpack(">Q", blake2b(key.encode("utf-8"), digest_size=8).digest())[0]

    def shard_for(self, job: str) -> int:
        """Shard index owning ``job``."""
        position = bisect_right(self._hashes, self._hash(job))
        if position == len(self._hashes):
            position = 0
        return self._owners[position]

    def arc_shares(self) -> tuple[float, ...]:
        """Exact fraction of the 64-bit keyspace each shard owns.

        A point at hash ``h`` owns the arc ``(previous_h, h]`` (plus the
        wraparound arc for the first point), which is precisely the keyspace
        :meth:`shard_for` sends to it — the measure the weighted-arc property
        tests assert against, with no sampling noise.
        """
        span = 1 << 64
        shares = [0.0] * self.n_shards
        previous = self._hashes[-1] - span  # wraparound arc of the first point
        for point, owner in zip(self._hashes, self._owners):
            shares[owner] += (point - previous) / span
            previous = point
        return tuple(shares)


# --------------------------------------------------------------------- #
# shard worker (runs in the subprocess)
# --------------------------------------------------------------------- #
def _stats_reply(service: PredictionService, bytes_received: int) -> proto.StatsReply:
    """This shard's stats as one :class:`~repro.service.protocol.StatsReply`.

    Shared by the control-plane Stats handler (which syncs the data plane to
    the router's byte mark first) and the read-plane server (which answers
    immediately with whatever has been ingested so far).
    """
    broker = service.broker.stats
    dispatch = service.dispatcher.stats
    detect_hist = service.dispatcher.detect_histogram
    return proto.StatsReply(
        stats={
            "service": service.stats(),
            "broker": vars(broker),
            "dispatcher": vars(dispatch),
            "jobs": list(service.jobs),
            "latencies": list(service.dispatcher.latencies()),
            # Full mergeable latency distribution (None with metrics off):
            # the router merges these bucket-wise instead of pooling the
            # bounded windows, so the aggregated p99 weighs every detection,
            # not just each shard's last `latency_window` of them.
            "detect_hist": (None if detect_hist is None else detect_hist.to_dict()),
            "bytes_received": bytes_received,
        }
    )


def _serve_read_plane(
    channel,
    service: PredictionService,
    bytes_received: Callable[[], int],
) -> None:
    """Serve read-only requests on a shard's second channel, in its own thread.

    Handles Heartbeat / Stats / MetricsReport / Subscribe without touching the
    control plane, so the router (and through it the gateway's ops surface)
    reads liveness and counters even while the worker loop is deep inside a
    pump — and a worker whose *process* is wedged (SIGSTOP, runaway C
    extension) stops answering heartbeats here, which is exactly the signal
    the router's liveness timeout keys on.  Subscribed prediction events are
    pushed from publisher threads; a lock serializes them against replies so
    envelopes never interleave on the wire.
    """
    send_lock = threading.Lock()

    def send(message: proto.Message) -> bool:
        try:
            with send_lock:
                channel.send_bytes(proto.encode_message(message))
        except (OSError, EOFError, ValueError, BrokenPipeError):
            return False
        return True

    def push(update) -> None:
        send(proto.PredictionEvent(update=update.to_dict()))

    subscribed = False
    while True:
        try:
            request = proto.decode_message(channel.recv_bytes())
        except (EOFError, OSError, ValueError, ProtocolError):
            return
        try:
            reply: proto.Message
            if isinstance(request, proto.Heartbeat):
                # Echo the sender's clock so the router computes RTT without
                # any cross-host clock agreement.
                reply = proto.HeartbeatReply(seq=request.seq, sent_at=request.sent_at)
            elif isinstance(request, proto.Stats):
                reply = _stats_reply(service, bytes_received())
            elif isinstance(request, proto.MetricsReport):
                reply = proto.MetricsReport(metrics=service.metrics_snapshot())
            elif isinstance(request, proto.Subscribe):
                if not subscribed:
                    service.publisher.subscribe(push)
                    subscribed = True
                reply = proto.SubscribeReply(subscription=1)
            else:
                reply = proto.Error(
                    message=f"unsupported read-plane message {type(request).__name__}",
                    code="unsupported",
                )
        except Exception as exc:  # surface shard-side errors, keep serving
            reply = proto.Error(message=f"{type(exc).__name__}: {exc}", code="internal")
        if not send(reply):
            return


def _shard_main(
    index: int,
    config: ServiceConfig,
    data_sock: socket.socket,
    control,
    ring_handle: RingHandle | None = None,
    read_channel=None,
) -> None:
    """Control loop of one shard: select over the data channel and control pipe.

    With ``ring_handle`` set, frame bytes arrive through the shared-memory
    ring and ``data_sock`` is its doorbell (byte totals only); otherwise
    ``data_sock`` carries the frame bytes itself.  Control messages are the
    typed protocol envelopes of :mod:`repro.service.protocol`, one per
    ``send_bytes``/``recv_bytes`` pair on the pipe.  With ``read_channel``
    set, a daemon thread additionally serves read-only requests (stats,
    metrics, heartbeats, prediction-event subscriptions) on that channel —
    see :func:`_serve_read_plane`.
    """
    service = PredictionService(config)
    updates: list[dict] = []
    service.publisher.subscribe(lambda update: updates.append(update.to_dict()))
    bytes_received = 0
    data_eof = False
    if read_channel is not None:
        threading.Thread(
            target=_serve_read_plane,
            args=(read_channel, service, lambda: bytes_received),
            name=f"shard-{index}-read-plane",
            daemon=True,
        ).start()
    # Non-blocking: a control handler may drain the socket ahead of the
    # selector loop, leaving the loop's readiness event stale — a blocking
    # recv on a stale event would deadlock the shard.
    data_sock.setblocking(False)
    ring = ShmRingReader(ring_handle, data_sock) if ring_handle is not None else None

    def drain_updates() -> tuple[dict, ...]:
        drained = tuple(updates)
        del updates[: len(drained)]
        return drained

    def read_available() -> None:
        # Ingest whatever the data channel holds right now (never blocks).
        nonlocal bytes_received, data_eof
        if ring is not None:
            while not data_eof:
                ring.pump_doorbell()
                views = ring.views()
                if not views:
                    if ring.eof:
                        data_eof = True
                    return
                for view in views:
                    # The view borrows ring memory: the broker decodes frames
                    # straight out of it and materializes only an undecoded
                    # tail, so the memory can be released and acknowledged
                    # (= reused by the router) immediately after.
                    bytes_received += len(view)
                    service.feed_borrowed(view)
                    view.release()
                ring.ack()
            return
        while not data_eof:
            try:
                chunk = data_sock.recv(_RECV_CHUNK)
            except BlockingIOError:
                return
            if not chunk:
                data_eof = True
                return
            bytes_received += len(chunk)
            service.feed_bytes(chunk)

    def sync_to(expected: int | None) -> None:
        # The router counted its sends; catch the data plane up to that mark
        # before acting on a control message that depends on it.
        read_available()
        if expected is None:
            return
        while bytes_received < expected and not data_eof:
            select.select([data_sock], [], [])
            read_available()

    def state_replies(
        state: dict, max_chunk: int | None, single: type, kind: str
    ) -> list[proto.Message]:
        # One plain reply when it fits (or the peer did not negotiate
        # chunking); a bounded chunk stream otherwise.
        packed = packb(state)
        if max_chunk is None or len(packed) <= max_chunk:
            return [single(state=state)]
        return list(proto.iter_state_chunks(packed, kind=kind, max_chunk=max_chunk))

    assembler = proto.ChunkAssembler()

    def handle(request: proto.Message) -> tuple[list[proto.Message], bool]:
        if isinstance(request, proto.Hello):
            version = proto.negotiate_version(request.versions)
            if version is None:
                return (
                    [
                        proto.Error(
                            message=(
                                f"no common protocol version (shard speaks "
                                f"{proto.SUPPORTED_VERSIONS}, peer offered {request.versions})"
                            ),
                            code="unsupported-version",
                        )
                    ],
                    False,
                )
            return (
                [proto.HelloReply(version=version, server=f"prediction-shard-{index}")],
                False,
            )
        if isinstance(request, proto.Pump):
            sync_to(request.expected_bytes)
            submitted = service.pump(wait_for_batch=True)
            service.dispatcher.join()
            return [proto.PumpReply(submitted=submitted, updates=drain_updates())], False
        if isinstance(request, proto.Drain):
            sync_to(request.expected_bytes)
            service.drain()
            return [proto.DrainReply(updates=drain_updates())], False
        if isinstance(request, proto.Stats):
            return [_stats_reply(service, bytes_received)], False
        if isinstance(request, proto.MetricsReport):
            # An (empty) report is the poll; the reply carries this shard's
            # registry snapshot for the router to merge.
            return [proto.MetricsReport(metrics=service.metrics_snapshot())], False
        if isinstance(request, proto.Snapshot):
            sync_to(request.expected_bytes)
            return (
                state_replies(
                    snapshot_state(service), request.max_chunk, proto.SnapshotReply, "snapshot"
                ),
                False,
            )
        if isinstance(request, proto.ExtractJobs):
            # The migration source: drain the data plane up to the router's
            # mark, then capture-and-remove the moving jobs in one step.
            sync_to(request.expected_bytes)
            state = extract_service_jobs(service, request.jobs)
            return (
                state_replies(state, request.max_chunk, proto.ExtractJobsReply, "extract"),
                False,
            )
        if isinstance(request, proto.SnapshotChunk):
            kind = request.kind
            state = assembler.feed(request)
            if state is None:
                # Mid-transfer chunks ride the ordered pipe unacknowledged;
                # only the completed transfer gets a reply.
                return [], False
            if kind == "merge":
                merge_into(service, state)
            elif kind == "restore":
                apply_state(service, state)
            else:
                return (
                    [
                        proto.Error(
                            message=f"cannot apply a {kind!r} chunk stream to a shard",
                            code="protocol",
                        )
                    ],
                    False,
                )
            return [proto.RestoreReply(restored=len(state["sessions"]))], False
        if isinstance(request, proto.Restore):
            apply_state(service, request.state)
            return [proto.RestoreReply(restored=len(request.state["sessions"]))], False
        if isinstance(request, proto.BeginHandover):
            # Rebuild both rings locally and stage exactly the frames whose
            # job is moving *to this shard* — correct even for job ids first
            # seen mid-migration, and independent of how data-plane bytes
            # interleave with this control message (frames already buffered
            # for jobs this shard owned under the old ring never match).
            old_ring = HashRing(
                request.old_shards,
                replicas=request.replicas,
                weights=request.old_weights,
            )
            new_ring = HashRing(
                request.new_shards,
                replicas=request.replicas,
                weights=request.new_weights,
            )
            me = request.shard

            def moving_here(job: str) -> bool:
                owner = new_ring.shard_for(job)
                return owner == me and old_ring.shard_for(job) != owner

            service.broker.begin_staging(moving_here)
            return [proto.BeginHandoverReply(shard=index)], False
        if isinstance(request, proto.CompleteHandover):
            sync_to(request.expected_bytes)
            replayed, dropped = service.broker.end_staging(request.drop_counts)
            return (
                [proto.CompleteHandoverReply(replayed=replayed, dropped=dropped)],
                False,
            )
        if isinstance(request, proto.AbortHandover):
            sync_to(request.expected_bytes)
            discarded = service.broker.abort_staging()
            return [proto.AbortHandoverReply(discarded=discarded)], False
        if isinstance(request, proto.FinishJob):
            service.finish_job(request.job)
            return [proto.FinishJobReply(job=request.job)], False
        if isinstance(request, proto.ReapFinished):
            reaped = service.reap_finished(
                forget_predictions=request.forget_predictions
            )
            return [proto.ReapFinishedReply(jobs=reaped)], False
        if isinstance(request, proto.Close):
            service.close()
            return [proto.CloseReply()], True
        return (
            [
                proto.Error(
                    message=f"unsupported shard control message {type(request).__name__}",
                    code="unsupported",
                )
            ],
            False,
        )

    selector = selectors.DefaultSelector()
    selector.register(data_sock, selectors.EVENT_READ, "data")
    selector.register(control, selectors.EVENT_READ, "control")
    try:
        done = False
        while not done:
            for key, _ in selector.select():
                if key.data == "data":
                    read_available()
                    if data_eof:
                        selector.unregister(data_sock)
                    continue
                try:
                    request = proto.decode_message(control.recv_bytes())
                except EOFError:
                    # The router went away; there is nobody to serve.
                    done = True
                    break
                except ProtocolError as exc:
                    control.send_bytes(
                        proto.encode_message(proto.Error(message=str(exc), code="protocol"))
                    )
                    continue
                try:
                    responses, done = handle(request)
                    for response in responses:
                        control.send_bytes(proto.encode_message(response))
                except Exception as exc:  # surface shard-side errors to the router
                    control.send_bytes(
                        proto.encode_message(
                            proto.Error(message=f"{type(exc).__name__}: {exc}", code="internal")
                        )
                    )
                if done:
                    break
    finally:
        selector.close()
        if ring is not None:
            ring.close()
        data_sock.close()
        control.close()
        if read_channel is not None:
            try:
                read_channel.close()
            except OSError:  # pragma: no cover - already torn down
                pass


@dataclass
class _RoutedCopy:
    """Router-side copy of one double-routed frame (handover replay/rollback).

    ``delivered_old`` records whether the frame also reached the old owner
    before its state was extracted: such frames travel inside the extracted
    session state (their staged twin is deduplicated away), while frames
    delivered only to the staging target must be replayed by the router if
    the target dies or the migration rolls back to the old ring.
    """

    frame: RawFrame
    target: int
    delivered_old: bool


@dataclass
class _Migration:
    """In-flight reshard: the two rings plus the in-flight frame bookkeeping.

    With ``staging`` armed (every target shard acknowledged
    :class:`~repro.service.protocol.BeginHandover`), a frame whose job
    changes owner between ``old_ring`` and ``new_ring`` is *double-routed*:
    delivered to the old owner for immediate evaluation (zero ingest pause)
    and to the new owner's staging buffer, with per-job duplicate counts so
    the receiving shard can deduplicate at
    :class:`~repro.service.protocol.CompleteHandover` — the stream stays
    exactly-once.  Without staging (``double_route=False``, or a target that
    negotiated protocol v1), the frame is *parked* in arrival order and
    replayed by the router after the handover — the pre-handover behavior,
    kept as the measured baseline.
    """

    old_ring: HashRing
    new_ring: HashRing
    staging: bool = False
    extracted: bool = False
    handover_targets: set[int] = field(default_factory=set)
    dup_counts: dict[str, int] = field(default_factory=dict)
    routed: list[_RoutedCopy] = field(default_factory=list)
    parked: list[RawFrame] = field(default_factory=list)

    def moves(self, job: str) -> bool:
        return self.old_ring.shard_for(job) != self.new_ring.shard_for(job)


@dataclass
class _Shard:
    """Parent-side handle of one worker shard.

    A *local* shard is a forked subprocess (``process`` set, channels are a
    socketpair and pipes).  A *remote* shard is an adopted dial-home
    ``repro-shard`` worker (``process`` is ``None``, every channel is a TCP
    connection, and ``name``/``host``/``pid``/``weight`` carry the identity
    it registered with).  Remote liveness has no ``waitpid`` to lean on: it
    is connection loss (any channel operation failing) or a heartbeat
    timeout (:meth:`ShardedService.heartbeat`) flipping ``dead``.
    """

    index: int
    process: multiprocessing.process.BaseProcess | None
    data_sock: socket.socket
    control: object  # multiprocessing.connection.Connection or SocketChannel
    ring: ShmRingWriter | None = None
    read: object | None = None  # read-plane channel (pipe or SocketChannel)
    protocol_version: int = proto.PROTOCOL_VERSION
    bytes_sent: int = 0
    dead: bool = False
    unresponsive: bool = False  # heartbeat timeout: connected but wedged
    name: str | None = None
    host: str | None = None
    pid: int | None = None
    weight: float = 1.0

    @property
    def remote(self) -> bool:
        return self.process is None

    @property
    def alive(self) -> bool:
        if self.dead:
            return False
        return True if self.process is None else self.process.is_alive()


# --------------------------------------------------------------------- #
# the sharded service (parent-side router)
# --------------------------------------------------------------------- #
class ShardedService:
    """Routes FTS1 frames onto N subprocess shards and aggregates their state.

    Parameters
    ----------
    n_shards:
        Number of worker shards (subprocesses) to spawn.
    config:
        Per-shard :class:`ServiceConfig` (session config, worker pool,
        detection backend, tenant token, auto-revive policy).
    token:
        Deprecated — set :attr:`ServiceConfig.token` instead.  When set, the
        router stamps it on frames it encodes itself and **rejects** routed
        byte streams whose frames do not carry it (wire-level auth).
    replicas:
        Virtual nodes per shard on the hash ring.
    weights:
        Optional per-shard ring weights: shard ``i`` takes an arc share
        proportional to ``weights[i]`` (``None`` = uniform), so a shard on
        bigger hardware can own proportionally more jobs.
    start_method:
        ``multiprocessing`` start method (``None`` = platform default).
    placement:
        Optional per-shard placement, one of ``"local"`` (fork a subprocess,
        the default) or ``"remote"`` (adopt a dial-home ``repro-shard``
        worker from the :class:`~repro.service.transport.ShardListener` —
        requires ``ServiceConfig.shard_port``).  A ``"remote"`` slot with no
        worker dialed home within ``remote_timeout`` falls back to a local
        fork, so a missing machine degrades the topology, never the service.
    remote_timeout:
        Seconds to wait for a remote worker to dial home / attach its
        channels before falling back to a local fork.
    """

    def __init__(
        self,
        n_shards: int,
        config: ServiceConfig | None = None,
        *,
        token: object = _UNSET,
        replicas: int = 64,
        weights: tuple[float, ...] | list[float] | None = None,
        start_method: str | None = None,
        placement: list[str] | tuple[str, ...] | None = None,
        remote_timeout: float = 30.0,
    ) -> None:
        self.config = config or ServiceConfig()
        if token is not _UNSET and token is not None:
            warnings.warn(
                "ShardedService(token=...) is deprecated; set ServiceConfig(token=...) "
                "(or ReproConfig(token=...)) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            self._token: int | None = int(token)  # type: ignore[arg-type]
        else:
            self._token = self.config.token
        self.ring = HashRing(n_shards, replicas=replicas, weights=weights)
        self.publisher = PredictionPublisher()
        self._splitter = FrameSplitter(expected_token=self._token)
        self._ctx = multiprocessing.get_context(start_method)
        self._closed = False
        # Federation: the dial-home listener exists only when configured (a
        # port to listen on), the read plane always (local shards use it too
        # — stats and liveness must not queue behind a busy control pipe).
        self._remote_timeout = float(remote_timeout)
        self._listener: ShardListener | None = None
        if self.config.shard_port is not None:
            self._listener = ShardListener(
                "0.0.0.0", self.config.shard_port, token=self._token
            )
        self._placement = self._check_placement(placement, n_shards)
        self._read_plane = ReadPlane()
        self._read_events_active = False
        self._heartbeat_seq = 0
        self._shard_views_registered: set[int] = set()
        self._tails: dict[Path, FrameReader] = {}
        self._last_snapshot: dict | None = None
        self._snapshot_positions: dict[Path, dict] = {}
        self._auto_revives = 0
        # Jobs routed to each shard so far — the router knows every job id
        # from the frame headers it forwards, so a reshard can compute the
        # moving set without a stats round trip (and without trusting a
        # shard that may still be draining its socket).
        self._jobs_by_shard: list[set[str]] = [set() for _ in range(n_shards)]
        self._migration: _Migration | None = None
        self._reshards = 0
        self._sessions_moved = 0
        self._double_routed = 0
        # Router-side observability: the registry holds what only the parent
        # can see (ring occupancy/stalls, reshard phase durations, revives);
        # shard-side registries are polled and merged in metrics_snapshot().
        self.metrics = MetricRegistry() if self.config.metrics else None
        self.journal = (
            SpanJournal(self.config.span_capacity) if self.config.spans else None
        )
        self._ring_views_registered: set[int] = set()
        if self.metrics is not None:
            self.metrics.register_view(
                "repro_shard_revives_total", "counter", lambda: self._auto_revives,
                help="Automatic shard revives performed",
            )
            self.metrics.register_view(
                "repro_reshards_total", "counter", lambda: self._reshards,
                help="Completed live reshard operations",
            )
            self.metrics.register_view(
                "repro_double_routed_frames_total", "counter",
                lambda: self._double_routed,
                help="Frames double-routed to old and new owners during handovers",
            )
        self._shards = [self._spawn(index) for index in range(n_shards)]

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def _check_placement(
        self, placement: list[str] | tuple[str, ...] | None, n_shards: int
    ) -> list[str]:
        if placement is None:
            return ["local"] * n_shards
        entries = [str(entry) for entry in placement]
        if len(entries) != n_shards:
            raise ValueError(
                f"placement must have one entry per shard ({n_shards}), got {len(entries)}"
            )
        for entry in entries:
            if entry not in ("local", "remote"):
                raise ValueError(
                    f"placement entries must be 'local' or 'remote', got {entry!r}"
                )
        if "remote" in entries and self._listener is None:
            raise ValueError(
                "placement includes 'remote' but ServiceConfig.shard_port is not "
                "set — the router has no listener for workers to dial home to"
            )
        return entries

    def _placement_for(self, index: int) -> str:
        return self._placement[index] if index < len(self._placement) else "local"

    def _spawn(self, index: int) -> _Shard:
        """Bring up the worker for slot ``index`` per its placement.

        A ``"remote"`` slot adopts the next dial-home worker parked on the
        listener; if none arrives (or its channels never attach) within
        ``remote_timeout`` the slot degrades to a local fork — the same
        fallback a revive of a dead remote takes when its machine is gone.
        """
        shard: _Shard | None = None
        if self._placement_for(index) == "remote":
            shard = self._adopt_remote(index)
            if shard is None:
                warnings.warn(
                    f"no remote worker adopted for shard {index} within "
                    f"{self._remote_timeout}s; spawning it locally",
                    RuntimeWarning,
                    stacklevel=2,
                )
        if shard is None:
            shard = self._spawn_local(index)
        return self._handshake(shard)

    def _spawn_local(self, index: int) -> _Shard:
        parent_sock, child_sock = socket.socketpair()
        parent_conn, child_conn = self._ctx.Pipe()
        read_parent, read_child = self._ctx.Pipe()
        ring = ShmRingWriter(self.config.ring_bytes) if self.config.ring_bytes > 0 else None
        # Not daemonic: a shard may itself host a ProcessPoolBackend (daemonic
        # processes cannot have children).  Orphan safety comes from the shard
        # loop exiting on control-pipe EOF when the router goes away.
        process = self._ctx.Process(
            target=_shard_main,
            args=(
                index,
                self.config,
                child_sock,
                child_conn,
                ring.handle if ring is not None else None,
                read_child,
            ),
            name=f"prediction-shard-{index}",
        )
        process.start()
        child_sock.close()
        child_conn.close()
        read_child.close()
        if ring is not None:
            ring.bind(parent_sock)
        return _Shard(
            index=index,
            process=process,
            data_sock=parent_sock,
            control=parent_conn,
            ring=ring,
            read=read_parent,
            host="local",
            pid=process.pid,
        )

    def _adopt_remote(self, index: int) -> _Shard | None:
        """Adopt the next parked dial-home worker into slot ``index``.

        The worker already passed the listener's Hello (token, version) and
        registered its identity; adoption sends it the wire-form config plus
        a one-time key, then waits for it to attach its data- and read-plane
        connections under that key.  Returns ``None`` (caller falls back to
        a local fork) when nothing dialed home or the worker went away
        mid-adoption.
        """
        assert self._listener is not None
        pending = self._listener.take_pending(timeout=self._remote_timeout)
        if pending is None:
            return None
        registration = pending.registration
        key = self._listener.new_key()
        try:
            send_message(
                pending.channel,
                proto.RegisterShardReply(
                    shard=index, config=config_to_wire(self.config), data_key=key
                ),
            )
            data_sock = self._listener.wait_attachment(
                key, "data", timeout=self._remote_timeout
            )
            read_sock = self._listener.wait_attachment(
                key, "read", timeout=self._remote_timeout
            )
        except (OSError, EOFError, ServiceError) as exc:
            pending.close()
            warnings.warn(
                f"adopting remote worker {registration.name!r} for shard {index} "
                f"failed ({exc}); trying the next placement",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        data_sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return _Shard(
            index=index,
            process=None,
            data_sock=data_sock,
            control=pending.channel,
            ring=None,
            read=SocketChannel(read_sock),
            name=registration.name,
            host=registration.host,
            pid=registration.pid,
            weight=registration.weight,
        )

    def _handshake(self, shard: _Shard) -> _Shard:
        # Version negotiation before the first real control message: a shard
        # built from an incompatible protocol generation fails loudly at
        # spawn, never by silently mis-parsing a request later.
        reply = self._request(
            shard, proto.Hello(versions=proto.SUPPORTED_VERSIONS, token=self._token)
        )
        if not isinstance(reply, proto.HelloReply):
            raise ServiceError(
                f"shard {shard.index} handshake returned {type(reply).__name__}, "
                f"expected HelloReply"
            )
        shard.protocol_version = reply.version
        if shard.read is not None:
            self._read_plane.attach(shard.index, shard.read)
            if self._read_events_active:
                try:
                    self._read_plane.request(
                        shard.index, proto.Subscribe(), timeout=self._remote_timeout
                    )
                except (ShardCrashedError, ServiceError, TimeoutError):
                    pass  # events degrade; the control-plane replies still carry them
        self._register_ring_views(shard.index)
        self._register_shard_views(shard.index)
        return shard

    def _register_ring_views(self, index: int) -> None:
        """Expose shard ``index``'s ring counters as labelled metric views.

        Registered once per index (revives and reshard respawns reuse the
        registration — the closures read whatever shard currently holds the
        slot).  A slot that has no ring, is dead, or was shrunk away raises
        inside the closure, which drops the series from that scrape.
        """
        if self.metrics is None or index in self._ring_views_registered:
            return
        self._ring_views_registered.add(index)
        labels = {"shard": str(index)}

        def ring(idx: int = index) -> ShmRingWriter:
            shard = self._shards[idx]
            if shard.ring is None or not shard.alive:
                raise ValueError(f"shard {idx} has no live ring")
            return shard.ring

        self.metrics.register_view(
            "repro_ring_occupancy_bytes", "gauge", lambda: ring().occupancy, labels,
            help="Bytes written to the shard's shm ring but not yet acknowledged",
        )
        self.metrics.register_view(
            "repro_ring_stalls_total", "counter", lambda: ring().stalls, labels,
            help="Writes that found the ring full and blocked for space",
        )
        self.metrics.register_view(
            "repro_ring_doorbell_sends_total", "counter",
            lambda: ring().doorbell_sends, labels,
            help="Doorbell announcements sent (one per written chunk)",
        )

    def _register_shard_views(self, index: int) -> None:
        """Expose shard ``index``'s liveness as a labelled gauge.

        Registered once per slot; the closure reads whoever currently holds
        it, so revives and remote adoptions are reflected without
        re-registration.  A slot shrunk away raises inside the closure,
        which drops the series from that scrape.
        """
        if self.metrics is None or index in self._shard_views_registered:
            return
        self._shard_views_registered.add(index)

        def alive(idx: int = index) -> float:
            if idx >= len(self._shards):
                raise ValueError(f"shard slot {idx} no longer exists")
            return 1.0 if self._shards[idx].alive else 0.0

        self.metrics.register_view(
            "repro_shard_alive", "gauge", alive, {"shard": str(index)},
            help="1 while the shard's process (local) or connection (remote) is live",
        )

    @property
    def n_shards(self) -> int:
        """Number of shards (live or dead)."""
        return len(self._shards)

    @property
    def token(self) -> int | None:
        """Tenant/auth token nibble stamped on and required of every frame."""
        return self._token

    def shard_for(self, job: str) -> int:
        """Shard index that owns ``job`` (consistent hash)."""
        return self.ring.shard_for(job)

    def dead_shards(self) -> tuple[int, ...]:
        """Indices of shards whose process died or whose channel broke."""
        return tuple(s.index for s in self._shards if not s.alive)

    @property
    def auto_revives(self) -> int:
        """Number of automatic shard revives performed so far."""
        return self._auto_revives

    def kill_shard(self, index: int) -> None:
        """Forcibly kill a shard (SIGKILL) — fault injection for tests.

        For a remote shard the signal is delivered by pid (same-host chaos
        runs); detection stays organic either way — the router notices the
        death on the next channel operation (waitpid for local shards,
        connection loss for remote ones), exactly like a real crash.
        """
        shard = self._shards[index]
        if shard.process is not None:
            shard.process.kill()
            shard.process.join()
            return
        if shard.pid is None:
            raise ServiceError(
                f"shard {index} is remote and registered no pid; cannot signal it"
            )
        try:
            os.kill(shard.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):  # pragma: no cover - raced
            pass

    def revive_shard(
        self,
        index: int,
        *,
        state: dict | None = None,
        spool: str | Path | None = None,
        spool_offset: int = 0,
        spool_position: dict | None = None,
    ) -> int:
        """Respawn a dead shard, restoring its sessions and replaying the spool.

        ``state`` is a merged snapshot (any deployment shape); only the
        sessions this shard owns are pushed into the replacement process.
        With ``spool`` plus the ingestion point recorded alongside the
        snapshot (``spool_position`` — a tailing reader's rotation-proof
        :attr:`FrameReader.position` — or a plain ``spool_offset``), the
        frames written since the snapshot are replayed — **only** those owned
        by the revived shard; surviving shards already consumed theirs —
        pumping after every frame so each replayed flush is evaluated at its
        own timestamp, the same cadence a flush-by-flush live run takes.
        Returns the number of frames replayed.
        """
        shard = self._shards[index]
        if shard.alive:
            raise ServiceError(f"shard {index} is still alive; refusing to revive it")
        self._release(shard)
        self._shards[index] = self._spawn(index)
        if state is not None:
            per_shard = split_state(state, self.ring.shard_for, self.n_shards)
            self._send_state(self._shards[index], per_shard[index], kind="restore")
            self._jobs_by_shard[index].update(self._state_jobs(per_shard[index]))
            # Merge (not replace): surviving shards have published past the
            # snapshot, only the revived shard's jobs roll back to it.
            self.publisher.merge_state_dict(per_shard[index]["publisher"])
        replayed = 0
        if spool is not None:
            replayed = self._replay_spool(
                index, spool, spool_offset=spool_offset, spool_position=spool_position
            )
        return replayed

    def _replay_spool(
        self,
        index: int,
        spool: str | Path,
        *,
        spool_offset: int = 0,
        spool_position: dict | None = None,
        limit: int | None = None,
    ) -> int:
        """Replay the spool tail into shard ``index``; returns frames replayed.

        ``limit`` bounds the replay to that many bytes past the start point
        (every frame counts, owned or not) — the auto-revive path uses it to
        stop exactly at the parent tail's consumed position, so a frame a
        concurrent writer appended after the parent's last poll is never
        ingested twice (once by the replay, again by the next poll).
        """
        reader = FrameReader(
            spool,
            offset=spool_offset,
            position=spool_position,
            expected_token=self._token,
            raw=True,
        )
        replayed = 0
        budget = limit
        for raw in reader.poll():
            if budget is not None:
                if len(raw.data) > budget:
                    break
                budget -= len(raw.data)
            if self.ring.shard_for(raw.job) != index:
                continue
            self.route_raw(raw)
            self.pump(shards=(index,))
            replayed += 1
        return replayed

    def _release(self, shard: _Shard) -> None:
        shard.dead = True
        try:
            shard.data_sock.close()
        except OSError:  # pragma: no cover - already closed
            pass
        shard.control.close()
        if shard.read is not None:
            # The read plane's drain thread unregisters and closes the
            # channel; a replacement spawn may re-attach the slot right away.
            self._read_plane.detach(shard.index)
        if shard.process is not None:
            # Closing both channels makes a healthy shard exit on EOF; give
            # it a moment, then escalate so close() can never hang on a
            # wedged shard.  A shard already convicted by a heartbeat
            # timeout is wedged by definition — skip straight to the kill.
            shard.process.join(timeout=0.5 if shard.unresponsive else 10.0)
            if shard.process.is_alive():
                shard.process.kill()
                shard.process.join()
        if shard.ring is not None:
            # Unlink only after the reader process is gone: its mapping stays
            # valid until then, and nobody else can attach by name anymore.
            shard.ring.close()

    def close(self) -> None:
        """Shut every live shard down and reap the subprocesses."""
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            if shard.alive:
                try:
                    self._request(shard, proto.Close())
                except ShardCrashedError:
                    pass
            self._release(shard)
        self._read_plane.close()
        if self._listener is not None:
            self._listener.close()

    def __enter__(self) -> "ShardedService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # data plane
    # ------------------------------------------------------------------ #
    def _send_raw(self, shard: _Shard, data: bytes | memoryview) -> None:
        if not shard.alive:
            raise ShardCrashedError(shard.index)
        started = time.perf_counter() if self._journal_enabled else 0.0
        try:
            if shard.ring is not None:
                # One copy into the shared segment; the shard decodes it in
                # place.  Blocks for acknowledgements while the ring is full,
                # matching sendall's backpressure on a full socket buffer.
                shard.ring.write(data)
            else:
                shard.data_sock.sendall(data)
        except (BrokenPipeError, ConnectionResetError, OSError) as exc:
            shard.dead = True
            raise ShardCrashedError(shard.index, f"shard {shard.index}: {exc}") from exc
        shard.bytes_sent += len(data)
        if self._journal_enabled:
            assert self.journal is not None
            self.journal.record(
                "ring",
                time.perf_counter() - started,
                job=f"shard:{shard.index}",
                started=started,
            )

    @property
    def _journal_enabled(self) -> bool:
        return self.journal is not None

    def ingest_flush(
        self, job: str, flush: FlushRecord, *, payload_format: str = "msgpack"
    ) -> int:
        """Encode one flush as a frame and route it; returns the shard index."""
        frame = encode_frame(flush, job=job, payload_format=payload_format, token=self._token)
        return self.route_raw(RawFrame(job=job, data=frame, token=self._token))

    def route_raw(self, frame: RawFrame) -> int:
        """Route one already-framed message; returns the shard index.

        During a live reshard, a frame whose job is changing owner is
        double-routed — delivered to the old owner (ingested immediately,
        zero pause) and to the new owner's staging buffer — or, on the
        fallback path, parked and replayed after the handover.  The returned
        index is the job's *new* owner either way.
        """
        migration = self._migration
        if migration is not None and migration.moves(frame.job):
            return self._route_moving(migration, frame)
        started = time.perf_counter() if self._journal_enabled else 0.0
        index = self.ring.shard_for(frame.job)
        self._send_raw(self._shards[index], frame.data)
        self._jobs_by_shard[index].add(frame.job)
        if self._journal_enabled:
            assert self.journal is not None
            self.journal.record(
                "route", time.perf_counter() - started, job=frame.job, started=started
            )
        return index

    def _route_moving(self, migration: _Migration, frame: RawFrame) -> int:
        """Route one frame whose job changes owner under ``migration``."""
        new = migration.new_ring.shard_for(frame.job)
        if not migration.staging:
            migration.parked.append(frame)
            return new
        # Materialize: the copy outlives this call (replayed if the staging
        # target dies or the migration rolls back), so it must not borrow
        # ring/splitter memory (see RawFrame).
        data = frame.data if isinstance(frame.data, bytes) else bytes(frame.data)
        copy = RawFrame(job=frame.job, data=data, token=frame.token)
        if not migration.extracted:
            # Pre-extraction: the old owner ingests the frame immediately
            # (and its effect travels inside the extracted state), the new
            # owner stages a twin that CompleteHandover deduplicates away.
            old = migration.old_ring.shard_for(frame.job)
            self._send_raw(self._shards[old], data)
            self._jobs_by_shard[old].add(frame.job)
            migration.dup_counts[frame.job] = migration.dup_counts.get(frame.job, 0) + 1
            migration.routed.append(_RoutedCopy(copy, new, delivered_old=True))
        else:
            # Post-extraction the old owner no longer holds the session —
            # the frame goes to the staging target only, ingested in order
            # at CompleteHandover.
            migration.routed.append(_RoutedCopy(copy, new, delivered_old=False))
        try:
            self._send_raw(self._shards[new], data)
        except ShardCrashedError:
            # The staging target died; the routed copy above is re-sent when
            # the target is respawned and re-armed (_rearm_handover_target).
            pass
        self._double_routed += 1
        return new

    def feed_bytes(self, data: bytes) -> int:
        """Route a shared framed byte stream (socket reads); returns frames routed.

        Frames are classified on the header only and forwarded verbatim; a
        partial trailing frame stays buffered until its bytes arrive.
        """
        self._splitter.feed(data)
        count = 0
        for raw in self._splitter.raw_frames():
            self.route_raw(raw)
            count += 1
        return count

    def tail_file(self, path: str | Path, *, offset: int = 0) -> FrameReader:
        """Tail a framed spool file; each ``poll()`` routes the new frames.

        The reader runs in raw (header-only) mode and follows spool rotation.
        It is remembered so snapshots can record the spool position (auto
        revive replays from it) and ``auto_compact`` can drop the consumed
        prefix.

        With ``ServiceConfig.auto_revive``, a dead shard discovered while
        routing is revived in place.  The revival replay reads the spool from
        the last snapshot position **to its end**, so it already delivers
        every frame of the current poll batch the revived shard owns — those
        frames are therefore skipped (not double-sent) for the rest of the
        batch.
        """

        def route(frames: list[RawFrame]) -> None:
            replayed_by_revival: set[int] = set()
            for raw in frames:
                owner = self.ring.shard_for(raw.job)
                if owner in replayed_by_revival:
                    continue
                try:
                    self.route_raw(raw)
                except ShardCrashedError as crash:
                    if not self._auto_revive_index(crash.shard):
                        raise crash
                    replayed_by_revival.add(crash.shard)

        reader = FrameReader(
            path, offset=offset, sink=route, expected_token=self._token, raw=True
        )
        self._tails[Path(path)] = reader
        return reader

    def spool_positions(self) -> dict[str, dict]:
        """Rotation-proof resume point of every tailed spool (by path)."""
        return tail_positions(self._tails)

    def compact_spools(self) -> dict[str, int]:
        """Compact every tailed spool up to its reader's consumed position."""
        return compact_tails(self._tails)

    # ------------------------------------------------------------------ #
    # control plane
    # ------------------------------------------------------------------ #
    def _control_send(self, shard: _Shard, message: proto.Message) -> None:
        if not shard.alive:
            raise ShardCrashedError(shard.index)
        try:
            shard.control.send_bytes(proto.encode_message(message))
        except (BrokenPipeError, ConnectionResetError, OSError) as exc:
            shard.dead = True
            raise ShardCrashedError(shard.index, f"shard {shard.index}: {exc}") from exc

    def _control_recv(self, shard: _Shard) -> proto.Message:
        try:
            return proto.decode_message(shard.control.recv_bytes())
        except (EOFError, BrokenPipeError, ConnectionResetError, OSError) as exc:
            shard.dead = True
            raise ShardCrashedError(shard.index, f"shard {shard.index}: {exc}") from exc

    def _request(self, shard: _Shard, message: proto.Message) -> proto.Message:
        self._control_send(shard, message)
        response = self._control_recv(shard)
        if isinstance(response, proto.Error):
            raise ServiceError(
                f"shard {shard.index} control request {type(message).__name__} failed: "
                f"{response.message}"
            )
        return response

    def _collect_state(self, shard: _Shard) -> dict:
        """Read one state-bearing reply: a plain reply or a v2 chunk stream."""
        assembler = proto.ChunkAssembler()
        while True:
            response = self._control_recv(shard)
            if isinstance(response, proto.Error):
                raise ServiceError(
                    f"shard {shard.index} state request failed: {response.message}"
                )
            if isinstance(response, proto.SnapshotChunk):
                try:
                    state = assembler.feed(response)
                except ProtocolError:
                    # A torn chunk stream cannot be resynchronized on the
                    # pipe; the shard is unusable from here on.
                    shard.dead = True
                    raise
                if state is not None:
                    return state
                continue
            if isinstance(response, (proto.SnapshotReply, proto.ExtractJobsReply)):
                if assembler.receiving:
                    shard.dead = True
                    raise ProtocolError(
                        f"shard {shard.index} interleaved a "
                        f"{type(response).__name__} into a chunk stream"
                    )
                return response.state
            shard.dead = True
            raise ProtocolError(
                f"unexpected {type(response).__name__} from shard {shard.index} "
                f"while collecting a snapshot state"
            )

    def _request_state(self, shard: _Shard, message: proto.Message) -> dict:
        """Send one state-returning request and collect its (chunked) reply."""
        self._control_send(shard, message)
        return self._collect_state(shard)

    def _send_state(self, shard: _Shard, state: dict, *, kind: str) -> proto.Message:
        """Push one snapshot state into a shard (chunked on v2 pipes).

        ``kind`` is ``"restore"`` (replace, the revive/restore path) or
        ``"merge"`` (fold in without touching resident jobs, the migration
        path).  A version-1 shard only understands the plain
        :class:`~repro.service.protocol.Restore` form, which has replace
        semantics — merging into a v1 peer is a protocol error.
        """
        if shard.protocol_version >= 2:
            for chunk in proto.iter_state_chunks(
                packb(state), kind=kind, max_chunk=proto.DEFAULT_CHUNK_BYTES
            ):
                self._control_send(shard, chunk)
            response = self._control_recv(shard)
            if isinstance(response, proto.Error):
                raise ServiceError(
                    f"shard {shard.index} {kind} transfer failed: {response.message}"
                )
            return response
        if kind != "restore":
            raise ProtocolError(
                f"shard {shard.index} negotiated protocol v{shard.protocol_version}, "
                f"which cannot carry a {kind!r} state transfer"
            )
        return self._request(shard, proto.Restore(state=state))

    def _broadcast(
        self,
        make_message: Callable[[_Shard], proto.Message],
        *,
        only: tuple[int, ...] | None = None,
    ) -> list[proto.Message]:
        """Send one request to every live shard, then collect the replies.

        Requests are written before any reply is awaited, so the shards work
        in parallel — this is what makes ``pump`` scale with the shard count.

        A failure never short-circuits the collection: every shard that was
        sent the request gets its reply consumed (or its death recorded)
        before anything is raised, so the surviving shards' control pipes
        stay request/response-aligned for the next operation.
        """
        live = [
            s for s in self._shards if s.alive and (only is None or s.index in only)
        ]
        crashes: list[ShardCrashedError] = []
        op_errors: list[str] = []
        sent: list[_Shard] = []
        for shard in live:
            message = make_message(shard)
            try:
                shard.control.send_bytes(proto.encode_message(message))
            except (BrokenPipeError, OSError) as exc:
                shard.dead = True
                crashes.append(ShardCrashedError(shard.index, f"shard {shard.index}: {exc}"))
                continue
            sent.append(shard)
        responses: list[proto.Message] = []
        for shard in sent:
            try:
                response = proto.decode_message(shard.control.recv_bytes())
            except (EOFError, OSError) as exc:
                shard.dead = True
                crashes.append(ShardCrashedError(shard.index, f"shard {shard.index}: {exc}"))
                continue
            if isinstance(response, proto.Error):
                op_errors.append(f"shard {shard.index} control request failed: {response.message}")
                continue
            responses.append(response)
        if crashes:
            # Survivors answered; let the caller keep their results (pump
            # publishes them) even though the crash is surfaced.
            crashes[0].partial_responses = responses
            raise crashes[0]
        if op_errors:
            raise ServiceError("; ".join(op_errors))
        return responses

    def _broadcast_states(
        self, make_message: Callable[[_Shard], proto.Message]
    ) -> list[dict]:
        """Send a state-returning request to every live shard, collect states.

        Requests are written before any reply is collected (the shards
        serialize their states in parallel), and — like :meth:`_broadcast` —
        every shard that was sent the request gets its reply consumed before
        anything raises, so surviving pipes stay request/response-aligned.
        """
        live = [s for s in self._shards if s.alive]
        crashes: list[ShardCrashedError] = []
        op_errors: list[str] = []
        sent: list[_Shard] = []
        for shard in live:
            try:
                self._control_send(shard, make_message(shard))
            except ShardCrashedError as crash:
                crashes.append(crash)
                continue
            sent.append(shard)
        states: list[dict] = []
        for shard in sent:
            try:
                states.append(self._collect_state(shard))
            except ShardCrashedError as crash:
                crashes.append(crash)
            except ServiceError as exc:
                if shard.alive:
                    op_errors.append(str(exc))
                else:
                    crashes.append(ShardCrashedError(shard.index, str(exc)))
        if crashes:
            raise crashes[0]
        if op_errors:
            raise ServiceError("; ".join(op_errors))
        return states

    def _publish_updates(self, responses: list[proto.Message]) -> None:
        for response in responses:
            for entry in getattr(response, "updates", ()):
                self.publisher.publish(PredictionUpdate.from_dict(entry))

    def pump(self, *, shards: tuple[int, ...] | None = None) -> int:
        """Evaluate every due session on every shard (in parallel).

        Returns the total number of submitted evaluations; every resulting
        prediction is re-published through the parent-side :attr:`publisher`.
        ``shards`` restricts the pump to the given shard indices (recovery
        replay pumps only the revived shard).

        With ``ServiceConfig.auto_revive``, dead shards — whether discovered
        right here or on an earlier data-plane send — are transparently
        revived from the last :meth:`snapshot_state` snapshot (plus the
        recorded spool tails) before and during the pump, up to
        ``ServiceConfig.revive_budget`` times over the service's lifetime;
        a dead shard that cannot be revived anymore raises instead of being
        silently skipped.
        """
        self._revive_or_raise(only=shards)
        total = 0
        only = shards
        while True:
            try:
                responses = self._broadcast_publishing(
                    lambda shard: proto.Pump(expected_bytes=shard.bytes_sent), shards=only
                )
                return total + sum(r.submitted for r in responses)  # type: ignore[attr-defined]
            except ShardCrashedError as crash:
                # Survivors' counts were published with their updates; keep
                # them so the retry only adds the revived shards' work.
                total += sum(
                    getattr(r, "submitted", 0) for r in crash.partial_responses
                )
                revived = self._revive_or_raise(only=shards)
                if not revived:
                    raise
                only = revived

    def drain(self) -> None:
        """Pump every shard until nothing is due and nothing is in flight."""
        self._revive_or_raise()
        while True:
            try:
                self._broadcast_publishing(
                    lambda shard: proto.Drain(expected_bytes=shard.bytes_sent)
                )
                return
            except ShardCrashedError:
                if not self._revive_or_raise():
                    raise

    def finish_job(self, job: str) -> None:
        """Mark ``job`` finished on the shard that owns it."""
        self._request(self._shards[self.ring.shard_for(job)], proto.FinishJob(job=job))

    def reap_finished(self, *, forget_predictions: bool = False) -> tuple[str, ...]:
        """Release finished, fully evaluated sessions on every shard.

        The sharded mirror of :meth:`~repro.service.service.PredictionService.
        reap_finished`.  By default a reaped job keeps its last prediction,
        so it stays tracked for future migrations (the publisher entry still
        has an owner); with ``forget_predictions=True`` the job disappears
        entirely and is dropped from the routing bookkeeping too.  Returns
        the reaped job identifiers, all shards pooled, sorted.
        """
        replies = self._broadcast(lambda shard: proto.ReapFinished(
            forget_predictions=forget_predictions
        ))
        reaped: list[str] = []
        for reply in replies:
            if not isinstance(reply, proto.ReapFinishedReply):
                raise ServiceError(
                    f"expected ReapFinishedReply, got {type(reply).__name__}"
                )
            reaped.extend(reply.jobs)
        if forget_predictions:
            for job in reaped:
                for jobs in self._jobs_by_shard:
                    jobs.discard(job)
        return tuple(sorted(reaped))

    # ------------------------------------------------------------------ #
    # elastic resharding
    # ------------------------------------------------------------------ #
    @property
    def reshards(self) -> int:
        """Number of completed live reshards."""
        return self._reshards

    @property
    def sessions_moved(self) -> int:
        """Total sessions migrated across all completed reshards."""
        return self._sessions_moved

    @property
    def resharding(self) -> bool:
        """Whether a live reshard is in progress (frames may be parked)."""
        return self._migration is not None

    @property
    def double_routed_frames(self) -> int:
        """Frames double-routed to old and new owners across all handovers."""
        return self._double_routed

    @property
    def last_snapshot(self) -> dict | None:
        """The last merged snapshot taken (the auto-revive recovery point)."""
        return self._last_snapshot

    def reshard(
        self,
        n_shards: int,
        *,
        weights: tuple[float, ...] | list[float] | None = None,
        placement: list[str] | tuple[str, ...] | None = None,
        on_phase: Callable[[str], None] | None = None,
        double_route: bool = True,
    ) -> dict:
        """Live-resize the service to ``n_shards`` worker shards.

        The operation is a minimal-movement migration: thanks to the
        consistent hash ring, only the jobs whose arc changes owner move.
        ``weights`` re-weights the new ring (same-count reshards with new
        weights rebalance arcs in place).  ``placement`` assigns each slot of
        the new topology to ``"local"`` or ``"remote"`` (dial-home adoption,
        see the constructor) — newly spawned slots honor it immediately;
        existing live slots keep their current worker and adopt the new
        placement only on a later revive.  Phase by phase (``on_phase``
        receives each name — an observability / fault-injection hook):

        1. ``spawned`` (growing) — the new shard subprocesses are up and
           handshaken before anything else: a double-routed frame may target
           them immediately.
        2. ``parked`` — every shard of the new topology has acknowledged
           :class:`~repro.service.protocol.BeginHandover` and, from here on,
           a frame routed for a moving job is *double-routed*: the old owner
           ingests it immediately (zero pause) and the new owner stages a
           twin for deduplicated replay.  With ``double_route=False`` (or a
           protocol-v1 target) the frame is parked in the migration buffer
           instead — the pre-handover baseline the benchmark compares
           against.  The phase keeps its historical name; either way the
           migration is armed from here.
        3. ``extracted`` — every moving job's session + publisher state has
           been captured *and removed* from its source shard
           (:class:`~repro.service.protocol.ExtractJobs` drains the source's
           data socket to the router's byte mark first, so no in-flight
           frame is lost).  Frames arriving later are delivered to the
           staging target only.
        4. ``switched`` — the hash ring now answers with the new topology.
        5. ``retired`` (shrinking) — the now-empty trailing shards are shut
           down and reaped.
        6. ``transferred`` — the extracted sessions were merged into their
           new owners over the protocol-v2 chunked snapshot transfer.  A
           target killed mid-transfer is respawned, re-armed, its staged
           frames re-sent from the router's copies, and the transfer
           repeated (the state is still in the router's hands) when it held
           no other sessions; otherwise the crash surfaces as
           :class:`~repro.exceptions.ShardCrashedError` for the ordinary
           snapshot-revive path.
        7. ``replayed`` — each target deduplicated and ingested its staged
           frames (:class:`~repro.service.protocol.CompleteHandover`); on
           the fallback path the router replayed the parked frames, in
           arrival order, against the new topology.

        The end state is bit-identical to having ingested the same stream at
        ``n_shards`` from scratch.  Returns a summary dict (``from_shards``,
        ``to_shards``, ``moved_jobs``, ``moved_sessions``,
        ``replayed_frames``, ``double_routed_frames``).
        """
        if self._closed:
            raise ServiceError("cannot reshard a closed service")
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if weights is not None and len(weights) != n_shards:
            raise ValueError(
                f"weights must have one entry per shard ({n_shards}), got {len(weights)}"
            )
        new_placement = (
            None if placement is None else self._check_placement(placement, n_shards)
        )
        if self._migration is not None:
            raise ServiceError("a reshard is already in progress")
        user_notify = on_phase if on_phase is not None else (lambda phase: None)
        if self.metrics is not None:
            # Each phase's duration is the gap since the previous boundary;
            # the labelled histogram makes slow phases visible per name.
            phase_clock = [time.perf_counter()]

            def notify(phase: str) -> None:
                now = time.perf_counter()
                assert self.metrics is not None
                self.metrics.histogram(
                    "repro_reshard_phase_seconds",
                    {"phase": phase},
                    help="Duration of each live-reshard phase",
                ).observe(now - phase_clock[0])
                phase_clock[0] = now
                user_notify(phase)
        else:
            notify = user_notify
        old_count = self.n_shards
        requested_weights = None if weights is None else tuple(float(w) for w in weights)
        summary = {
            "from_shards": old_count,
            "to_shards": n_shards,
            "moved_jobs": (),
            "moved_sessions": 0,
            "replayed_frames": 0,
            "double_routed_frames": 0,
        }
        if n_shards == old_count and requested_weights == self.ring.weights:
            return summary
        # Migration reads from every source shard: heal (or surface) dead
        # shards before any state moves.
        self._revive_or_raise()
        dead = self.dead_shards()
        if dead:
            raise ShardCrashedError(
                dead[0], f"shard {dead[0]} is dead; revive it before resharding"
            )
        migration = _Migration(
            old_ring=self.ring,
            new_ring=HashRing(
                n_shards, replicas=self.ring.replicas, weights=requested_weights
            ),
        )
        moved_sessions = 0
        moved_jobs: list[str] = []
        moved_states: list[dict] = []
        old_placement = self._placement
        if new_placement is not None:
            self._placement = new_placement
        else:
            self._placement = (self._placement + ["local"] * n_shards)[:n_shards]
        try:
            # New shards come up before the migration is armed: a
            # double-routed frame may target them the moment routing for
            # moving jobs changes.  Frames keep flowing per the old ring
            # while they spawn.
            for index in range(old_count, n_shards):
                self._shards.append(self._spawn(index))
                self._jobs_by_shard.append(set())
            if n_shards > old_count:
                notify("spawned")
            if double_route and all(
                self._shards[i].protocol_version >= 2 for i in range(n_shards)
            ):
                for index in range(n_shards):
                    self._arm_handover_target(index, migration)
                migration.handover_targets = set(range(n_shards))
                migration.staging = True
            self._migration = migration
            notify("parked")
            # Extract the moving sessions from their sources.  Consistent
            # hashing means only one direction actually moves (to the new
            # shards on a grow, off the retiring shards on a shrink), but
            # the per-shard predicate needs no case analysis: the moving
            # set is simply non-empty only where it should be.  sorted()
            # keeps the extraction order independent of Python's
            # seed-randomized set iteration order.
            for index in range(old_count):
                moving = sorted(
                    job for job in self._jobs_by_shard[index] if migration.moves(job)
                )
                if not moving:
                    continue
                shard = self._shards[index]
                state = self._request_state(
                    shard,
                    proto.ExtractJobs(
                        jobs=tuple(moving),
                        expected_bytes=shard.bytes_sent,
                        max_chunk=(
                            proto.DEFAULT_CHUNK_BYTES
                            if shard.protocol_version >= 2
                            else None
                        ),
                    ),
                )
                moved_states.append(state)
                moved_jobs.extend(moving)
                self._jobs_by_shard[index].difference_update(moving)
            # From here on the old owners no longer hold the moving sessions:
            # a frame arriving for a moving job (even a brand-new job id)
            # goes to its staging target only.
            migration.extracted = True
            notify("extracted")
            # Ring first, shard list second: between the two steps the shard
            # list is a *superset* of what the ring routes to, so a failure
            # at any point leaves every ring-reachable index valid (the
            # rollback below reconciles the surplus).
            self.ring = migration.new_ring
            notify("switched")
            if n_shards < old_count:
                for shard in self._shards[n_shards:]:
                    if shard.alive:
                        try:
                            self._request(shard, proto.Close())
                        except ShardCrashedError:
                            pass
                    self._release(shard)
                del self._shards[n_shards:]
                del self._jobs_by_shard[n_shards:]
                notify("retired")
            if moved_states:
                per_target = split_state(
                    merge_states(moved_states), self.ring.shard_for, n_shards
                )
                for target, shard_state in enumerate(per_target):
                    publisher = shard_state["publisher"]
                    if not (
                        shard_state["sessions"]
                        or publisher["latest"]
                        or publisher["latest_period"]
                    ):
                        continue
                    self._transfer_state(target, shard_state)
                    moved_sessions += len(shard_state["sessions"])
                    self._jobs_by_shard[target].update(self._state_jobs(shard_state))
            # A shard killed mid-migration while holding nothing (typically a
            # freshly spawned target whose incoming bucket turned out empty)
            # is respawned for free — nothing was lost with it (its staged
            # frames are re-sent from the router's copies), and the handover
            # completion below must find every owner alive.
            for index, shard in enumerate(self._shards):
                if not shard.alive and not self._jobs_by_shard[index]:
                    self._release(shard)
                    self._shards[index] = self._spawn(index)
                    self._rearm_handover_target(index, migration)
            notify("transferred")
        except BaseException:
            self._migration = None
            self._placement = old_placement[: self.ring.n_shards]
            # Reconcile the shard list with whichever ring the failure left
            # in charge: any shard beyond the ring's range (fresh spawns of
            # a failed grow, drained sources of a failed shrink) is released
            # — it owns nothing the ring can still route to, and keeping it
            # would make n_shards lie and a retried resize short-circuit as
            # a same-count no-op.
            surplus = self._shards[self.ring.n_shards :]
            del self._shards[self.ring.n_shards :]
            del self._jobs_by_shard[self.ring.n_shards :]
            for shard in surplus:
                self._release(shard)
            # The extracted sessions are still in the router's hands — push
            # them back to whichever ring the failure left in charge.  A
            # "merge" transfer is an idempotent overwrite, so states whose
            # handover already succeeded are simply rewritten in place.
            if moved_states:
                per_target = split_state(
                    merge_states(moved_states),
                    self.ring.shard_for,
                    self.ring.n_shards,
                )
                for target, shard_state in enumerate(per_target):
                    if not self._state_jobs(shard_state):
                        continue
                    # Per target, not around the loop: one dead target must
                    # not discard the sessions the live ones can still take.
                    try:
                        self._send_state(self._shards[target], shard_state, kind="merge")
                    except ServiceError:  # pragma: no cover - double fault
                        continue
                    self._jobs_by_shard[target].update(self._state_jobs(shard_state))
            # Resolve the armed handover against whichever ring survived:
            # with the new ring in charge the staged frames are completed in
            # place (deduplicated and ingested — they are the only copies of
            # the post-extraction stream); with the old ring back in charge
            # they are discarded and the router re-delivers, from its own
            # copies, exactly the frames the old owners never saw.
            if migration.staging:
                in_charge = set(range(self.ring.n_shards))
                if self.ring is migration.new_ring:
                    self._complete_handover(migration, best_effort=True)
                else:
                    for index in sorted(migration.handover_targets & in_charge):
                        shard = self._shards[index]
                        if not shard.alive:
                            continue
                        try:
                            self._request(
                                shard,
                                proto.AbortHandover(expected_bytes=shard.bytes_sent),
                            )
                        except (ShardCrashedError, ServiceError):
                            continue  # pragma: no cover - double fault
                    for record in migration.routed:
                        if record.delivered_old:
                            continue
                        try:
                            self.route_raw(record.frame)
                        except Exception:  # pragma: no cover - double fault
                            break
            # Park no further; push whatever was parked toward the current
            # ring so the frames are not silently dropped, then surface the
            # original failure.
            for frame in migration.parked:
                try:
                    self.route_raw(frame)
                except Exception:  # pragma: no cover - double fault
                    break
            raise
        self._migration = None
        if migration.staging:
            replayed = self._complete_handover(migration)
        else:
            replayed = 0
            for frame in migration.parked:
                self.route_raw(frame)
                replayed += 1
        notify("replayed")
        self._reshards += 1
        self._sessions_moved += moved_sessions
        summary.update(
            moved_jobs=tuple(moved_jobs),
            moved_sessions=moved_sessions,
            replayed_frames=replayed,
            double_routed_frames=len(migration.routed),
        )
        return summary

    def _arm_handover_target(self, index: int, migration: _Migration) -> None:
        """Send :class:`~repro.service.protocol.BeginHandover` to one shard."""
        reply = self._request(
            self._shards[index],
            proto.BeginHandover(
                shard=index,
                old_shards=migration.old_ring.n_shards,
                new_shards=migration.new_ring.n_shards,
                replicas=migration.new_ring.replicas,
                old_weights=migration.old_ring.weights,
                new_weights=migration.new_ring.weights,
            ),
        )
        if not isinstance(reply, proto.BeginHandoverReply):
            raise ServiceError(
                f"shard {index} answered BeginHandover with {type(reply).__name__}"
            )

    def _rearm_handover_target(
        self, index: int, migration: _Migration | None = None
    ) -> None:
        """Re-arm a respawned staging target and re-send its staged frames.

        A kill-9'd target took its staging buffer with it, but the router
        kept a copy of every double-routed frame: after the respawn the
        target is re-armed and the copies re-sent in original arrival order,
        so the later :class:`~repro.service.protocol.CompleteHandover` (with
        the unchanged per-job duplicate counts) deduplicates and ingests
        exactly what it would have.
        """
        migration = migration if migration is not None else self._migration
        if (
            migration is None
            or not migration.staging
            or index not in migration.handover_targets
        ):
            return
        self._arm_handover_target(index, migration)
        shard = self._shards[index]
        for record in migration.routed:
            if record.target == index:
                self._send_raw(shard, record.frame.data)

    def _complete_handover(
        self, migration: _Migration, *, best_effort: bool = False
    ) -> int:
        """Finish an armed handover on every target; returns frames ingested.

        Each target drains its data plane to the router's byte mark, drops
        the per-job duplicate prefix of its staging buffer (frames whose
        effect arrived inside the merged session state) and ingests the
        rest in arrival order.  ``best_effort`` (the rollback path) skips
        dead targets instead of raising.
        """
        replayed = 0
        reachable = set(range(self.n_shards))
        for index in sorted(migration.handover_targets & reachable):
            shard = self._shards[index]
            drops = {
                job: count
                for job, count in migration.dup_counts.items()
                if self.ring.shard_for(job) == index
            }
            try:
                reply = self._request(
                    shard,
                    proto.CompleteHandover(
                        expected_bytes=shard.bytes_sent, drop_counts=drops
                    ),
                )
            except (ShardCrashedError, ServiceError):
                if best_effort:
                    continue
                raise
            replayed += getattr(reply, "replayed", 0)
        # Every double-routed job is resident at its new owner now (the
        # staged stream or the merged state carried it there).
        for record in migration.routed:
            if record.target in reachable:
                self._jobs_by_shard[record.target].add(record.frame.job)
        return replayed

    def _transfer_state(self, index: int, state: dict) -> None:
        """Merge ``state`` into shard ``index``, surviving a mid-transfer kill."""
        try:
            self._send_state(self._shards[index], state, kind="merge")
            return
        except ShardCrashedError:
            # The migrating state is still in the router's hands, so a
            # target that held nothing else is simply respawned and the
            # transfer repeated.  One that already owned sessions lost them
            # with the crash — that is the ordinary crash-recovery path
            # (snapshot + spool replay), not something to paper over here.
            if self._jobs_by_shard[index]:
                raise
        self._release(self._shards[index])
        self._shards[index] = self._spawn(index)
        self._rearm_handover_target(index)
        self._send_state(self._shards[index], state, kind="merge")

    @staticmethod
    def _state_jobs(state: dict) -> set[str]:
        """Every job a snapshot state carries — sessions *and* publisher-only
        entries (a reaped job keeps its last prediction; it must stay tracked
        so a later reshard still migrates that entry with its owner)."""
        publisher = state.get("publisher", {})
        return (
            {str(session["job"]) for session in state["sessions"]}
            | {str(job) for job in publisher.get("latest", {})}
            | {str(job) for job in publisher.get("latest_period", {})}
        )

    def _auto_revive_index(self, index: int) -> bool:
        """Revive one dead shard from the last snapshot, if policy allows.

        The replay covers **every** tailed spool, each bounded at the parent
        tail's consumed position — frames past that mark have not been routed
        yet and will arrive through the normal poll path.
        """
        if not self.config.auto_revive or self._closed:
            return False
        if self._auto_revives >= self.config.revive_budget:
            return False
        if self._shards[index].alive:  # pragma: no cover - already recovered
            return False
        self._auto_revives += 1
        self.revive_shard(index, state=self._last_snapshot)
        for path, reader in self._tails.items():
            snapshot_position = self._snapshot_positions.get(path)
            parent_position = reader.position
            limit: int | None = None
            start_offset = 0 if snapshot_position is None else int(snapshot_position["offset"])
            same_inode = (
                snapshot_position is None
                or snapshot_position["inode"] == parent_position["inode"]
            )
            # A byte bound is only meaningful within one spool generation; a
            # rotation in between falls back to replay-to-EOF (PR-3 semantics).
            bounded = parent_position["inode"] is not None and same_inode
            if bounded and not self._has_generations(path):
                limit = max(0, int(parent_position["offset"]) - start_offset)
            self._replay_spool(index, path, spool_position=snapshot_position, limit=limit)
        return True

    @staticmethod
    def _has_generations(path: Path) -> bool:
        prefix = path.name + "."
        return any(
            candidate.name[len(prefix):].isdigit()
            for candidate in path.parent.glob(prefix + "*")
        )

    def _revive_or_raise(self, *, only: tuple[int, ...] | None = None) -> tuple[int, ...]:
        """Auto-revive every (eligible) dead shard; raise when one cannot be.

        With ``auto_revive`` off this is a no-op (dead shards are skipped
        silently, the PR-3 contract); with it on, a dead shard that cannot be
        healed — budget exhausted — surfaces as :class:`ShardCrashedError`
        instead of silently dropping its work.
        """
        if not self.config.auto_revive or self._closed:
            return ()
        revived: list[int] = []
        for index in self.dead_shards():
            if only is not None and index not in only:
                continue
            if self._auto_revive_index(index):
                revived.append(index)
            else:
                raise ShardCrashedError(
                    index, f"shard {index} is dead and the auto-revive budget is exhausted"
                )
        return tuple(revived)

    def _broadcast_publishing(
        self,
        make_message: Callable[[_Shard], proto.Message],
        *,
        shards: tuple[int, ...] | None = None,
    ) -> list[proto.Message]:
        """Broadcast an update-bearing request; publish results even on a crash."""
        try:
            responses = self._broadcast(make_message, only=shards)
        except ShardCrashedError as crash:
            self._publish_updates(getattr(crash, "partial_responses", []))
            raise
        self._publish_updates(responses)
        return responses

    # ------------------------------------------------------------------ #
    # aggregated introspection
    # ------------------------------------------------------------------ #
    def _stats_responses(self) -> list[dict]:
        return [
            response.stats  # type: ignore[attr-defined]
            for response in self._broadcast(lambda shard: proto.Stats())
        ]

    @property
    def jobs(self) -> tuple[str, ...]:
        """Every job seen by any shard (grouped by shard, ingestion order)."""
        jobs: list[str] = []
        for stats in self._stats_responses():
            jobs.extend(stats["jobs"])
        return tuple(jobs)

    @property
    def broker_stats(self) -> BrokerStats:
        """Ingestion counters aggregated over all shards."""
        return BrokerStats.merge(
            BrokerStats(**stats["broker"]) for stats in self._stats_responses()
        )

    @property
    def dispatcher_stats(self) -> DispatcherStats:
        """Dispatch counters aggregated over all shards."""
        return DispatcherStats.merge(
            DispatcherStats(**stats["dispatcher"]) for stats in self._stats_responses()
        )

    def latency_percentile(self, q: float) -> float | None:
        """Detection-latency percentile over all shards' recent windows."""
        return self._percentile(self._stats_responses(), q)

    @staticmethod
    def _percentile(stats_list: list[dict], q: float) -> float | None:
        """Cross-shard latency percentile, merged without window bias.

        When every shard ships its detection-latency histogram (metrics on),
        the histograms are merged bucket-wise and the quantile read from the
        merged distribution: each shard contributes *every* detection it ever
        ran, weighted by volume.  Pooling the bounded recent-latency windows
        instead (the pre-histogram behavior, kept as the metrics-off
        fallback) caps each shard at ``latency_window`` samples regardless of
        how many detections it served, which skews the aggregate toward the
        low-volume shards' tails (``tests/service/test_stats_schema.py``
        pins the unbiased merge).
        """
        hist_states = [stats.get("detect_hist") for stats in stats_list]
        if stats_list and all(state is not None for state in hist_states):
            merged = Histogram.from_dict(hist_states[0])
            for state in hist_states[1:]:
                merged = merged.merge(Histogram.from_dict(state))
            if merged.count == 0:
                return None
            return float(merged.quantile(q / 100.0))
        latencies = [latency for stats in stats_list for latency in stats["latencies"]]
        if not latencies:
            return None
        return float(np.percentile(np.asarray(latencies), q))

    def stats(self) -> dict:
        """One JSON-friendly dict of service-wide counters, summed over shards.

        Includes the merged p50/p99 detection latencies — everything comes
        from a single control round trip, so callers wanting several views
        (the benchmark does) pay one broadcast, not one per accessor.
        """
        return self._stats_totals(self._stats_responses())

    def _stats_totals(self, stats_list: list[dict]) -> dict:
        totals: dict = {
            "shards": self.n_shards,
            "dead_shards": len(self.dead_shards()),
            "revived_shards": self._auto_revives,
            "reshards": self._reshards,
            "sessions_moved": self._sessions_moved,
            "resharding_in_progress": self._migration is not None,
            "double_routed_frames": self._double_routed,
        }
        for stats in stats_list:
            for key, value in stats["service"].items():
                if isinstance(value, (int, float)):
                    totals[key] = totals.get(key, 0) + value
        totals["published"] = self.publisher.published
        totals["p50_detection_latency_seconds"] = self._percentile(stats_list, 50.0)
        totals["p99_detection_latency_seconds"] = self._percentile(stats_list, 99.0)
        return totals

    # ------------------------------------------------------------------ #
    # read plane: stats/metrics/liveness without touching the control pipe
    # ------------------------------------------------------------------ #
    def _read_stats_responses(self) -> list[dict]:
        responses: list[dict] = []
        for shard in self._shards:
            if not shard.alive or shard.read is None:
                continue
            try:
                reply = self._read_plane.request(
                    shard.index, proto.Stats(), timeout=self._remote_timeout
                )
            except ShardCrashedError:
                shard.dead = True
                raise
            if not isinstance(reply, proto.StatsReply):
                raise ProtocolError(
                    f"shard {shard.index} answered Stats with "
                    f"{type(reply).__name__} on the read plane"
                )
            responses.append(reply.stats)
        return responses

    def read_stats(self) -> dict:
        """:meth:`stats`, served by the shards' read planes.

        Same schema, different path: each shard's dedicated read thread
        answers, so the aggregation never queues behind a pump in flight on
        the control pipe — the PR-4 "reads served from shards" path the
        gateway and ops surface use.  The counters reflect what each shard
        has ingested *so far* (no ``expected_bytes`` barrier), exactly like
        a scrape of a single-process service racing its ingest loop.
        """
        return self._stats_totals(self._read_stats_responses())

    def read_metrics_snapshot(self) -> dict:
        """:meth:`metrics_snapshot`, served by the shards' read planes.

        Best-effort like its control-plane twin: a shard that died or timed
        out is skipped — a scrape must never take the router down.
        """
        if self.metrics is None:
            return {}
        snapshots = [self.metrics.collect()]
        for shard in self._shards:
            if not shard.alive or shard.read is None:
                continue
            try:
                reply = self._read_plane.request(
                    shard.index, proto.MetricsReport(), timeout=self._remote_timeout
                )
            except (ShardCrashedError, ServiceError, TimeoutError):
                continue
            metrics = getattr(reply, "metrics", None)
            if metrics:
                snapshots.append(metrics)
        return merge_snapshots(snapshots)

    def subscribe_read_events(
        self, callback: Callable[[PredictionUpdate], None]
    ) -> None:
        """Stream shard-side predictions straight off the read plane.

        ``callback`` fires on the read plane's drain thread for every
        prediction any shard publishes — without waiting for the router to
        pump (the control-plane path batches updates into ``PumpReply``).
        Shards spawned later (revives, reshard growth) are subscribed
        automatically.
        """
        self._read_plane.subscribe(
            lambda _index, update: callback(PredictionUpdate.from_dict(update))
        )
        self._read_events_active = True
        for shard in self._shards:
            if not shard.alive or shard.read is None:
                continue
            try:
                self._read_plane.request(
                    shard.index, proto.Subscribe(), timeout=self._remote_timeout
                )
            except (ShardCrashedError, ServiceError, TimeoutError):
                continue

    def heartbeat(self, timeout: float | None = None) -> dict[int, float | None]:
        """Probe every live shard's read plane; returns RTT by shard index.

        The liveness generalization the federation needs: ``waitpid`` only
        sees a *local* child die, but a heartbeat timeout convicts any
        unresponsive worker — a kill-9'd remote (connection reset), a
        network partition, or a process that still holds its sockets while
        wedged (SIGSTOP, runaway native code).  A convicted shard is marked
        dead so the ordinary revive machinery replaces it; an answering
        shard's RTT feeds the ``repro_heartbeat_rtt_seconds`` histogram.

        All probes are launched before any reply is awaited, so the total
        wall time is one ``timeout`` (default
        ``ServiceConfig.heartbeat_timeout``), not one per shard.
        """
        timeout = self.config.heartbeat_timeout if timeout is None else float(timeout)
        rtts: dict[int, float | None] = {}
        probes: list[tuple[_Shard, int]] = []
        acquired: list[threading.Lock] = []
        try:
            for shard in self._shards:
                if not shard.alive or shard.read is None:
                    continue
                try:
                    lock = self._read_plane.request_lock(shard.index)
                except ShardCrashedError:
                    continue
                # Hold the per-shard request mutex from send to collect so a
                # concurrent read_stats() can never steal the reply.  Locks
                # are taken in index order; every other path holds only one.
                lock.acquire()
                acquired.append(lock)
                self._heartbeat_seq += 1
                seq = self._heartbeat_seq
                try:
                    self._read_plane.send(
                        shard.index,
                        proto.Heartbeat(seq=seq, sent_at=time.monotonic()),
                    )
                except ShardCrashedError:
                    shard.dead = True
                    rtts[shard.index] = None
                    continue
                probes.append((shard, seq))
            deadline = time.monotonic() + timeout
            for shard, seq in probes:
                rtt: float | None = None
                while True:
                    remaining = deadline - time.monotonic()
                    try:
                        reply = self._read_plane.collect(
                            shard.index, timeout=max(0.0, remaining)
                        )
                    except (TimeoutError, ShardCrashedError):
                        break
                    if isinstance(reply, proto.HeartbeatReply) and reply.seq == seq:
                        # The echoed sent_at is this process's own monotonic
                        # clock: RTT needs no cross-host clock agreement.
                        rtt = time.monotonic() - reply.sent_at
                        break
                    # A stale reply from an earlier timed-out probe: skip it.
                if rtt is None:
                    shard.dead = True
                    shard.unresponsive = True
                    rtts[shard.index] = None
                else:
                    rtts[shard.index] = rtt
                    if self.metrics is not None:
                        self.metrics.histogram(
                            "repro_heartbeat_rtt_seconds",
                            {"shard": str(shard.index)},
                            help="Round-trip time of shard read-plane heartbeats",
                        ).observe(rtt)
        finally:
            for lock in acquired:
                lock.release()
        return rtts

    def shard_details(self) -> list[dict]:
        """Per-shard view for dashboards: liveness, session count, bytes routed.

        Unlike :meth:`stats` this never raises on a dead shard — the dead
        entry simply reports ``alive: False`` with the router-side counters
        it still knows (jobs routed, bytes sent).  Remote shards additionally
        carry the identity they registered at dial-home.
        """
        details = []
        for shard in self._shards:
            entry: dict = {
                "shard": shard.index,
                "alive": shard.alive,
                "remote": shard.remote,
                "jobs": len(self._jobs_by_shard[shard.index]),
                "bytes_sent": shard.bytes_sent,
            }
            if shard.remote:
                entry["worker"] = {
                    "name": shard.name,
                    "host": shard.host,
                    "pid": shard.pid,
                    "weight": shard.weight,
                }
            if shard.ring is not None:
                entry["ring_occupancy_bytes"] = shard.ring.occupancy
                entry["ring_stalls"] = shard.ring.stalls
            details.append(entry)
        return details

    def metrics_snapshot(self) -> dict:
        """Merged metric tree: router registry + every live shard's registry.

        Shards are polled with an empty :class:`~repro.service.protocol.
        MetricsReport` on the control pipe and reply with their
        :meth:`~repro.obs.MetricRegistry.collect` trees; histograms merge
        bucket-wise (:func:`repro.obs.merge_snapshots`), so cross-shard
        quantiles are as good as single-process ones.  A shard that died is
        skipped — a scrape must never take the router down.  Empty when
        ``ServiceConfig.metrics`` is off.
        """
        if self.metrics is None:
            return {}
        snapshots = [self.metrics.collect()]
        try:
            responses = self._broadcast(lambda shard: proto.MetricsReport())
        except ShardCrashedError as crash:
            responses = list(getattr(crash, "partial_responses", []))
        for response in responses:
            metrics = getattr(response, "metrics", None)
            if metrics:
                snapshots.append(metrics)
        return merge_snapshots(snapshots)

    def spans_snapshot(self) -> list[dict]:
        """Recent router-side spans (empty unless ``ServiceConfig.spans``)."""
        if self.journal is None:
            return []
        return self.journal.snapshot()

    def period_provider(self, *, bootstrap: bool = True):
        """A Set-10 ``PeriodProvider`` backed by the merged parent publisher."""
        from repro.service.provider import ServicePeriodProvider

        return ServicePeriodProvider(self, bootstrap=bootstrap)

    # ------------------------------------------------------------------ #
    # snapshot / restore
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> dict:
        """Merged snapshot of all shards (single-process snapshot schema).

        The result round-trips through :func:`repro.service.snapshot.
        restore_state` (one big service) and :meth:`restore_state` (any shard
        count) alike.  The snapshot (plus each tailed spool's position) is
        remembered as the auto-revive recovery point, and with
        ``ServiceConfig.auto_compact`` every tailed spool is compacted up to
        the position this snapshot covers.
        """
        states = self._broadcast_states(
            lambda shard: proto.Snapshot(
                expected_bytes=shard.bytes_sent,
                max_chunk=proto.DEFAULT_CHUNK_BYTES if shard.protocol_version >= 2 else None,
            )
        )
        merged = merge_states(states)
        merged["sharding"] = {
            "n_shards": self.n_shards,
            "replicas": self.ring.replicas,
            "weights": None if self.ring.weights is None else list(self.ring.weights),
        }
        self._last_snapshot = merged
        self._snapshot_positions = {
            path: reader.position for path, reader in self._tails.items()
        }
        if self.config.auto_compact:
            compacted = self.compact_spools()
            # Compaction rewrote the spools under new inodes; re-anchor the
            # recorded positions on the compacted files (whose byte 0 is
            # exactly the first post-snapshot byte of each compacted spool).
            for path, reader in self._tails.items():
                if str(path) in compacted and path.exists():
                    self._snapshot_positions[path] = {
                        "inode": os.stat(path).st_ino,
                        "offset": reader.position["offset"],
                    }
        return merged

    def restore_state(self, state: dict) -> None:
        """Load a merged snapshot: each shard receives the sessions it owns."""
        check_snapshot_version(state)
        per_shard = split_state(state, self.ring.shard_for, self.n_shards)
        for shard, shard_state in zip(self._shards, per_shard):
            self._send_state(shard, shard_state, kind="restore")
            # Update, never replace: apply_state leaves sessions the shard
            # holds for *other* jobs resident, so those must stay tracked or
            # a later reshard would silently skip extracting them.
            self._jobs_by_shard[shard.index].update(self._state_jobs(shard_state))
        self.publisher.load_state_dict(state["publisher"])
