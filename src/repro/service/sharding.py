"""Sharded multi-process prediction service.

One :class:`~repro.service.service.PredictionService` scales to hundreds of
jobs in a single process, but its detections all share one GIL and one crash
domain.  :class:`ShardedService` scales the service *out*: job ids are
consistent-hashed onto N worker shards, each shard runs a full service
(broker + dispatcher + publisher) in its own subprocess, and the parent acts
as a thin router:

* **data plane** — every shard is fed over a ``socketpair`` carrying ordinary
  FTS1 frames (:mod:`repro.trace.framing`).  The router classifies frames
  from the header alone (:class:`~repro.trace.framing.FrameSplitter`) and
  forwards the raw bytes; a payload is decoded exactly once, inside the shard
  that owns the job — the same header-only property the single-process
  broker has, preserved across the process boundary.
* **control plane** — a ``multiprocessing`` pipe per shard carries small
  request/response messages: pump, stats, snapshot, restore, close.  Because
  data and control travel on different channels, every control request that
  depends on the data stream carries the router's byte count and the shard
  drains its socket up to that mark first — the two planes are re-ordered
  deterministically.

Sessions are already independent and lock-isolated, so sharding changes no
prediction: the ``shards=N`` service is bit-identical to the single-process
one on the same input (asserted by ``tests/service/test_sharding.py``).

Crash recovery composes out of existing pieces: shard death is detected on
the control channel (:class:`~repro.exceptions.ShardCrashedError`), the lost
shard's sessions are restored from the last merged snapshot
(:func:`~repro.service.snapshot.split_state`), and the spool tail written
since the snapshot is replayed through the router.
"""

from __future__ import annotations

import multiprocessing
import select
import selectors
import socket
import struct
from bisect import bisect_right
from dataclasses import dataclass
from hashlib import blake2b
from pathlib import Path

import numpy as np

from repro.exceptions import ServiceError, ShardCrashedError
from repro.trace.framing import FrameReader, FrameSplitter, RawFrame, encode_frame
from repro.trace.jsonl import FlushRecord

from repro.service.broker import BrokerStats
from repro.service.dispatcher import DispatcherStats
from repro.service.publisher import PredictionPublisher, PredictionUpdate
from repro.service.service import PredictionService, ServiceConfig
from repro.service.snapshot import (
    SNAPSHOT_VERSION,
    apply_state,
    check_snapshot_version,
    merge_states,
    snapshot_state,
    split_state,
)

#: Socket read size of the shard ingestion loop.
_RECV_CHUNK = 1 << 16


class HashRing:
    """Consistent hashing of job ids onto shard indices.

    Each shard owns ``replicas`` pseudo-random points on a 64-bit ring; a job
    hashes to the first point at or after it.  The mapping is deterministic
    across processes and Python runs (``blake2b``, not ``hash()``), balanced
    to a few percent at 64 replicas, and *consistent*: changing the shard
    count moves only the jobs whose arc changed owner — the property that
    lets a snapshot taken at one shard count restore onto another with
    minimal data movement.
    """

    def __init__(self, n_shards: int, *, replicas: int = 64) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.n_shards = int(n_shards)
        self.replicas = int(replicas)
        points: list[tuple[int, int]] = []
        for shard in range(self.n_shards):
            for replica in range(self.replicas):
                points.append((self._hash(f"shard-{shard}-replica-{replica}"), shard))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [s for _, s in points]

    @staticmethod
    def _hash(key: str) -> int:
        return struct.unpack(">Q", blake2b(key.encode("utf-8"), digest_size=8).digest())[0]

    def shard_for(self, job: str) -> int:
        """Shard index owning ``job``."""
        position = bisect_right(self._hashes, self._hash(job))
        if position == len(self._hashes):
            position = 0
        return self._owners[position]


# --------------------------------------------------------------------- #
# shard worker (runs in the subprocess)
# --------------------------------------------------------------------- #
def _shard_main(index: int, config: ServiceConfig, data_sock: socket.socket, control) -> None:
    """Ingestion loop of one shard: select over the data socket and control pipe."""
    service = PredictionService(config)
    updates: list[dict] = []
    service.publisher.subscribe(lambda update: updates.append(update.to_dict()))
    bytes_received = 0
    data_eof = False
    # Non-blocking: a control handler may drain the socket ahead of the
    # selector loop, leaving the loop's readiness event stale — a blocking
    # recv on a stale event would deadlock the shard.
    data_sock.setblocking(False)

    def drain_updates() -> list[dict]:
        drained = list(updates)
        del updates[: len(drained)]
        return drained

    def read_available() -> None:
        # Ingest whatever the data socket holds right now (never blocks).
        nonlocal bytes_received, data_eof
        while not data_eof:
            try:
                chunk = data_sock.recv(_RECV_CHUNK)
            except BlockingIOError:
                return
            if not chunk:
                data_eof = True
                return
            bytes_received += len(chunk)
            service.feed_bytes(chunk)

    def sync_to(expected: int) -> None:
        # The router counted its sends; catch the data plane up to that mark
        # before acting on a control message that depends on it.
        read_available()
        while bytes_received < expected and not data_eof:
            select.select([data_sock], [], [])
            read_available()

    def handle(request: dict) -> tuple[dict, bool]:
        op = request["op"]
        if op == "pump":
            sync_to(int(request["expected_bytes"]))
            submitted = service.pump(wait_for_batch=True)
            service.dispatcher.join()
            return {"submitted": submitted, "updates": drain_updates()}, False
        if op == "drain":
            sync_to(int(request["expected_bytes"]))
            service.drain()
            return {"updates": drain_updates()}, False
        if op == "stats":
            broker = service.broker.stats
            dispatch = service.dispatcher.stats
            return {
                "service": service.stats(),
                "broker": vars(broker),
                "dispatcher": vars(dispatch),
                "jobs": list(service.jobs),
                "latencies": list(service.dispatcher.latencies()),
                "bytes_received": bytes_received,
            }, False
        if op == "snapshot":
            sync_to(int(request["expected_bytes"]))
            return {"state": snapshot_state(service)}, False
        if op == "restore":
            apply_state(service, request["state"])
            return {"restored": len(request["state"]["sessions"])}, False
        if op == "close":
            service.close()
            return {"closed": True}, True
        raise ServiceError(f"unknown shard control op {op!r}")

    selector = selectors.DefaultSelector()
    selector.register(data_sock, selectors.EVENT_READ, "data")
    selector.register(control, selectors.EVENT_READ, "control")
    try:
        done = False
        while not done:
            for key, _ in selector.select():
                if key.data == "data":
                    read_available()
                    if data_eof:
                        selector.unregister(data_sock)
                    continue
                try:
                    request = control.recv()
                except EOFError:
                    # The router went away; there is nobody to serve.
                    done = True
                    break
                try:
                    response, done = handle(request)
                    control.send({"ok": True, **response})
                except Exception as exc:  # surface shard-side errors to the router
                    control.send({"ok": False, "error": f"{type(exc).__name__}: {exc}"})
                if done:
                    break
    finally:
        selector.close()
        data_sock.close()
        control.close()


@dataclass
class _Shard:
    """Parent-side handle of one worker shard."""

    index: int
    process: multiprocessing.process.BaseProcess
    data_sock: socket.socket
    control: object  # multiprocessing.connection.Connection
    bytes_sent: int = 0
    dead: bool = False

    @property
    def alive(self) -> bool:
        return not self.dead and self.process.is_alive()


# --------------------------------------------------------------------- #
# the sharded service (parent-side router)
# --------------------------------------------------------------------- #
class ShardedService:
    """Routes FTS1 frames onto N subprocess shards and aggregates their state.

    Parameters
    ----------
    n_shards:
        Number of worker shards (subprocesses) to spawn.
    config:
        Per-shard :class:`ServiceConfig` (session config, worker pool,
        detection backend).
    token:
        Optional tenant/auth token nibble (0..15).  When set, the router
        stamps it on frames it encodes itself and **rejects** routed byte
        streams whose frames do not carry it (wire-level auth).
    replicas:
        Virtual nodes per shard on the hash ring.
    start_method:
        ``multiprocessing`` start method (``None`` = platform default).
    """

    def __init__(
        self,
        n_shards: int,
        config: ServiceConfig | None = None,
        *,
        token: int | None = None,
        replicas: int = 64,
        start_method: str | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.ring = HashRing(n_shards, replicas=replicas)
        self.publisher = PredictionPublisher()
        self._token = token
        self._splitter = FrameSplitter(expected_token=token)
        self._ctx = multiprocessing.get_context(start_method)
        self._closed = False
        self._shards = [self._spawn(index) for index in range(n_shards)]

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def _spawn(self, index: int) -> _Shard:
        parent_sock, child_sock = socket.socketpair()
        parent_conn, child_conn = self._ctx.Pipe()
        # Not daemonic: a shard may itself host a ProcessPoolBackend (daemonic
        # processes cannot have children).  Orphan safety comes from the shard
        # loop exiting on control-pipe EOF when the router goes away.
        process = self._ctx.Process(
            target=_shard_main,
            args=(index, self.config, child_sock, child_conn),
            name=f"prediction-shard-{index}",
        )
        process.start()
        child_sock.close()
        child_conn.close()
        return _Shard(index=index, process=process, data_sock=parent_sock, control=parent_conn)

    @property
    def n_shards(self) -> int:
        """Number of shards (live or dead)."""
        return len(self._shards)

    @property
    def token(self) -> int | None:
        """Tenant/auth token nibble stamped on and required of every frame."""
        return self._token

    def shard_for(self, job: str) -> int:
        """Shard index that owns ``job`` (consistent hash)."""
        return self.ring.shard_for(job)

    def dead_shards(self) -> tuple[int, ...]:
        """Indices of shards whose process died or whose channel broke."""
        return tuple(s.index for s in self._shards if not s.alive)

    def kill_shard(self, index: int) -> None:
        """Forcibly kill a shard (SIGKILL) — fault injection for tests."""
        shard = self._shards[index]
        shard.process.kill()
        shard.process.join()

    def revive_shard(
        self,
        index: int,
        *,
        state: dict | None = None,
        spool: str | Path | None = None,
        spool_offset: int = 0,
        spool_position: dict | None = None,
    ) -> int:
        """Respawn a dead shard, restoring its sessions and replaying the spool.

        ``state`` is a merged snapshot (any deployment shape); only the
        sessions this shard owns are pushed into the replacement process.
        With ``spool`` plus the ingestion point recorded alongside the
        snapshot (``spool_position`` — a tailing reader's rotation-proof
        :attr:`FrameReader.position` — or a plain ``spool_offset``), the
        frames written since the snapshot are replayed — **only** those owned
        by the revived shard; surviving shards already consumed theirs —
        pumping after every frame so each replayed flush is evaluated at its
        own timestamp, the same cadence a flush-by-flush live run takes.
        Returns the number of frames replayed.
        """
        shard = self._shards[index]
        if shard.alive:
            raise ServiceError(f"shard {index} is still alive; refusing to revive it")
        self._release(shard)
        self._shards[index] = self._spawn(index)
        if state is not None:
            per_shard = split_state(state, self.ring.shard_for, self.n_shards)
            self._request(self._shards[index], {"op": "restore", "state": per_shard[index]})
            # Merge (not replace): surviving shards have published past the
            # snapshot, only the revived shard's jobs roll back to it.
            self.publisher.merge_state_dict(per_shard[index]["publisher"])
        replayed = 0
        if spool is not None:
            reader = FrameReader(
                spool,
                offset=spool_offset,
                position=spool_position,
                expected_token=self._token,
                raw=True,
            )
            for raw in reader.poll():
                if self.ring.shard_for(raw.job) != index:
                    continue
                self.route_raw(raw)
                self.pump(shards=(index,))
                replayed += 1
        return replayed

    def _release(self, shard: _Shard) -> None:
        shard.dead = True
        try:
            shard.data_sock.close()
        except OSError:  # pragma: no cover - already closed
            pass
        shard.control.close()
        # Closing both channels makes a healthy shard exit on EOF; give it a
        # moment, then escalate so close() can never hang on a wedged shard.
        shard.process.join(timeout=10.0)
        if shard.process.is_alive():  # pragma: no cover - defensive
            shard.process.kill()
            shard.process.join()

    def close(self) -> None:
        """Shut every live shard down and reap the subprocesses."""
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            if shard.alive:
                try:
                    self._request(shard, {"op": "close"})
                except ShardCrashedError:
                    pass
            self._release(shard)

    def __enter__(self) -> "ShardedService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # data plane
    # ------------------------------------------------------------------ #
    def _send_raw(self, shard: _Shard, data: bytes) -> None:
        if not shard.alive:
            raise ShardCrashedError(shard.index)
        try:
            shard.data_sock.sendall(data)
        except (BrokenPipeError, ConnectionResetError, OSError) as exc:
            shard.dead = True
            raise ShardCrashedError(shard.index, f"shard {shard.index}: {exc}") from exc
        shard.bytes_sent += len(data)

    def ingest_flush(self, job: str, flush: FlushRecord, *, payload_format: str = "msgpack") -> int:
        """Encode one flush as a frame and route it; returns the shard index."""
        index = self.ring.shard_for(job)
        frame = encode_frame(flush, job=job, payload_format=payload_format, token=self._token)
        self._send_raw(self._shards[index], frame)
        return index

    def route_raw(self, frame: RawFrame) -> int:
        """Route one already-framed message; returns the shard index."""
        index = self.ring.shard_for(frame.job)
        self._send_raw(self._shards[index], frame.data)
        return index

    def feed_bytes(self, data: bytes) -> int:
        """Route a shared framed byte stream (socket reads); returns frames routed.

        Frames are classified on the header only and forwarded verbatim; a
        partial trailing frame stays buffered until its bytes arrive.
        """
        self._splitter.feed(data)
        count = 0
        for raw in self._splitter.raw_frames():
            self.route_raw(raw)
            count += 1
        return count

    def tail_file(self, path: str | Path, *, offset: int = 0) -> FrameReader:
        """Tail a framed spool file; each ``poll()`` routes the new frames.

        The reader runs in raw (header-only) mode and follows spool rotation.
        """

        def route(frames: list[RawFrame]) -> None:
            for raw in frames:
                self.route_raw(raw)

        return FrameReader(
            path, offset=offset, sink=route, expected_token=self._token, raw=True
        )

    # ------------------------------------------------------------------ #
    # control plane
    # ------------------------------------------------------------------ #
    def _request(self, shard: _Shard, message: dict) -> dict:
        if not shard.alive:
            raise ShardCrashedError(shard.index)
        try:
            shard.control.send(message)
            response = shard.control.recv()
        except (EOFError, BrokenPipeError, ConnectionResetError, OSError) as exc:
            shard.dead = True
            raise ShardCrashedError(shard.index, f"shard {shard.index}: {exc}") from exc
        if not response.get("ok"):
            raise ServiceError(
                f"shard {shard.index} control op {message.get('op')!r} failed: "
                f"{response.get('error')}"
            )
        return response

    def _broadcast(
        self, op: str, *, with_bytes: bool = False, only: tuple[int, ...] | None = None
    ) -> list[dict]:
        """Send one op to every live shard, then collect the replies.

        Requests are written before any reply is awaited, so the shards work
        in parallel — this is what makes ``pump`` scale with the shard count.

        A failure never short-circuits the collection: every shard that was
        sent the request gets its reply consumed (or its death recorded)
        before anything is raised, so the surviving shards' control pipes
        stay request/response-aligned for the next operation.
        """
        live = [
            s for s in self._shards if s.alive and (only is None or s.index in only)
        ]
        crashes: list[ShardCrashedError] = []
        op_errors: list[str] = []
        sent: list[_Shard] = []
        for shard in live:
            message: dict = {"op": op}
            if with_bytes:
                message["expected_bytes"] = shard.bytes_sent
            try:
                shard.control.send(message)
            except (BrokenPipeError, OSError) as exc:
                shard.dead = True
                crashes.append(ShardCrashedError(shard.index, f"shard {shard.index}: {exc}"))
                continue
            sent.append(shard)
        responses = []
        for shard in sent:
            try:
                response = shard.control.recv()
            except (EOFError, OSError) as exc:
                shard.dead = True
                crashes.append(ShardCrashedError(shard.index, f"shard {shard.index}: {exc}"))
                continue
            if not response.get("ok"):
                op_errors.append(
                    f"shard {shard.index} control op {op!r} failed: {response.get('error')}"
                )
                continue
            responses.append(response)
        if crashes:
            # Survivors answered; let the caller keep their results (pump
            # publishes them) even though the crash is surfaced.
            crashes[0].partial_responses = responses
            raise crashes[0]
        if op_errors:
            raise ServiceError("; ".join(op_errors))
        return responses

    def _publish_updates(self, responses: list[dict]) -> None:
        for response in responses:
            for entry in response.get("updates", ()):
                self.publisher.publish(PredictionUpdate.from_dict(entry))

    def pump(self, *, shards: tuple[int, ...] | None = None) -> int:
        """Evaluate every due session on every shard (in parallel).

        Returns the total number of submitted evaluations; every resulting
        prediction is re-published through the parent-side :attr:`publisher`.
        ``shards`` restricts the pump to the given shard indices (recovery
        replay pumps only the revived shard).
        """
        responses = self._broadcast_publishing("pump", shards=shards)
        return sum(r["submitted"] for r in responses)

    def drain(self) -> None:
        """Pump every shard until nothing is due and nothing is in flight."""
        self._broadcast_publishing("drain")

    def _broadcast_publishing(
        self, op: str, *, shards: tuple[int, ...] | None = None
    ) -> list[dict]:
        """Broadcast an update-bearing op; publish results even on a crash."""
        try:
            responses = self._broadcast(op, with_bytes=True, only=shards)
        except ShardCrashedError as crash:
            self._publish_updates(getattr(crash, "partial_responses", []))
            raise
        self._publish_updates(responses)
        return responses

    # ------------------------------------------------------------------ #
    # aggregated introspection
    # ------------------------------------------------------------------ #
    def _stats_responses(self) -> list[dict]:
        return self._broadcast("stats")

    @property
    def jobs(self) -> tuple[str, ...]:
        """Every job seen by any shard (grouped by shard, ingestion order)."""
        jobs: list[str] = []
        for response in self._stats_responses():
            jobs.extend(response["jobs"])
        return tuple(jobs)

    @property
    def broker_stats(self) -> BrokerStats:
        """Ingestion counters aggregated over all shards."""
        return BrokerStats.merge(
            BrokerStats(**response["broker"]) for response in self._stats_responses()
        )

    @property
    def dispatcher_stats(self) -> DispatcherStats:
        """Dispatch counters aggregated over all shards."""
        return DispatcherStats.merge(
            DispatcherStats(**response["dispatcher"]) for response in self._stats_responses()
        )

    def latency_percentile(self, q: float) -> float | None:
        """Detection-latency percentile over all shards' recent windows."""
        return self._percentile(self._stats_responses(), q)

    @staticmethod
    def _percentile(responses: list[dict], q: float) -> float | None:
        latencies = [latency for response in responses for latency in response["latencies"]]
        if not latencies:
            return None
        return float(np.percentile(np.asarray(latencies), q))

    def stats(self) -> dict:
        """One JSON-friendly dict of service-wide counters, summed over shards.

        Includes the merged p50/p99 detection latencies — everything comes
        from a single control round trip, so callers wanting several views
        (the benchmark does) pay one broadcast, not one per accessor.
        """
        responses = self._stats_responses()
        totals: dict = {"shards": self.n_shards, "dead_shards": len(self.dead_shards())}
        for response in responses:
            for key, value in response["service"].items():
                if isinstance(value, (int, float)):
                    totals[key] = totals.get(key, 0) + value
        totals["published"] = self.publisher.published
        totals["p50_detection_latency_seconds"] = self._percentile(responses, 50.0)
        totals["p99_detection_latency_seconds"] = self._percentile(responses, 99.0)
        return totals

    def period_provider(self, *, bootstrap: bool = True):
        """A Set-10 ``PeriodProvider`` backed by the merged parent publisher."""
        from repro.service.provider import ServicePeriodProvider

        return ServicePeriodProvider(self, bootstrap=bootstrap)

    # ------------------------------------------------------------------ #
    # snapshot / restore
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> dict:
        """Merged snapshot of all shards (single-process snapshot schema).

        The result round-trips through :func:`repro.service.snapshot.
        restore_state` (one big service) and :meth:`restore_state` (any shard
        count) alike.
        """
        responses = self._broadcast("snapshot", with_bytes=True)
        merged = merge_states([response["state"] for response in responses])
        merged["sharding"] = {"n_shards": self.n_shards, "replicas": self.ring.replicas}
        return merged

    def restore_state(self, state: dict) -> None:
        """Load a merged snapshot: each shard receives the sessions it owns."""
        check_snapshot_version(state)
        per_shard = split_state(state, self.ring.shard_for, self.n_shards)
        for shard, shard_state in zip(self._shards, per_shard):
            self._request(shard, {"op": "restore", "state": shard_state})
        self.publisher.load_state_dict(state["publisher"])
