"""Single-producer single-consumer shared-memory byte ring.

The sharded router used to push every frame through a ``socketpair``, which
costs two kernel copies per byte (write into the socket buffer, read back
out).  This ring moves the *data* through a ``multiprocessing.shared_memory``
segment instead — the router writes each frame into the ring exactly once,
and the shard reads it as a borrowed ``memoryview`` with **zero** copies on
the consuming side (the frame splitter slices frames straight out of the
mapped memory).  The socketpair is demoted to a **doorbell**: it carries only
8-byte monotonic byte totals — ``written`` announcements from the writer,
``acked`` (consumed) totals from the reader — so the kernel never touches
frame payloads again.

Properties the service relies on:

* **flow control** — the writer blocks (in :meth:`ShmRingWriter.write`) when
  ``written - acked`` reaches the ring capacity, exactly like a full socket
  buffer used to block ``sendall``; backpressure semantics are unchanged.
* **crash detection** — either side observing the doorbell closed raises
  ``BrokenPipeError`` (writer) or reports EOF (reader), the same signals the
  socket data plane produced, so the sharding layer's crash handling carries
  over unmodified.
* **ordered shutdown** — doorbell totals travel on an ordered stream, so by
  the time the reader sees EOF it has already received the final ``written``
  mark and can drain the ring completely before reporting end-of-data; no
  tail is ever lost.
* **no deadlock** — both directions of the doorbell are non-blocking; a side
  that cannot send a total immediately waits on ``select`` for readability
  *or* writability and drains its inbox while waiting, so the two sides can
  never be stuck sending to each other's full buffers.

The reader's views borrow ring memory that is reclaimed on acknowledgement;
consumers must materialize whatever they still need (the frame buffer's
``detach``) before :meth:`ShmRingReader.ack` runs.
"""

from __future__ import annotations

import select
import socket
import struct
from dataclasses import dataclass
from multiprocessing import shared_memory

#: Default ring capacity (bytes); roughly a socket buffer's worth of frames.
DEFAULT_RING_BYTES = 1 << 20

_WORD = struct.Struct(">Q")


@dataclass(frozen=True)
class RingHandle:
    """Picklable descriptor of a ring: ships to the child process at spawn."""

    name: str
    capacity: int


def _send_word(sock: socket.socket, value: int, drain_inbox) -> None:
    """Send one 8-byte total on a non-blocking doorbell, without deadlock.

    While the send would block, waits for the socket to become readable or
    writable and drains the inbox via ``drain_inbox`` — the peer might be
    blocked sending totals to *us*, and consuming them is what unblocks it.
    """
    payload = _WORD.pack(value)
    sent = 0
    while sent < len(payload):
        try:
            sent += sock.send(payload[sent:])
        except BlockingIOError:
            readable, _, _ = select.select([sock], [sock], [])
            if readable:
                drain_inbox()


class _WordStream:
    """Reassembles the 8-byte totals of one doorbell direction.

    Totals are monotonic, so only the newest complete word matters; partial
    words (a non-blocking send can split one) are buffered across reads.
    """

    def __init__(self) -> None:
        self._pending = bytearray()
        self.latest: int | None = None

    def feed(self, data: bytes) -> None:
        self._pending += data
        complete = len(self._pending) // _WORD.size * _WORD.size
        if complete:
            self.latest = _WORD.unpack_from(self._pending, complete - _WORD.size)[0]
            del self._pending[:complete]


class ShmRingWriter:
    """Producer side: owns the shared-memory segment, writes frames in.

    Create in the parent, pass :attr:`handle` to the child, then
    :meth:`bind` the parent end of the doorbell socketpair.  The writer is
    responsible for the segment's lifetime: call :meth:`close` (which
    unlinks) after the reader process has exited.
    """

    def __init__(self, capacity: int = DEFAULT_RING_BYTES) -> None:
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._shm = shared_memory.SharedMemory(create=True, size=self.capacity)
        self._written = 0
        self._acked = 0
        self._acks = _WordStream()
        self._doorbell: socket.socket | None = None
        self._stalls = 0
        self._doorbell_sends = 0

    @property
    def handle(self) -> RingHandle:
        """Descriptor the reader attaches with (picklable)."""
        return RingHandle(name=self._shm.name, capacity=self.capacity)

    @property
    def written(self) -> int:
        """Total bytes written into the ring so far."""
        return self._written

    @property
    def occupancy(self) -> int:
        """Bytes currently in flight (written but not yet acknowledged)."""
        return self._written - self._acked

    @property
    def stalls(self) -> int:
        """Times a write found the ring full and had to block for space."""
        return self._stalls

    @property
    def doorbell_sends(self) -> int:
        """``written`` announcements sent on the doorbell (one per chunk)."""
        return self._doorbell_sends

    def bind(self, doorbell: socket.socket) -> None:
        """Attach the parent end of the doorbell socketpair."""
        doorbell.setblocking(False)
        self._doorbell = doorbell

    def _drain_acks(self) -> None:
        assert self._doorbell is not None
        while True:
            try:
                data = self._doorbell.recv(4096)
            except BlockingIOError:
                break
            if not data:
                raise BrokenPipeError("ring doorbell closed by the reader")
            self._acks.feed(data)
        if self._acks.latest is not None:
            self._acked = self._acks.latest

    def _wait_for_space(self) -> None:
        assert self._doorbell is not None
        while self.capacity - (self._written - self._acked) == 0:
            select.select([self._doorbell], [], [])
            self._drain_acks()

    def write(self, data: bytes | memoryview) -> int:
        """Copy ``data`` into the ring (blocking while full); returns its size.

        Writes larger than the ring capacity are chunked — each chunk is
        announced and the writer waits for acknowledgements before the next,
        so a single oversized frame still flows through a small ring.
        """
        if self._doorbell is None:
            raise RuntimeError("ring writer has no doorbell bound")
        view = memoryview(data)
        if view.format != "B" or view.ndim != 1:
            view = view.cast("B")
        total = len(view)
        while len(view):
            self._drain_acks()
            free = self.capacity - (self._written - self._acked)
            if free == 0:
                self._stalls += 1
                self._wait_for_space()
                continue
            take = min(len(view), free)
            start = self._written % self.capacity
            first = min(take, self.capacity - start)
            self._shm.buf[start : start + first] = view[:first]
            if take > first:
                self._shm.buf[: take - first] = view[first:take]
            self._written += take
            _send_word(self._doorbell, self._written, self._drain_acks)
            self._doorbell_sends += 1
            view = view[take:]
        return total

    def close(self) -> None:
        """Release and unlink the shared-memory segment (parent-side cleanup)."""
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - defensive
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


class ShmRingReader:
    """Consumer side: attaches by name, reads frames as borrowed views.

    The intended loop (the shard's ingestion path)::

        if reader.pump_doorbell():   # drain announcements; True on EOF
            ...
        for view in reader.views():  # zero-copy slices of the ring
            consumer.feed(view)
        consumer.detach()            # materialize any undecoded tail
        reader.ack()                 # ring memory may now be overwritten

    ``views()`` advances the read mark; :meth:`ack` publishes it to the
    writer, releasing the space.  Acknowledge only after every borrowed view
    has been consumed or materialized.
    """

    def __init__(self, handle: RingHandle, doorbell: socket.socket) -> None:
        self.capacity = int(handle.capacity)
        self._shm = shared_memory.SharedMemory(name=handle.name)
        # On this Python, attaching re-registers the segment with the resource
        # tracker.  Shards are multiprocessing children, so they share the
        # parent's tracker and the duplicate registration collapses in its
        # cache; the writer's unlink performs the single matching unregister.
        # (An unrelated process attaching by name would instead need to
        # unregister here to stop its own tracker destroying the segment.)
        doorbell.setblocking(False)
        self._doorbell = doorbell
        self._announcements = _WordStream()
        self._written = 0
        self._read = 0
        self._acked = 0
        self._eof_seen = False

    @property
    def eof(self) -> bool:
        """True once the writer is gone *and* every announced byte was read."""
        return self._eof_seen and self._read >= self._written

    def pump_doorbell(self) -> bool:
        """Drain pending ``written`` announcements; returns True on writer EOF."""
        while not self._eof_seen:
            try:
                data = self._doorbell.recv(4096)
            except BlockingIOError:
                break
            except (ConnectionResetError, OSError):
                self._eof_seen = True
                break
            if not data:
                self._eof_seen = True
                break
            self._announcements.feed(data)
        if self._announcements.latest is not None:
            self._written = self._announcements.latest
        return self._eof_seen

    def views(self) -> list[memoryview]:
        """Borrowed views of every announced-but-unread byte (0, 1 or 2 slices).

        Advances the read mark; the underlying memory stays valid until
        :meth:`ack`.  Release the views (or let them go out of scope) before
        closing the reader.
        """
        available = self._written - self._read
        if available == 0:
            return []
        start = self._read % self.capacity
        first = min(available, self.capacity - start)
        out = [self._shm.buf[start : start + first]]
        if available > first:
            out.append(self._shm.buf[: available - first])
        self._read += available
        return out

    def ack(self) -> None:
        """Publish the read mark to the writer, releasing the ring space."""
        if self._read == self._acked or self._eof_seen:
            if self._eof_seen:
                self._acked = self._read
            return
        self._acked = self._read
        try:
            _send_word(self._doorbell, self._acked, self.pump_doorbell)
        except (BrokenPipeError, ConnectionResetError, OSError):
            self._eof_seen = True

    def close(self) -> None:
        """Detach from the segment (the writer unlinks it)."""
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - a borrowed view is still alive
            pass
