"""Snapshot/restore of service state for crash recovery.

A snapshot captures, per job, the resident window of the columnar buffer,
the predictor's adaptive-window state and compact evaluation history, the
merged metadata and counters, plus the publisher's latest predictions — in
short, everything needed so that a service restarted from the snapshot
continues producing the same predictions as one that never crashed (the
property the snapshot round-trip test asserts).

Snapshots are encoded with the library's own MessagePack implementation
(binary columns stay binary), so a snapshot file is compact and readable by
any compliant MessagePack decoder.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Iterable

from repro.exceptions import TraceFormatError
from repro.trace.msgpack import packb, unpackb

from repro.service.service import PredictionService, ServiceConfig

#: Bumped whenever the snapshot layout changes incompatibly.
SNAPSHOT_VERSION = 1


def check_snapshot_version(state: dict) -> None:
    """Reject snapshots from an incompatible layout (or that aren't snapshots)."""
    version = state.get("snapshot_version")
    if version != SNAPSHOT_VERSION:
        raise TraceFormatError(
            f"unsupported service snapshot version {version!r} (expected {SNAPSHOT_VERSION})"
        )


def snapshot_state(service: PredictionService) -> dict:
    """Capture the full service state as a MessagePack-serializable dict."""
    return {
        "snapshot_version": SNAPSHOT_VERSION,
        "sessions": [session.state_dict() for session in service.broker.sessions()],
        "publisher": service.publisher.state_dict(),
    }


def restore_state(
    state: dict,
    *,
    config: ServiceConfig | None = None,
) -> PredictionService:
    """Rebuild a service from a :func:`snapshot_state` dict.

    The analysis/memory configuration is *not* part of the snapshot — pass
    the same :class:`ServiceConfig` the crashed service ran with (or an
    updated one, e.g. to change the worker count on the replacement host).
    """
    check_snapshot_version(state)
    service = PredictionService(config)
    for session_state in state["sessions"]:
        session = service.broker.session(str(session_state["job"]))
        session.load_state_dict(session_state)
    service.publisher.load_state_dict(state["publisher"])
    return service


def apply_state(service: PredictionService, state: dict) -> PredictionService:
    """Load a snapshot's sessions and publisher into an *existing* service.

    Unlike :func:`restore_state` this does not build a new instance — a shard
    subprocess restores into the service it already runs.  Sessions present in
    the snapshot are (re)created; sessions the service already holds for other
    jobs are left alone.
    """
    check_snapshot_version(state)
    for session_state in state["sessions"]:
        session = service.broker.session(str(session_state["job"]))
        session.load_state_dict(session_state)
    service.publisher.load_state_dict(state["publisher"])
    return service


def merge_states(states: Iterable[dict]) -> dict:
    """Merge per-shard snapshot states into one single-schema state.

    Shards partition the job space, so the merge is a plain concatenation of
    the session lists and a union of the publisher maps.  The result is a
    valid :func:`restore_state` input — a sharded deployment can be restored
    into a single-process service (or re-split onto a different shard count
    with :func:`split_state`).
    """
    states = list(states)
    for state in states:
        check_snapshot_version(state)
    merged_sessions: list[dict] = []
    latest: dict = {}
    latest_period: dict = {}
    for state in states:
        merged_sessions.extend(state["sessions"])
        publisher = state.get("publisher", {})
        latest.update(publisher.get("latest", {}))
        latest_period.update(publisher.get("latest_period", {}))
    return {
        "snapshot_version": SNAPSHOT_VERSION,
        "sessions": merged_sessions,
        "publisher": {"latest": latest, "latest_period": latest_period},
    }


def split_state(state: dict, owner: Callable[[str], int], n_shards: int) -> list[dict]:
    """Split one merged state into per-shard states by job ownership.

    ``owner`` maps a job id to its shard index (the sharded service passes
    its hash ring), so a snapshot taken from any deployment shape can be
    restored onto any shard count.
    """
    check_snapshot_version(state)
    shards = [
        {
            "snapshot_version": SNAPSHOT_VERSION,
            "sessions": [],
            "publisher": {"latest": {}, "latest_period": {}},
        }
        for _ in range(n_shards)
    ]
    for session_state in state["sessions"]:
        shards[owner(str(session_state["job"]))]["sessions"].append(session_state)
    publisher = state.get("publisher", {})
    for job, entry in publisher.get("latest", {}).items():
        shards[owner(str(job))]["publisher"]["latest"][job] = entry
    for job, period in publisher.get("latest_period", {}).items():
        shards[owner(str(job))]["publisher"]["latest_period"][job] = period
    return shards


def extract_jobs(state: dict, jobs: Iterable[str]) -> tuple[dict, dict]:
    """Split one snapshot state into ``(extracted, remaining)`` by job id.

    The per-job complement of :func:`split_state`: instead of partitioning by
    shard owner, it pulls exactly the named jobs' sessions and publisher
    entries out.  Both halves are valid snapshot states; resharding uses the
    extracted half as the unit of migration.
    """
    check_snapshot_version(state)
    wanted = set(jobs)

    def half(selected: bool) -> dict:
        publisher = state.get("publisher", {})
        return {
            "snapshot_version": SNAPSHOT_VERSION,
            "sessions": [
                session
                for session in state["sessions"]
                if (str(session["job"]) in wanted) == selected
            ],
            "publisher": {
                "latest": {
                    job: entry
                    for job, entry in publisher.get("latest", {}).items()
                    if (str(job) in wanted) == selected
                },
                "latest_period": {
                    job: period
                    for job, period in publisher.get("latest_period", {}).items()
                    if (str(job) in wanted) == selected
                },
            },
        }

    return half(True), half(False)


def extract_service_jobs(service: PredictionService, jobs: Iterable[str]) -> dict:
    """Capture *and remove* the given jobs from a live service.

    The migration source of a live reshard: the jobs' full session state and
    publisher entries are snapshotted, then the sessions are dropped from the
    broker and the publisher forgets them — the service no longer owns those
    jobs.  Jobs the service never saw are skipped (their state is empty).
    """
    jobs = list(jobs)  # may be a generator; it is iterated twice below
    present = set(service.broker.jobs)
    selected = [job for job in jobs if job in present]
    state = {
        "snapshot_version": SNAPSHOT_VERSION,
        "sessions": [service.broker.session(job).state_dict() for job in selected],
        "publisher": {"latest": {}, "latest_period": {}},
    }
    publisher = service.publisher.state_dict()
    wanted = set(jobs)
    state["publisher"]["latest"] = {
        job: entry for job, entry in publisher["latest"].items() if job in wanted
    }
    state["publisher"]["latest_period"] = {
        job: period for job, period in publisher["latest_period"].items() if job in wanted
    }
    for job in selected:
        service.broker.remove(job)
    for job in wanted:
        service.publisher.forget(job)
    return state


def merge_into(service: PredictionService, state: dict) -> PredictionService:
    """Fold a snapshot state into a running service without touching others.

    The migration target of a live reshard: the carried sessions are
    (re)created and the publisher entries are *merged* (not replaced), so the
    receiving shard's resident jobs keep their live predictions.
    """
    check_snapshot_version(state)
    for session_state in state["sessions"]:
        session = service.broker.session(str(session_state["job"]))
        session.load_state_dict(session_state)
    service.publisher.merge_state_dict(state["publisher"])
    return service


def save_snapshot(service, path: str | Path) -> Path:
    """Write a snapshot file; returns its path.

    Goes through the service's :meth:`~repro.service.service.
    PredictionService.snapshot_state` method (rather than the bare
    :func:`snapshot_state` capture), so a single-process *or sharded* service
    can be saved, and the post-snapshot hooks — spool auto-compaction, the
    auto-revive recovery point — fire exactly as for an in-memory snapshot.
    """
    path = Path(path)
    path.write_bytes(packb(service.snapshot_state()))
    return path


def load_snapshot(path: str | Path, *, config: ServiceConfig | None = None) -> PredictionService:
    """Restore a service from a snapshot file written by :func:`save_snapshot`."""
    state = unpackb(Path(path).read_bytes())
    if not isinstance(state, dict):
        raise TraceFormatError(f"{path}: snapshot must decode to a map")
    return restore_state(state, config=config)
