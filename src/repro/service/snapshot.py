"""Snapshot/restore of service state for crash recovery.

A snapshot captures, per job, the resident window of the columnar buffer,
the predictor's adaptive-window state and compact evaluation history, the
merged metadata and counters, plus the publisher's latest predictions — in
short, everything needed so that a service restarted from the snapshot
continues producing the same predictions as one that never crashed (the
property the snapshot round-trip test asserts).

Snapshots are encoded with the library's own MessagePack implementation
(binary columns stay binary), so a snapshot file is compact and readable by
any compliant MessagePack decoder.
"""

from __future__ import annotations

from pathlib import Path

from repro.exceptions import TraceFormatError
from repro.trace.msgpack import packb, unpackb

from repro.service.service import PredictionService, ServiceConfig

#: Bumped whenever the snapshot layout changes incompatibly.
SNAPSHOT_VERSION = 1


def snapshot_state(service: PredictionService) -> dict:
    """Capture the full service state as a MessagePack-serializable dict."""
    return {
        "snapshot_version": SNAPSHOT_VERSION,
        "sessions": [session.state_dict() for session in service.broker.sessions()],
        "publisher": service.publisher.state_dict(),
    }


def restore_state(
    state: dict,
    *,
    config: ServiceConfig | None = None,
) -> PredictionService:
    """Rebuild a service from a :func:`snapshot_state` dict.

    The analysis/memory configuration is *not* part of the snapshot — pass
    the same :class:`ServiceConfig` the crashed service ran with (or an
    updated one, e.g. to change the worker count on the replacement host).
    """
    version = state.get("snapshot_version")
    if version != SNAPSHOT_VERSION:
        raise TraceFormatError(
            f"unsupported service snapshot version {version!r} (expected {SNAPSHOT_VERSION})"
        )
    service = PredictionService(config)
    for session_state in state["sessions"]:
        session = service.broker.session(str(session_state["job"]))
        session.load_state_dict(session_state)
    service.publisher.load_state_dict(state["publisher"])
    return service


def save_snapshot(service: PredictionService, path: str | Path) -> Path:
    """Write a snapshot file; returns its path."""
    path = Path(path)
    path.write_bytes(packb(snapshot_state(service)))
    return path


def load_snapshot(path: str | Path, *, config: ServiceConfig | None = None) -> PredictionService:
    """Restore a service from a snapshot file written by :func:`save_snapshot`."""
    state = unpackb(Path(path).read_bytes())
    if not isinstance(state, dict):
        raise TraceFormatError(f"{path}: snapshot must decode to a map")
    return restore_state(state, config=config)
