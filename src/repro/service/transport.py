"""TCP shard transport: channels, the dial-home listener, config wire form.

This module is what promotes a :class:`~repro.service.sharding.ShardedService`
shard from a forked subprocess to a *federated* worker that may live on
another machine.  Three pieces compose it:

* :class:`SocketChannel` — a TCP control/read channel speaking the exact
  ``send_bytes``/``recv_bytes``/``fileno``/``close`` surface of a
  ``multiprocessing`` pipe connection, so every router- and worker-side code
  path that drives a local pipe drives a remote socket unchanged.  FTC1
  envelopes are self-framing (magic + type + length prefix,
  :mod:`repro.service.protocol`), so ``send_bytes`` is a plain ``sendall``
  and ``recv_bytes`` reads exactly one envelope — never a byte more, which
  keeps selector readiness truthful for the next message.
* :class:`ShardListener` — the router-side accept loop of the dial-home
  topology (DARC-style: workers connect *to* the master, so only the router
  needs a routable address).  A connecting ``repro-shard`` completes the
  FTC1 :class:`~repro.service.protocol.Hello` handshake (token checked,
  version negotiated), registers its identity
  (:class:`~repro.service.protocol.RegisterShard`) and parks in a pending
  queue until the router adopts it into a shard slot; its data-plane and
  read-plane connections pair up by echoing the adoption's one-time
  ``data_key`` (:class:`~repro.service.protocol.AttachChannel`).
* :func:`config_to_wire` / :func:`config_from_wire` — the
  :class:`~repro.service.service.ServiceConfig` as a MessagePack-friendly
  map, so a remote worker builds sessions from exactly the same knobs the
  local forks inherit by memory.  Host-local concerns (ops listener,
  autoscaler, the shard listener itself) are stripped: they belong to the
  router's process, not to every worker.
"""

from __future__ import annotations

import dataclasses
import queue
import secrets
import selectors
import socket
import threading
from typing import Any, Callable

from repro.exceptions import ProtocolError, ServiceError, ShardCrashedError

from repro.service import protocol as proto
from repro.service.service import ServiceConfig
from repro.service.session import SessionConfig

#: Envelope header size: magic (4) + type code (1) + body length (4).
_HEADER_BYTES = 9

#: How long a not-yet-adopted connection may take to produce its next
#: handshake message before the listener gives up on it.
HANDSHAKE_TIMEOUT = 30.0


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes; EOFError on a clean close mid-message."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise EOFError(f"connection closed {remaining} bytes short of a message")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class SocketChannel:
    """A TCP socket with the message surface of a ``multiprocessing`` pipe.

    One ``send_bytes`` writes one FTC1 envelope; one ``recv_bytes`` returns
    exactly one.  The read path never buffers past the current envelope, so
    a selector that reported readability is always describing the *next*
    message — the invariant the shard worker loop and the router's read
    plane both rely on.  Sends are serialized by an internal lock (publisher
    callbacks may push events from worker threads).
    """

    def __init__(self, sock: socket.socket) -> None:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._send_lock = threading.Lock()
        self._closed = False

    def send_bytes(self, data: bytes) -> None:
        with self._send_lock:
            self._sock.sendall(data)

    def recv_bytes(self) -> bytes:
        header = _recv_exact(self._sock, _HEADER_BYTES)
        magic, _code, length = proto._ENVELOPE.unpack(header)
        if magic != proto.PROTOCOL_MAGIC:
            raise ProtocolError(f"bad envelope magic {magic!r} on shard channel")
        if length > proto.MAX_MESSAGE_BYTES:
            raise ProtocolError(f"message body of {length} bytes exceeds the protocol limit")
        return header + (_recv_exact(self._sock, length) if length else b"")

    def fileno(self) -> int:
        return self._sock.fileno()

    def settimeout(self, timeout: float | None) -> None:
        self._sock.settimeout(timeout)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    @property
    def closed(self) -> bool:
        return self._closed


def send_message(channel: SocketChannel, message: proto.Message) -> None:
    """Encode and send one control message on a channel."""
    channel.send_bytes(proto.encode_message(message))


def recv_message(channel: SocketChannel) -> proto.Message:
    """Receive and decode exactly one control message from a channel."""
    return proto.decode_message(channel.recv_bytes())


# --------------------------------------------------------------------- #
# ServiceConfig wire form
# --------------------------------------------------------------------- #
#: Router-process-only knobs a remote worker must not inherit: the worker
#: neither serves the ops surface nor runs an autoscaler nor listens for
#: further shards, and a ring segment cannot span hosts.
_HOST_LOCAL_FIELDS = ("ops_port", "autoscale", "shard_port", "ring_bytes")


def config_to_wire(config: ServiceConfig) -> dict:
    """The config as a MessagePack-friendly map for ``RegisterShardReply``."""
    wire = dataclasses.asdict(config)
    for name in _HOST_LOCAL_FIELDS:
        wire.pop(name, None)
    return wire


def config_from_wire(wire: dict) -> ServiceConfig:
    """Rebuild a worker-side :class:`ServiceConfig` from its wire map.

    Unknown keys are ignored (an older worker adopted by a newer router must
    not crash on a knob it does not know), and the host-local fields keep
    their worker-side defaults.
    """
    from repro.core import FtioConfig

    session_wire = dict(wire.get("session", {}))
    ftio_wire = dict(session_wire.pop("config", {}))
    known_ftio = {f.name for f in dataclasses.fields(FtioConfig)}
    window = ftio_wire.get("window")
    if window is not None:
        ftio_wire["window"] = tuple(float(edge) for edge in window)
    ftio = FtioConfig(**{k: v for k, v in ftio_wire.items() if k in known_ftio})
    known_session = {f.name for f in dataclasses.fields(SessionConfig)}
    session = SessionConfig(
        config=ftio,
        **{k: v for k, v in session_wire.items() if k in known_session and k != "config"},
    )
    known_service = {f.name for f in dataclasses.fields(ServiceConfig)}
    service_wire = {
        k: v
        for k, v in wire.items()
        if k in known_service and k != "session" and k not in _HOST_LOCAL_FIELDS
    }
    # Remote shards always use the framed-TCP data plane; a shared-memory
    # ring cannot span hosts.
    return ServiceConfig(session=session, ring_bytes=0, **service_wire)


# --------------------------------------------------------------------- #
# dial-home listener (router side)
# --------------------------------------------------------------------- #
class PendingWorker:
    """A dialed-home worker that passed the handshake and awaits adoption."""

    def __init__(self, channel: SocketChannel, registration: proto.RegisterShard) -> None:
        self.channel = channel
        self.registration = registration

    def close(self) -> None:
        self.channel.close()


class ShardListener:
    """Accepts dial-home shard workers and pairs their channels by key.

    The accept thread serves every new connection's first envelope:

    * :class:`~repro.service.protocol.Hello` — token and version are checked
      exactly like the gateway checks a client's (wrong token and
      no-common-version are answered with a typed
      :class:`~repro.service.protocol.Error` and the connection dropped,
      never wedging the router); the following
      :class:`~repro.service.protocol.RegisterShard` parks the worker in the
      pending queue for :meth:`take_pending`.
    * :class:`~repro.service.protocol.AttachChannel` — a secondary
      connection (data or read plane) of an already-adopted worker; it is
      handed to whoever :meth:`wait_attachment` is blocking on its one-time
      key.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *, token: int | None = None) -> None:
        self._token = token
        self._server = socket.create_server((host, int(port)))
        self._pending: queue.Queue[PendingWorker] = queue.Queue()
        self._attachments: dict[tuple[str, str], socket.socket] = {}
        self._attach_ready = threading.Condition()
        self._closed = False
        self._rejected = 0
        self._thread = threading.Thread(
            target=self._accept_loop, name="repro-shard-listener", daemon=True
        )
        self._thread.start()

    @property
    def host(self) -> str:
        return str(self._server.getsockname()[0])

    @property
    def port(self) -> int:
        return int(self._server.getsockname()[1])

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def rejected(self) -> int:
        """Dial-home attempts rejected at the handshake (bad token/version)."""
        return self._rejected

    @staticmethod
    def new_key() -> str:
        """A fresh one-time adoption key for :class:`AttachChannel` pairing."""
        return secrets.token_hex(16)

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _addr = self._server.accept()
            except OSError:
                return  # listener closed
            threading.Thread(
                target=self._serve_connection, args=(sock,), daemon=True
            ).start()

    def _serve_connection(self, sock: socket.socket) -> None:
        channel = SocketChannel(sock)
        try:
            channel.settimeout(HANDSHAKE_TIMEOUT)
            first = recv_message(channel)
            if isinstance(first, proto.AttachChannel):
                self._attach(first, sock, channel)
                return
            if not isinstance(first, proto.Hello):
                send_message(
                    channel,
                    proto.Error(
                        message=f"expected Hello or AttachChannel, got {type(first).__name__}",
                        code="protocol",
                    ),
                )
                self._rejected += 1
                channel.close()
                return
            version = proto.negotiate_version(first.versions)
            if version is None:
                send_message(
                    channel,
                    proto.Error(
                        message=(
                            f"no common protocol version (router speaks "
                            f"{proto.SUPPORTED_VERSIONS}, worker offered {first.versions})"
                        ),
                        code="unsupported-version",
                    ),
                )
                self._rejected += 1
                channel.close()
                return
            if self._token is not None and first.token != self._token:
                send_message(
                    channel, proto.Error(message="tenant token mismatch", code="unauthorized")
                )
                self._rejected += 1
                channel.close()
                return
            send_message(
                channel, proto.HelloReply(version=version, server="repro-shard-router")
            )
            registration = recv_message(channel)
            if not isinstance(registration, proto.RegisterShard):
                send_message(
                    channel,
                    proto.Error(
                        message=(
                            f"expected RegisterShard after the handshake, "
                            f"got {type(registration).__name__}"
                        ),
                        code="protocol",
                    ),
                )
                self._rejected += 1
                channel.close()
                return
            channel.settimeout(None)
            self._pending.put(PendingWorker(channel, registration))
        except (OSError, EOFError, TimeoutError, ProtocolError):
            self._rejected += 1
            channel.close()

    def _attach(
        self, attach: proto.AttachChannel, sock: socket.socket, channel: SocketChannel
    ) -> None:
        with self._attach_ready:
            self._attachments[(attach.key, attach.channel)] = sock
            self._attach_ready.notify_all()

    def take_pending(self, timeout: float | None = None) -> PendingWorker | None:
        """Next registered-but-unadopted worker, or ``None`` on timeout."""
        try:
            return self._pending.get(timeout=timeout)
        except queue.Empty:
            return None

    def wait_attachment(
        self, key: str, channel: str, timeout: float | None = None
    ) -> socket.socket:
        """Block until the ``channel`` connection echoing ``key`` arrives."""
        with self._attach_ready:
            if not self._attach_ready.wait_for(
                lambda: (key, channel) in self._attachments, timeout=timeout
            ):
                raise ServiceError(
                    f"shard worker never attached its {channel!r} channel "
                    f"(key {key[:8]}..., waited {timeout}s)"
                )
            return self._attachments.pop((key, channel))

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._server.close()
        self._thread.join(timeout=5.0)
        while True:
            pending = self.take_pending(timeout=0)
            if pending is None:
                break
            pending.close()
        with self._attach_ready:
            for sock in self._attachments.values():
                sock.close()
            self._attachments.clear()

    def __enter__(self) -> "ShardListener":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# --------------------------------------------------------------------- #
# read plane (router side)
# --------------------------------------------------------------------- #
#: Queue sentinel: the shard's read channel is gone, stop waiting on it.
_CHANNEL_CLOSED = object()


class ReadPlane:
    """Router-side multiplexer for the per-shard read channels.

    One daemon thread drains every attached channel through a selector.
    Replies land in a per-shard queue for the matching :meth:`collect`;
    unsolicited :class:`~repro.service.protocol.PredictionEvent` pushes fan
    out to the registered event callbacks.  Requests to one shard are
    serialized by a per-shard mutex so concurrent readers (gateway stats,
    autoscaler heartbeats) can never steal each other's replies; requests to
    *different* shards run fully in parallel.

    The plane owns the lifecycle of a channel once attached: :meth:`detach`
    asks the drain thread to unregister *and close* it, which keeps the
    selector from ever polling a dead file descriptor.
    """

    def __init__(self) -> None:
        self._channels: dict[int, Any] = {}
        self._queues: dict[int, queue.Queue] = {}
        self._request_locks: dict[int, threading.Lock] = {}
        self._callbacks: list[Callable[[int, dict], None]] = []
        self._lock = threading.Lock()
        self._pending_attach: list[tuple[int, Any]] = []
        self._pending_detach: list[tuple[Any, queue.Queue | None]] = []
        self._wake_recv, self._wake_send = socket.socketpair()
        self._wake_recv.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._wake_recv, selectors.EVENT_READ, None)
        self._closed = False
        self._thread = threading.Thread(
            target=self._drain_loop, name="repro-read-plane", daemon=True
        )
        self._thread.start()

    def _wake(self) -> None:
        try:
            self._wake_send.send(b"\x00")
        except OSError:
            pass

    def attach(self, index: int, channel: Any) -> None:
        """Register a shard's read channel (pipe connection or socket channel)."""
        with self._lock:
            self._channels[index] = channel
            self._queues[index] = queue.Queue()
            self._request_locks.setdefault(index, threading.Lock())
            self._pending_attach.append((index, channel))
        self._wake()

    def detach(self, index: int) -> None:
        """Unregister and close a shard's read channel (drain-thread side).

        The mapping is dropped immediately (so an :meth:`attach` replacing the
        slot can proceed), but the channel itself is unregistered and closed
        by the drain thread — closing a registered descriptor out from under
        the selector is never safe.
        """
        with self._lock:
            channel = self._channels.pop(index, None)
            if channel is None:
                return
            replies = self._queues.pop(index, None)
            self._pending_detach.append((channel, replies))
        self._wake()

    def subscribe(self, callback: Callable[[int, dict], None]) -> None:
        """Register a callback for unsolicited prediction events.

        Called as ``callback(shard_index, update_dict)`` on the drain thread.
        """
        with self._lock:
            self._callbacks.append(callback)

    def send(self, index: int, message: proto.Message) -> None:
        """Fire one message at a shard without waiting for the reply."""
        with self._lock:
            channel = self._channels.get(index)
        if channel is None:
            raise ShardCrashedError(index, "shard has no read channel")
        try:
            channel.send_bytes(proto.encode_message(message))
        except (OSError, BrokenPipeError, ValueError) as exc:
            raise ShardCrashedError(index, f"read channel lost: {exc}") from exc

    def collect(self, index: int, timeout: float | None = None) -> proto.Message:
        """Next reply from a shard; raises on timeout or channel loss."""
        with self._lock:
            replies = self._queues.get(index)
        if replies is None:
            raise ShardCrashedError(index, "shard has no read channel")
        try:
            reply = replies.get(timeout=timeout)
        except queue.Empty:
            raise TimeoutError(
                f"shard {index} did not answer on the read plane within {timeout}s"
            ) from None
        if reply is _CHANNEL_CLOSED:
            raise ShardCrashedError(index, "read channel closed mid-request")
        return reply

    def request(
        self, index: int, message: proto.Message, timeout: float | None = None
    ) -> proto.Message:
        """One serialized request/reply round-trip with a shard."""
        with self._lock:
            lock = self._request_locks.get(index)
        if lock is None:
            raise ShardCrashedError(index, "shard has no read channel")
        with lock:
            self.send(index, message)
            reply = self.collect(index, timeout=timeout)
        if isinstance(reply, proto.Error):
            raise ServiceError(f"shard {index} read plane: {reply.message}")
        return reply

    def request_lock(self, index: int) -> threading.Lock:
        """The per-shard request mutex (for multi-shard broadcast rounds)."""
        with self._lock:
            lock = self._request_locks.get(index)
        if lock is None:
            raise ShardCrashedError(index, "shard has no read channel")
        return lock

    def _unregister(self, channel: Any) -> None:
        try:
            self._selector.unregister(channel)
            return
        except (KeyError, ValueError):
            return
        except OSError:
            pass
        # The fileobj is already closed, so the selector cannot look its fd
        # up any more — evict the stale key by fd instead, or a later channel
        # reusing the fd number would fail to register.
        for key in list(self._selector.get_map().values()):
            if key.fileobj is channel:
                try:
                    self._selector.unregister(key.fd)
                except (KeyError, ValueError, OSError):
                    pass
                return

    def _apply_pending(self) -> None:
        with self._lock:
            attach = self._pending_attach
            detach = self._pending_detach
            self._pending_attach = []
            self._pending_detach = []
        for channel, replies in detach:
            self._unregister(channel)
            try:
                channel.close()
            except OSError:
                pass
            if replies is not None:
                replies.put(_CHANNEL_CLOSED)
        for index, channel in attach:
            with self._lock:
                if self._channels.get(index) is not channel:
                    continue  # already detached again
            try:
                self._selector.register(channel, selectors.EVENT_READ, index)
            except (KeyError, ValueError, OSError):
                pass

    def _drop_channel(self, index: int, channel: Any) -> None:
        with self._lock:
            if self._channels.get(index) is channel:
                self._channels.pop(index, None)
                replies = self._queues.pop(index, None)
            else:
                replies = None
        self._unregister(channel)
        try:
            channel.close()
        except OSError:
            pass
        if replies is not None:
            replies.put(_CHANNEL_CLOSED)

    def _drain_loop(self) -> None:
        while True:
            self._apply_pending()
            if self._closed:
                with self._lock:
                    channels = dict(self._channels)
                    self._channels.clear()
                    queues = dict(self._queues)
                    self._queues.clear()
                for channel in channels.values():
                    try:
                        channel.close()
                    except OSError:
                        pass
                for replies in queues.values():
                    replies.put(_CHANNEL_CLOSED)
                return
            try:
                events = self._selector.select(timeout=1.0)
            except OSError:
                continue
            for key, _mask in events:
                if key.fileobj is self._wake_recv:
                    try:
                        while self._wake_recv.recv(4096):
                            pass
                    except (BlockingIOError, OSError):
                        pass
                    continue
                index = key.data
                channel = key.fileobj
                try:
                    payload = channel.recv_bytes()
                    message = proto.decode_message(payload)
                except (EOFError, OSError, ValueError, ProtocolError):
                    self._drop_channel(index, channel)
                    continue
                if isinstance(message, proto.PredictionEvent):
                    with self._lock:
                        callbacks = list(self._callbacks)
                    for callback in callbacks:
                        try:
                            callback(index, message.update)
                        except Exception:  # noqa: BLE001 - fan-out must not die
                            pass
                    continue
                with self._lock:
                    replies = self._queues.get(index)
                if replies is not None:
                    replies.put(message)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._wake()
        self._thread.join(timeout=5.0)
        self._selector.close()
        self._wake_recv.close()
        self._wake_send.close()

    def __enter__(self) -> "ReadPlane":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
