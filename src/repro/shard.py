"""``python -m repro.shard`` — run one dial-home federated shard worker.

The remote half of the multi-host topology: point it at a router whose
``ServiceConfig.shard_port`` is set, and it joins the ring as a worker
shard::

    python -m repro.shard --connect router-host:9400 --token 7 --weight 2.0

The process serves until the router closes or releases it (clean exit), and
exits non-zero on a rejected handshake (bad token, version mismatch) or an
unreachable router — so a supervisor (systemd, a container runtime) can tell
"done" from "misconfigured".
"""

from __future__ import annotations

import argparse
import sys

from repro.exceptions import ProtocolError, ServiceError


def _parse_connect(value: str) -> tuple[str, int]:
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"--connect expects HOST:PORT, got {value!r}"
        )
    return host, int(port)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-shard",
        description="Dial home to a sharded prediction router and serve as a worker shard.",
    )
    parser.add_argument(
        "--connect",
        required=True,
        type=_parse_connect,
        metavar="HOST:PORT",
        help="the router's shard listener (ServiceConfig.shard_port)",
    )
    parser.add_argument(
        "--token", type=int, default=None,
        help="tenant token; must match the router's",
    )
    parser.add_argument(
        "--name", default=None,
        help="worker identity shown in shard_details() (default hostname:pid)",
    )
    parser.add_argument(
        "--weight", type=float, default=1.0,
        help="advertised ring weight (default 1.0)",
    )
    parser.add_argument(
        "--retries", type=int, default=30,
        help="dial attempts before giving up (default 30)",
    )
    parser.add_argument(
        "--retry-delay", type=float, default=0.5,
        help="seconds between dial attempts (default 0.5)",
    )
    args = parser.parse_args(argv)
    host, port = args.connect

    from repro.service.shard_worker import ShardWorker

    worker = ShardWorker(
        host,
        port,
        token=args.token,
        name=args.name,
        weight=args.weight,
        retries=args.retries,
        retry_delay=args.retry_delay,
    )
    try:
        worker.run()
    except (ServiceError, ProtocolError, OSError) as exc:
        print(f"repro-shard: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
