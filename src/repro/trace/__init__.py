"""Trace substrate: request records, traces, bandwidth signals, file formats."""

from repro.trace.bandwidth import BandwidthSignal, bandwidth_signal, phase_boundaries
from repro.trace.darshan import (
    DarshanHeatmap,
    heatmap_from_trace,
    heatmap_to_signal,
    read_heatmap,
    write_heatmap,
)
from repro.trace.framing import (
    FlushFrame,
    FrameDecoder,
    FrameReader,
    FrameWriter,
    encode_frame,
    iter_frames,
)
from repro.trace.jsonl import (
    FlushRecord,
    JsonLinesTraceWriter,
    flushes_to_trace,
    trace_to_flushes,
)
from repro.trace.jsonl import iter_flushes as iter_jsonl_flushes
from repro.trace.jsonl import read_trace as read_jsonl_trace
from repro.trace.jsonl import write_trace as write_jsonl_trace
from repro.trace.msgpack import MsgpackTraceWriter, packb, unpackb
from repro.trace.msgpack import iter_flushes as iter_msgpack_flushes
from repro.trace.msgpack import read_trace as read_msgpack_trace
from repro.trace.msgpack import write_trace as write_msgpack_trace
from repro.trace.record import GroundTruth, IOKind, IOPhase, IORequest
from repro.trace.recorder import read_recorder_directory, write_recorder_directory
from repro.trace.sampling import (
    DiscreteSignal,
    discretize_signal,
    discretize_trace,
    recommend_sampling_frequency,
)
from repro.trace.trace import Trace, concatenate_in_time, merge_traces

__all__ = [
    "BandwidthSignal",
    "bandwidth_signal",
    "phase_boundaries",
    "DarshanHeatmap",
    "heatmap_from_trace",
    "heatmap_to_signal",
    "read_heatmap",
    "write_heatmap",
    "FlushFrame",
    "FrameDecoder",
    "FrameReader",
    "FrameWriter",
    "encode_frame",
    "iter_frames",
    "FlushRecord",
    "JsonLinesTraceWriter",
    "flushes_to_trace",
    "trace_to_flushes",
    "iter_jsonl_flushes",
    "read_jsonl_trace",
    "write_jsonl_trace",
    "MsgpackTraceWriter",
    "packb",
    "unpackb",
    "iter_msgpack_flushes",
    "read_msgpack_trace",
    "write_msgpack_trace",
    "GroundTruth",
    "IOKind",
    "IOPhase",
    "IORequest",
    "read_recorder_directory",
    "write_recorder_directory",
    "DiscreteSignal",
    "discretize_signal",
    "discretize_trace",
    "recommend_sampling_frequency",
    "Trace",
    "concatenate_in_time",
    "merge_traces",
]
