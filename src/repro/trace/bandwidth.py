"""Application-level bandwidth signal built from individual I/O requests.

Section II-A of the paper: the tracer records individual requests per rank and
the analysis script evaluates "the overlapping of the requests (i.e.,
bandwidth at the application level) ... with a linear complexity with the
number of I/O requests".  This module implements exactly that: each request is
modelled as a constant transfer rate ``bytes / duration`` over its lifetime,
and the application-level signal is the sum of the rates of all requests
active at a given instant — a piecewise-constant function of time.

The construction is an event sweep over the 2·n request boundaries, i.e.
O(n log n) for the sort and O(n) for the sweep, fully vectorized in numpy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.exceptions import EmptyTraceError
from repro.trace.trace import Trace

#: Requests shorter than this (seconds) are treated as instantaneous point
#: transfers and spread over this width instead, to keep rates finite.
_MIN_REQUEST_DURATION = 1e-9


@dataclass(frozen=True)
class BandwidthSignal:
    """A piecewise-constant bandwidth-over-time signal.

    Attributes
    ----------
    times:
        Segment boundaries, length ``m + 1``, strictly increasing.
    values:
        Bandwidth (bytes/s) on each of the ``m`` segments ``[times[i], times[i+1])``.
    """

    times: NDArray[np.float64]
    values: NDArray[np.float64]

    def __post_init__(self) -> None:
        if len(self.times) != len(self.values) + 1:
            raise ValueError(
                f"times must have exactly one more entry than values "
                f"({len(self.times)} vs {len(self.values)})"
            )
        if len(self.values) and np.any(np.diff(self.times) <= 0):
            raise ValueError("segment boundaries must be strictly increasing")

    # -------------------------------------------------------------- #
    @property
    def t_start(self) -> float:
        """First instant covered by the signal."""
        return float(self.times[0])

    @property
    def t_end(self) -> float:
        """Last instant covered by the signal."""
        return float(self.times[-1])

    @property
    def duration(self) -> float:
        """Length of the covered time range in seconds."""
        return self.t_end - self.t_start

    @property
    def segment_durations(self) -> NDArray[np.float64]:
        """Length of each piecewise-constant segment."""
        return np.diff(self.times)

    def volume(self) -> float:
        """Total number of bytes represented by the signal (integral of bandwidth)."""
        if len(self.values) == 0:
            return 0.0
        return float(np.dot(self.values, self.segment_durations))

    def max_bandwidth(self) -> float:
        """Peak instantaneous bandwidth of the signal."""
        if len(self.values) == 0:
            return 0.0
        return float(self.values.max())

    # -------------------------------------------------------------- #
    def at(self, t: ArrayLike) -> NDArray[np.float64]:
        """Evaluate the signal at time(s) ``t``.

        Points outside the covered range evaluate to 0.  Within the range the
        value of the segment containing ``t`` is returned (left-inclusive).
        """
        t_arr = np.atleast_1d(np.asarray(t, dtype=np.float64))
        if len(self.values) == 0:
            return np.zeros_like(t_arr)
        idx = np.searchsorted(self.times, t_arr, side="right") - 1
        inside = (idx >= 0) & (idx < len(self.values)) & (t_arr < self.times[-1])
        out = np.zeros_like(t_arr)
        out[inside] = self.values[idx[inside]]
        return out

    def cumulative_volume(self, t: ArrayLike) -> NDArray[np.float64]:
        """Bytes transferred from :attr:`t_start` up to time(s) ``t``.

        The cumulative volume of a piecewise-constant rate is piecewise linear,
        so it can be evaluated exactly with linear interpolation between the
        segment boundaries.
        """
        t_arr = np.atleast_1d(np.asarray(t, dtype=np.float64))
        if len(self.values) == 0:
            return np.zeros_like(t_arr)
        cum = np.concatenate([[0.0], np.cumsum(self.values * self.segment_durations)])
        clipped = np.clip(t_arr, self.t_start, self.t_end)
        return np.interp(clipped, self.times, cum)

    def mean_bandwidth(self) -> float:
        """Average bandwidth over the covered range (the V(T)/L(T) threshold)."""
        if self.duration == 0.0:
            return 0.0
        return self.volume() / self.duration

    def restricted(self, t0: float, t1: float) -> "BandwidthSignal":
        """Return the signal restricted (and clipped) to the window [t0, t1]."""
        if t1 <= t0:
            raise ValueError(f"window end ({t1}) must be > start ({t0})")
        t0 = max(t0, self.t_start)
        t1 = min(t1, self.t_end)
        if t1 <= t0 or len(self.values) == 0:
            return BandwidthSignal(
                times=np.array([t0, max(t1, t0 + _MIN_REQUEST_DURATION)]),
                values=np.array([0.0]),
            )
        inner = self.times[(self.times > t0) & (self.times < t1)]
        times = np.concatenate([[t0], inner, [t1]])
        mids = 0.5 * (times[:-1] + times[1:])
        values = self.at(mids)
        return BandwidthSignal(times=times, values=values)


def bandwidth_signal(trace: Trace, *, kind: str | None = "write") -> BandwidthSignal:
    """Compute the application-level bandwidth signal of ``trace``.

    Parameters
    ----------
    trace:
        The trace to analyse.
    kind:
        Restrict to ``"write"`` or ``"read"`` requests, or ``None`` to use all.
        The paper's analysis focuses on writes by default.

    Returns
    -------
    BandwidthSignal
        The piecewise-constant sum of the per-request transfer rates.
    """
    work = trace if kind is None else trace.filter_kind(kind)
    if work.is_empty:
        raise EmptyTraceError("cannot build a bandwidth signal from an empty trace")

    starts = work.starts.astype(np.float64)
    ends = work.ends.astype(np.float64)
    nbytes = work.nbytes.astype(np.float64)

    durations = np.maximum(ends - starts, _MIN_REQUEST_DURATION)
    ends = starts + durations
    rates = nbytes / durations

    # Event sweep: +rate at each start, -rate at each end.
    boundaries = np.concatenate([starts, ends])
    deltas = np.concatenate([rates, -rates])
    order = np.argsort(boundaries, kind="stable")
    boundaries = boundaries[order]
    deltas = deltas[order]

    # Collapse identical timestamps so segments have strictly positive width.
    unique_times, inverse = np.unique(boundaries, return_inverse=True)
    delta_per_time = np.zeros(len(unique_times))
    np.add.at(delta_per_time, inverse, deltas)

    active = np.cumsum(delta_per_time)[:-1]
    # Numerical noise can leave tiny negative rates after full cancellation.
    active = np.where(np.abs(active) < 1e-6, 0.0, active)
    active = np.maximum(active, 0.0)

    return BandwidthSignal(times=unique_times, values=active)


def phase_boundaries(signal: BandwidthSignal, *, threshold: float = 0.0) -> list[tuple[float, float]]:
    """Return the maximal time intervals during which the bandwidth exceeds ``threshold``.

    This is a helper for ground-truth-style inspection and for the R_IO /
    B_IO characterization (Section II-C): with ``threshold = V(T)/L(T)`` the
    returned intervals are the "substantial I/O" subset S of the trace.
    """
    if len(signal.values) == 0:
        return []
    above = signal.values > threshold
    # A run of above-threshold segments starts right after a 0->1 flip and ends
    # right after a 1->0 flip; the edges of the signal close half-open runs.
    flips = np.diff(above.astype(np.int8))
    rises = np.flatnonzero(flips == 1) + 1
    falls = np.flatnonzero(flips == -1) + 1
    if above[0]:
        rises = np.concatenate([[0], rises])
    starts = signal.times[rises]
    ends = signal.times[falls]
    if above[-1]:
        ends = np.concatenate([ends, [signal.times[-1]]])
    return [(float(t0), float(t1)) for t0, t1 in zip(starts, ends)]
