"""Darshan-heatmap-style profiles.

Figure 11 of the paper analyses a Darshan profile of Nek5000 downloaded from
the I/O Trace Initiative.  Darshan's HEATMAP module aggregates the bytes moved
per time *bin* (per rank and direction) instead of recording individual
requests.  FTIO "extracted the heatmap from [the] Darshan profile and
automatically set the sampling frequency to the bin widths in seconds".

Because real Darshan logs (binary, pydarshan) are not available offline, this
module defines a compact JSON representation of the same information — bin
width, per-bin transferred bytes, optionally split per rank — together with:

* a reader/writer pair,
* :func:`heatmap_to_signal` which converts a heatmap into the
  :class:`~repro.trace.sampling.DiscreteSignal` FTIO consumes (with
  ``fs = 1 / bin_width``, exactly as the paper describes), and
* :func:`heatmap_from_trace` to build a heatmap from a request trace, which is
  how the Nek5000-like profile used in experiment E11 is produced.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np
from numpy.typing import NDArray

from repro.exceptions import TraceFormatError
from repro.trace.bandwidth import bandwidth_signal
from repro.trace.sampling import DiscreteSignal
from repro.trace.trace import Trace
from repro.utils.validation import check_positive

FORMAT_VERSION = 1


@dataclass(frozen=True)
class DarshanHeatmap:
    """A Darshan-like heatmap: bytes transferred per fixed-width time bin.

    Attributes
    ----------
    bin_width:
        Width of each bin in seconds.
    write_bins:
        Bytes written in each bin (application level, all ranks merged).
    read_bins:
        Bytes read in each bin; may be empty if the profile only covers writes.
    t_start:
        Timestamp of the left edge of the first bin.
    metadata:
        Free-form profile information (application, ranks, cluster, ...).
    """

    bin_width: float
    write_bins: NDArray[np.float64]
    read_bins: NDArray[np.float64] = field(default_factory=lambda: np.zeros(0))
    t_start: float = 0.0
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_positive(self.bin_width, "bin_width")
        if len(self.read_bins) and len(self.read_bins) != len(self.write_bins):
            raise TraceFormatError(
                "read_bins and write_bins must have the same length when both are present"
            )

    @property
    def n_bins(self) -> int:
        """Number of time bins in the heatmap."""
        return int(len(self.write_bins))

    @property
    def duration(self) -> float:
        """Time span covered by the heatmap in seconds."""
        return self.n_bins * self.bin_width

    @property
    def sampling_frequency(self) -> float:
        """The sampling frequency FTIO derives from the bin width (1 / bin_width)."""
        return 1.0 / self.bin_width

    def total_bytes(self, *, kind: str = "write") -> float:
        """Total bytes recorded in the heatmap for the given direction."""
        bins = self.write_bins if kind == "write" else self.read_bins
        return float(bins.sum()) if len(bins) else 0.0

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Serialize the heatmap to a JSON-compatible dictionary."""
        return {
            "format": "repro-darshan-heatmap",
            "version": FORMAT_VERSION,
            "bin_width": self.bin_width,
            "t_start": self.t_start,
            "metadata": dict(self.metadata),
            "write_bins": [float(v) for v in self.write_bins],
            "read_bins": [float(v) for v in self.read_bins],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DarshanHeatmap":
        """Reconstruct a heatmap from :meth:`to_dict` output."""
        try:
            if data.get("format") != "repro-darshan-heatmap":
                raise TraceFormatError(f"not a heatmap profile: format={data.get('format')!r}")
            return cls(
                bin_width=float(data["bin_width"]),
                write_bins=np.asarray(data["write_bins"], dtype=np.float64),
                read_bins=np.asarray(data.get("read_bins", []), dtype=np.float64),
                t_start=float(data.get("t_start", 0.0)),
                metadata=dict(data.get("metadata", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceFormatError(f"malformed heatmap profile: {exc}") from exc


def write_heatmap(heatmap: DarshanHeatmap, path: str | Path) -> None:
    """Write a heatmap profile to a JSON file."""
    Path(path).write_text(json.dumps(heatmap.to_dict()), encoding="utf-8")


def read_heatmap(path: str | Path) -> DarshanHeatmap:
    """Read a heatmap profile from a JSON file."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"{path}: invalid JSON: {exc}") from exc
    return DarshanHeatmap.from_dict(data)


def heatmap_to_signal(heatmap: DarshanHeatmap, *, kind: str = "write") -> DiscreteSignal:
    """Convert a heatmap into the discrete bandwidth signal FTIO analyses.

    The bandwidth in a bin is bytes / bin_width, and the sampling frequency is
    set to 1 / bin_width as the paper does for Darshan inputs.  The conversion
    is exact (bin mode), so the abstraction error is zero.
    """
    bins = heatmap.write_bins if kind == "write" else heatmap.read_bins
    if len(bins) == 0:
        raise TraceFormatError(f"heatmap has no {kind} bins")
    samples = np.asarray(bins, dtype=np.float64) / heatmap.bin_width
    return DiscreteSignal(
        samples=samples,
        sampling_frequency=heatmap.sampling_frequency,
        t_start=heatmap.t_start,
        abstraction_error=0.0,
        mode="bin",
    )


def heatmap_from_trace(
    trace: Trace,
    bin_width: float,
    *,
    metadata: dict | None = None,
) -> DarshanHeatmap:
    """Aggregate a request trace into a Darshan-like heatmap with ``bin_width`` bins."""
    check_positive(bin_width, "bin_width")
    meta = dict(trace.metadata)
    meta.update(metadata or {})
    bins_by_kind: dict[str, NDArray[np.float64]] = {}
    t_start = trace.t_start
    n_bins = max(int(np.ceil(trace.duration / bin_width)), 1)
    edges = t_start + np.arange(n_bins + 1) * bin_width
    for kind in ("write", "read"):
        sub = trace.filter_kind(kind)
        if sub.is_empty:
            bins_by_kind[kind] = np.zeros(0)
            continue
        signal = bandwidth_signal(sub, kind=None)
        cumulative = signal.cumulative_volume(edges)
        bins_by_kind[kind] = np.diff(cumulative)
    if len(bins_by_kind["write"]) == 0 and len(bins_by_kind["read"]) == 0:
        raise TraceFormatError("cannot build a heatmap from an empty trace")
    width = len(bins_by_kind["write"]) or len(bins_by_kind["read"])
    for kind in ("write", "read"):
        if len(bins_by_kind[kind]) == 0:
            bins_by_kind[kind] = np.zeros(width)
    return DarshanHeatmap(
        bin_width=bin_width,
        write_bins=bins_by_kind["write"],
        read_bins=bins_by_kind["read"],
        t_start=t_start,
        metadata=meta,
    )
