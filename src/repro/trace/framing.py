"""Length-prefixed flush frames: the wire format of the streaming service.

The JSONL and MessagePack trace files are *per application*: one file, one
job, and the reader discovers record boundaries by parsing the payload
itself.  A multi-tenant prediction service instead receives flushes from many
concurrent jobs over a shared byte stream (an append-only spool file that is
tailed, or a socket pair), so each flush is wrapped in a small self-delimiting
frame that carries the job identity and the payload length up front — the
broker can demultiplex a frame to the right session without decoding the
payload, the way a network processor classifies a packet from its header.

Frame layout (all integers big-endian)::

    offset  size  field
    0       4     magic  b"FTS1"
    4       1     payload format (1 = JSON, 2 = MessagePack)
    5       1     flags (reserved, must be 0)
    6       2     job-id length J
    8       4     payload length P
    12      J     job id (UTF-8)
    12+J    P     payload (one flush record in the chosen format)

The payload is the :meth:`FlushRecord.to_dict` schema encoded with the
existing JSONL or MessagePack encoders, so a framed stream is a thin layer
over the formats the tracer already writes.  Frames are self-contained and
append-only: a reader positioned at a frame boundary never needs to rewind,
and a partially written final frame (crash, in-flight flush) simply stays
buffered until the missing bytes arrive.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Callable, Iterator

from repro.exceptions import TraceFormatError
from repro.trace.jsonl import FlushRecord
from repro.trace.msgpack import packb, unpackb

#: First bytes of every frame; guards against tailing a non-framed file.
FRAME_MAGIC = b"FTS1"
#: Payload format codes.
PAYLOAD_JSON = 1
PAYLOAD_MSGPACK = 2

_FORMAT_NAMES = {PAYLOAD_JSON: "json", PAYLOAD_MSGPACK: "msgpack"}
_FORMAT_CODES = {name: code for code, name in _FORMAT_NAMES.items()}
_HEADER = struct.Struct(">4sBBHI")
#: Upper bound on one frame's payload; a corrupt length field would otherwise
#: make a tailing reader wait forever for petabytes that never arrive.
MAX_PAYLOAD_BYTES = 256 * 1024 * 1024


@dataclass(frozen=True)
class FlushFrame:
    """One decoded frame: a flush record plus its routing header."""

    job: str
    flush: FlushRecord
    payload_format: str


def encode_frame(
    flush: FlushRecord,
    *,
    job: str,
    payload_format: str = "msgpack",
) -> bytes:
    """Encode one flush record as a length-prefixed frame."""
    try:
        code = _FORMAT_CODES[payload_format]
    except KeyError:
        known = ", ".join(sorted(_FORMAT_CODES))
        raise TraceFormatError(
            f"unknown frame payload format {payload_format!r}; known formats: {known}"
        ) from None
    job_bytes = job.encode("utf-8")
    if len(job_bytes) > 0xFFFF:
        raise TraceFormatError(f"job id is {len(job_bytes)} bytes; the frame header allows 65535")
    record = flush.to_dict()
    if code == PAYLOAD_JSON:
        payload = json.dumps(record).encode("utf-8")
    else:
        payload = packb(record)
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise TraceFormatError(f"flush payload of {len(payload)} bytes exceeds the frame limit")
    header = _HEADER.pack(FRAME_MAGIC, code, 0, len(job_bytes), len(payload))
    return header + job_bytes + payload


def _decode_payload(code: int, payload: bytes) -> FlushRecord:
    if code == PAYLOAD_JSON:
        try:
            data = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TraceFormatError(f"invalid JSON frame payload: {exc}") from exc
    elif code == PAYLOAD_MSGPACK:
        data = unpackb(payload)
    else:  # pragma: no cover - rejected by the header check already
        raise TraceFormatError(f"unknown frame payload format code {code}")
    if not isinstance(data, dict):
        raise TraceFormatError(f"frame payload must be a flush map, got {type(data).__name__}")
    return FlushRecord.from_dict(data)


class FrameDecoder:
    """Incremental frame decoder: ``feed()`` bytes in, iterate frames out.

    The decoder buffers arbitrary byte chunks — socket reads, tail reads of a
    growing file — and yields every complete frame.  Bytes belonging to an
    incomplete trailing frame stay buffered until more data arrives, which is
    what makes the stream append/tail-able.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def buffered_bytes(self) -> int:
        """Number of bytes waiting for the rest of their frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> None:
        """Append raw bytes received from the stream."""
        self._buffer.extend(data)

    def frames(self) -> Iterator[FlushFrame]:
        """Yield (and consume) every complete frame currently buffered."""
        while True:
            frame = self._try_decode_one()
            if frame is None:
                return
            yield frame

    def _try_decode_one(self) -> FlushFrame | None:
        buffer = self._buffer
        if len(buffer) < _HEADER.size:
            return None
        magic, code, flags, job_len, payload_len = _HEADER.unpack_from(buffer)
        if magic != FRAME_MAGIC:
            raise TraceFormatError(
                f"bad frame magic {bytes(magic)!r}; the stream is not FTS1-framed or is corrupt"
            )
        if flags != 0:
            raise TraceFormatError(f"unsupported frame flags 0x{flags:02x}")
        if code not in _FORMAT_NAMES:
            raise TraceFormatError(f"unknown frame payload format code {code}")
        if payload_len > MAX_PAYLOAD_BYTES:
            raise TraceFormatError(f"frame payload length {payload_len} exceeds the limit")
        total = _HEADER.size + job_len + payload_len
        if len(buffer) < total:
            return None
        job = bytes(buffer[_HEADER.size : _HEADER.size + job_len]).decode("utf-8")
        payload = bytes(buffer[_HEADER.size + job_len : total])
        del buffer[:total]
        return FlushFrame(
            job=job, flush=_decode_payload(code, payload), payload_format=_FORMAT_NAMES[code]
        )


class FrameWriter:
    """Append frames to a spool file or a binary stream (e.g. a socket file).

    Multiple jobs can share one writer — the per-frame ``job`` argument
    overrides the default given at construction — which is exactly the
    multi-tenant spool the broker tails.
    """

    def __init__(
        self,
        target: str | Path | BinaryIO,
        *,
        job: str | None = None,
        payload_format: str = "msgpack",
    ) -> None:
        self._path: Path | None = None
        self._stream: BinaryIO | None = None
        if isinstance(target, (str, Path)):
            self._path = Path(target)
        else:
            self._stream = target
        self._job = job
        self._payload_format = payload_format
        self._frames_written = 0
        self._bytes_written = 0

    @property
    def frames_written(self) -> int:
        """Number of frames appended so far."""
        return self._frames_written

    @property
    def bytes_written(self) -> int:
        """Number of bytes appended so far."""
        return self._bytes_written

    def write(self, flush: FlushRecord, *, job: str | None = None) -> int:
        """Append one flush frame; returns the encoded frame size in bytes."""
        job = job if job is not None else self._job
        if job is None:
            raise TraceFormatError("no job id: pass job= to write() or to the writer")
        frame = encode_frame(flush, job=job, payload_format=self._payload_format)
        if self._path is not None:
            with self._path.open("ab") as handle:
                handle.write(frame)
        else:
            assert self._stream is not None
            self._stream.write(frame)
            self._stream.flush()
        self._frames_written += 1
        self._bytes_written += len(frame)
        return len(frame)


class FrameReader:
    """Tail a growing framed spool file.

    Every :meth:`poll` reads the bytes appended since the previous poll and
    returns the newly completed frames; a frame still being written is left
    buffered for the next poll.  The reader therefore never re-reads the file
    from the beginning — ingestion cost is proportional to the new data, not
    to the file size.

    Parameters
    ----------
    path:
        The spool file to tail (it may not exist yet).
    offset:
        Byte offset to start from (e.g. resumed from a snapshot).
    sink:
        Optional callback invoked with each poll's newly completed frames
        (the broker uses this to ingest them automatically).
    """

    def __init__(
        self,
        path: str | Path,
        *,
        offset: int = 0,
        sink: Callable[[list[FlushFrame]], object] | None = None,
    ) -> None:
        self._path = Path(path)
        self._offset = int(offset)
        self._decoder = FrameDecoder()
        self._sink = sink

    @property
    def offset(self) -> int:
        """File offset up to which bytes have been consumed."""
        return self._offset

    def poll(self) -> list[FlushFrame]:
        """Read newly appended bytes and return the completed frames."""
        if not self._path.exists():
            return []
        with self._path.open("rb") as handle:
            handle.seek(self._offset)
            data = handle.read()
        if data:
            self._offset += len(data)
            self._decoder.feed(data)
        frames = list(self._decoder.frames())
        if frames and self._sink is not None:
            self._sink(frames)
        return frames


def iter_frames(path: str | Path) -> Iterator[FlushFrame]:
    """Yield every complete frame stored in a framed spool file."""
    decoder = FrameDecoder()
    decoder.feed(Path(path).read_bytes())
    yield from decoder.frames()
    if decoder.buffered_bytes:
        raise TraceFormatError(
            f"{path}: {decoder.buffered_bytes} trailing bytes form an incomplete frame"
        )
