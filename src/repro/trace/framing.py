"""Length-prefixed flush frames: the wire format of the streaming service.

The JSONL and MessagePack trace files are *per application*: one file, one
job, and the reader discovers record boundaries by parsing the payload
itself.  A multi-tenant prediction service instead receives flushes from many
concurrent jobs over a shared byte stream (an append-only spool file that is
tailed, or a socket pair), so each flush is wrapped in a small self-delimiting
frame that carries the job identity and the payload length up front — the
broker can demultiplex a frame to the right session without decoding the
payload, the way a network processor classifies a packet from its header.

Frame layout (all integers big-endian)::

    offset  size  field
    0       4     magic  b"FTS1"
    4       1     payload format (1 = JSON, 2 = MessagePack)
    5       1     flags: high nibble = frame version, low nibble = version-
                  specific (see below)
    6       2     job-id length J
    8       4     payload length P
    12      J     job id (UTF-8)
    12+J    P     payload (one flush record in the chosen format)

The flags byte is versioned.  Version 0 (the original wire format) requires
the low nibble to be zero, so every frame ever written before the version
field existed still decodes.  Version 1 uses the low nibble as a **tenant /
auth token**: a 4-bit shared secret stamped by the producer and checked by
the consumer, so a misdirected or forged stream is rejected at the framing
layer before any payload is decoded.  Versions above
:data:`MAX_FRAME_VERSION` are rejected — a reader never silently mis-frames
a future format.

The payload is the :meth:`FlushRecord.to_dict` schema encoded with the
existing JSONL or MessagePack encoders, so a framed stream is a thin layer
over the formats the tracer already writes.  Frames are self-contained and
append-only: a reader positioned at a frame boundary never needs to rewind,
and a partially written final frame (crash, in-flight flush) simply stays
buffered until the missing bytes arrive.
"""

from __future__ import annotations

import json
import os
import shutil
import struct
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Callable, Iterator

from repro.exceptions import TraceFormatError
from repro.trace.jsonl import FlushRecord
from repro.trace.msgpack import packb, unpackb

#: First bytes of every frame; guards against tailing a non-framed file.
FRAME_MAGIC = b"FTS1"
#: Payload format codes.
PAYLOAD_JSON = 1
PAYLOAD_MSGPACK = 2
#: Highest frame version this decoder understands.
MAX_FRAME_VERSION = 1

_FORMAT_NAMES = {PAYLOAD_JSON: "json", PAYLOAD_MSGPACK: "msgpack"}
_FORMAT_CODES = {name: code for code, name in _FORMAT_NAMES.items()}
_HEADER = struct.Struct(">4sBBHI")
#: Upper bound on one frame's payload; a corrupt length field would otherwise
#: make a tailing reader wait forever for petabytes that never arrive.
MAX_PAYLOAD_BYTES = 256 * 1024 * 1024


def _pack_flags(token: int | None) -> int:
    if token is None:
        return 0
    token = int(token)
    if not 0 <= token <= 0xF:
        raise TraceFormatError(f"tenant token must fit the flags nibble (0..15), got {token}")
    return (1 << 4) | token


def _unpack_flags(flags: int) -> int | None:
    """Validate a flags byte; returns the tenant token (``None`` for version 0)."""
    version = flags >> 4
    if version > MAX_FRAME_VERSION:
        raise TraceFormatError(
            f"unsupported frame version {version} (this reader understands <= "
            f"{MAX_FRAME_VERSION})"
        )
    if version == 0:
        if flags & 0x0F:
            raise TraceFormatError(f"unsupported frame flags 0x{flags:02x} for version 0")
        return None
    return flags & 0x0F


@dataclass(frozen=True)
class FlushFrame:
    """One decoded frame: a flush record plus its routing header."""

    job: str
    flush: FlushRecord
    payload_format: str
    #: Tenant/auth token nibble of a version-1 frame (``None`` on version 0).
    token: int | None = None


@dataclass(frozen=True)
class RawFrame:
    """One *undecoded* frame: routing header fields plus the raw bytes.

    A demultiplexing front end (the sharded router) classifies frames from
    the header alone and forwards ``data`` verbatim — the payload is decoded
    exactly once, in the shard that owns the job.

    ``data`` is usually a borrowed ``memoryview`` into the splitter's fed
    chunk (zero-copy); consumers that outlive the chunk (parking a frame
    across a reshard, pickling) must materialize it with ``bytes(data)``.
    """

    job: str
    data: bytes | memoryview
    token: int | None = None


def encode_frame(
    flush: FlushRecord,
    *,
    job: str,
    payload_format: str = "msgpack",
    token: int | None = None,
) -> bytes:
    """Encode one flush record as a length-prefixed frame.

    With ``token`` (0..15) the frame is written as version 1 and carries the
    tenant/auth nibble; without it the frame is the plain version-0 format.
    """
    try:
        code = _FORMAT_CODES[payload_format]
    except KeyError:
        known = ", ".join(sorted(_FORMAT_CODES))
        raise TraceFormatError(
            f"unknown frame payload format {payload_format!r}; known formats: {known}"
        ) from None
    flags = _pack_flags(token)
    job_bytes = job.encode("utf-8")
    if len(job_bytes) > 0xFFFF:
        raise TraceFormatError(f"job id is {len(job_bytes)} bytes; the frame header allows 65535")
    record = flush.to_dict()
    if code == PAYLOAD_JSON:
        payload = json.dumps(record).encode("utf-8")
    else:
        payload = packb(record)
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise TraceFormatError(f"flush payload of {len(payload)} bytes exceeds the frame limit")
    header = _HEADER.pack(FRAME_MAGIC, code, flags, len(job_bytes), len(payload))
    return header + job_bytes + payload


def _decode_payload(code: int, payload: bytes | memoryview) -> FlushRecord:
    if code == PAYLOAD_JSON:
        try:
            data = json.loads(str(payload, "utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TraceFormatError(f"invalid JSON frame payload: {exc}") from exc
    elif code == PAYLOAD_MSGPACK:
        data = unpackb(payload)
    else:  # pragma: no cover - rejected by the header check already
        raise TraceFormatError(f"unknown frame payload format code {code}")
    if not isinstance(data, dict):
        raise TraceFormatError(f"frame payload must be a flush map, got {type(data).__name__}")
    return FlushRecord.from_dict(data)


class _FrameBuffer:
    """Shared incremental framing: buffer byte chunks, slice out complete frames.

    Subclasses decide what a "frame" materializes to: :class:`FrameDecoder`
    decodes the payload, :class:`FrameSplitter` hands the raw bytes through.

    The buffer is **zero-copy**: fed chunks are kept as-is in a deque (bytes
    objects and memoryviews are borrowed, never copied in), and a frame whose
    bytes lie within a single chunk is emitted as a ``memoryview`` slice of
    that chunk.  Only a frame that *spans* chunks is joined into a fresh
    ``bytes`` object; those join-copies are counted (:attr:`bytes_copied`),
    and :attr:`bytes_copied_per_frame` is the ingest-path copy metric the
    service exposes — the old implementation copied every byte at least once
    (``bytearray.extend`` on feed, ``bytes()`` on emit), this one averages
    well under one copy per frame for any chunk size above the frame size.

    A fed memoryview is only *borrowed*; callers whose underlying buffer gets
    reclaimed (the shared-memory ring reader) must call :meth:`detach` before
    releasing it, which materializes the not-yet-consumed tail.
    """

    def __init__(self, *, expected_token: int | None = None) -> None:
        self._chunks: deque[bytes | memoryview] = deque()
        self._offset = 0  # consumed bytes of the first chunk
        self._length = 0  # unconsumed bytes across all chunks
        self._expected_token = expected_token
        self._bytes_copied = 0
        self._frames_emitted = 0
        self._bytes_emitted = 0

    @property
    def buffered_bytes(self) -> int:
        """Number of bytes waiting for the rest of their frame."""
        return self._length

    @property
    def bytes_copied(self) -> int:
        """Bytes materialized by join-copies (frames spanning chunks, detach)."""
        return self._bytes_copied

    @property
    def frames_emitted(self) -> int:
        """Number of complete frames sliced out so far."""
        return self._frames_emitted

    @property
    def bytes_emitted(self) -> int:
        """Total size in bytes of the frames sliced out so far."""
        return self._bytes_emitted

    @property
    def bytes_copied_per_frame(self) -> float:
        """Average bytes copied per emitted frame (0.0 before any frame).

        A value at or below the average frame size means at most one copy per
        frame through this hop; 0.0 means every frame was handed through as a
        borrowed view.
        """
        if self._frames_emitted == 0:
            return 0.0
        return self._bytes_copied / self._frames_emitted

    def feed(self, data: bytes | bytearray | memoryview) -> None:
        """Append raw bytes received from the stream (borrowed, not copied).

        ``bytes`` and ``memoryview`` chunks are referenced as-is.  A
        ``bytearray`` is snapshotted (the caller may mutate or resize it,
        which would corrupt or invalidate a borrowed view).
        """
        if isinstance(data, bytearray):
            data = bytes(data)
            self._bytes_copied += len(data)
        elif isinstance(data, memoryview) and (data.format != "B" or data.ndim != 1):
            data = data.cast("B")
        if len(data) == 0:
            return
        self._chunks.append(data)
        self._length += len(data)

    def detach(self) -> None:
        """Materialize borrowed memoryview chunks into owned ``bytes``.

        After this call the buffer references no fed memoryview, so the
        caller may reclaim the underlying memory (e.g. acknowledge ring
        bytes).  Only the not-yet-consumed tail is copied, and the copy is
        counted in :attr:`bytes_copied`.
        """
        rebuilt: deque[bytes | memoryview] = deque()
        for i, chunk in enumerate(self._chunks):
            if not isinstance(chunk, memoryview):
                rebuilt.append(chunk)
                continue
            view = chunk[self._offset :] if i == 0 else chunk
            if i == 0:
                self._offset = 0
            data = bytes(view)
            self._bytes_copied += len(data)
            rebuilt.append(data)
        self._chunks = rebuilt

    def discard_buffered(self) -> int:
        """Drop the buffered partial frame (resync); returns the bytes dropped."""
        dropped = self._length
        self._chunks.clear()
        self._offset = 0
        self._length = 0
        return dropped

    def _contiguous(self, size: int) -> bytes | memoryview:
        """The first ``size`` buffered bytes, contiguous; the caller checked size.

        Zero-copy (a memoryview slice) when they lie within the first chunk;
        a counted join-copy when they span chunks.  A join *coalesces*: the
        joined bytes replace the prefix chunks in the deque, so polling for
        the same prefix again (a header re-examined on every feed of a
        dribbling stream) costs the copy only once, not once per poll.
        """
        first = self._chunks[0]
        if len(first) - self._offset >= size:
            return memoryview(first)[self._offset : self._offset + size]
        out = bytearray(size)
        pos = 0
        offset = self._offset
        while pos < size:
            chunk = self._chunks.popleft()
            take = min(size - pos, len(chunk) - offset)
            out[pos : pos + take] = memoryview(chunk)[offset : offset + take]
            pos += take
            if offset + take < len(chunk):
                self._chunks.appendleft(memoryview(chunk)[offset + take :])
            offset = 0
        joined = bytes(out)
        self._chunks.appendleft(joined)
        self._offset = 0
        self._bytes_copied += size
        return joined

    def _consume(self, size: int) -> None:
        """Advance past the first ``size`` buffered bytes."""
        self._length -= size
        self._offset += size
        while self._chunks and self._offset >= len(self._chunks[0]):
            self._offset -= len(self._chunks.popleft())

    def _take_frame(self, total: int) -> bytes | memoryview:
        """Slice out one complete frame of ``total`` bytes and consume it."""
        view = self._contiguous(total)
        self._consume(total)
        self._frames_emitted += 1
        self._bytes_emitted += total
        return view

    def _check_token(self, token: int | None) -> None:
        if self._expected_token is not None and token != self._expected_token:
            raise TraceFormatError(
                f"frame tenant token {token!r} does not match the expected token "
                f"{self._expected_token}"
            )

    def _slice_one(self) -> tuple[int, int | None, int, int] | None:
        """Validate the buffered header; returns (code, token, job_len, total)."""
        if self._length < _HEADER.size:
            return None
        magic, code, flags, job_len, payload_len = _HEADER.unpack_from(
            self._contiguous(_HEADER.size)
        )
        if magic != FRAME_MAGIC:
            raise TraceFormatError(
                f"bad frame magic {bytes(magic)!r}; the stream is not FTS1-framed or is corrupt"
            )
        token = _unpack_flags(flags)
        if code not in _FORMAT_NAMES:
            raise TraceFormatError(f"unknown frame payload format code {code}")
        if payload_len > MAX_PAYLOAD_BYTES:
            raise TraceFormatError(f"frame payload length {payload_len} exceeds the limit")
        self._check_token(token)
        total = _HEADER.size + job_len + payload_len
        if self._length < total:
            return None
        return code, token, job_len, total

    @staticmethod
    def _decode_job(frame: bytes | memoryview, job_len: int) -> str:
        raw = frame[_HEADER.size : _HEADER.size + job_len]
        try:
            return str(raw, "utf-8")
        except UnicodeDecodeError as exc:
            raise TraceFormatError(f"frame job id is not valid UTF-8: {exc}") from exc


class FrameDecoder(_FrameBuffer):
    """Incremental frame decoder: ``feed()`` bytes in, iterate frames out.

    The decoder buffers arbitrary byte chunks — socket reads, tail reads of a
    growing file — and yields every complete frame.  Bytes belonging to an
    incomplete trailing frame stay buffered until more data arrives, which is
    what makes the stream append/tail-able.  With ``expected_token`` set,
    every frame must carry that version-1 tenant/auth nibble; version-0
    (unauthenticated) frames and wrong tokens raise :class:`TraceFormatError`.
    """

    def frames(self) -> Iterator[FlushFrame]:
        """Yield (and consume) every complete frame currently buffered."""
        while True:
            frame = self._try_decode_one()
            if frame is None:
                return
            yield frame

    def drain(self) -> list[FlushFrame]:
        """All complete frames currently buffered, as a list."""
        return list(self.frames())

    def _try_decode_one(self) -> FlushFrame | None:
        sliced = self._slice_one()
        if sliced is None:
            return None
        code, token, job_len, total = sliced
        frame = self._take_frame(total)
        job = self._decode_job(frame, job_len)
        return FlushFrame(
            job=job,
            flush=_decode_payload(code, frame[_HEADER.size + job_len : total]),
            payload_format=_FORMAT_NAMES[code],
            token=token,
        )


class FrameSplitter(_FrameBuffer):
    """Header-only frame splitter: yields :class:`RawFrame` without decoding.

    The sharded router uses this to route a shared byte stream: the header is
    validated (magic, version, format code, length bound, token), the job id
    is read, and the frame's bytes are forwarded untouched — O(header) work
    per frame on the routing hot path.
    """

    def raw_frames(self) -> Iterator[RawFrame]:
        """Yield (and consume) every complete raw frame currently buffered.

        A frame that lies within one fed chunk is yielded as a borrowed
        ``memoryview`` of that chunk — the router forwards it without a copy.
        """
        while True:
            sliced = self._slice_one()
            if sliced is None:
                return
            _, token, job_len, total = sliced
            data = self._take_frame(total)
            job = self._decode_job(data, job_len)
            yield RawFrame(job=job, data=data, token=token)

    def drain(self) -> list[RawFrame]:
        """All complete raw frames currently buffered, as a list."""
        return list(self.raw_frames())


class FrameWriter:
    """Append frames to a spool file or a binary stream (e.g. a socket file).

    Multiple jobs can share one writer — the per-frame ``job`` argument
    overrides the default given at construction — which is exactly the
    multi-tenant spool the broker tails.

    Path-backed writers support **rotation**: :meth:`rotate` renames the
    current spool to ``<path>.<n>`` and continues appending to a fresh file,
    and with ``max_bytes`` set the writer rotates automatically before the
    append that would cross the limit (rotation therefore always happens at a
    frame boundary — a frame is never split across spool generations).
    """

    def __init__(
        self,
        target: str | Path | BinaryIO,
        *,
        job: str | None = None,
        payload_format: str = "msgpack",
        token: int | None = None,
        max_bytes: int | None = None,
    ) -> None:
        self._path: Path | None = None
        self._stream: BinaryIO | None = None
        if isinstance(target, (str, Path)):
            self._path = Path(target)
        else:
            self._stream = target
        if max_bytes is not None and self._path is None:
            raise TraceFormatError("max_bytes rotation requires a path-backed writer")
        self._job = job
        self._payload_format = payload_format
        self._token = token
        self._max_bytes = max_bytes
        self._frames_written = 0
        self._bytes_written = 0
        self._current_file_bytes = self._path.stat().st_size if self._path and self._path.exists() else 0
        # A restarted writer must continue the generation numbering, not
        # os.replace() the live file onto a retained ``<path>.1``.
        self._rotations = self._existing_generations()

    def _existing_generations(self) -> int:
        if self._path is None or not self._path.parent.exists():
            return 0
        prefix = self._path.name + "."
        suffixes = [
            int(candidate.name[len(prefix):])
            for candidate in self._path.parent.glob(prefix + "*")
            if candidate.name[len(prefix):].isdigit()
        ]
        return max(suffixes, default=0)

    @property
    def frames_written(self) -> int:
        """Number of frames appended so far."""
        return self._frames_written

    @property
    def bytes_written(self) -> int:
        """Number of bytes appended so far (across rotations)."""
        return self._bytes_written

    @property
    def rotations(self) -> int:
        """Highest generation number so far (counts pre-existing rotations)."""
        return self._rotations

    @property
    def current_file_bytes(self) -> int:
        """Size of the current spool generation in bytes."""
        return self._current_file_bytes

    def rotate(self) -> Path | None:
        """Rotate the spool: rename it to ``<path>.<n>`` and start fresh.

        Returns the rotated-away path, or ``None`` when the spool does not
        exist yet (nothing to rotate).  Only valid on path-backed writers.
        """
        if self._path is None:
            raise TraceFormatError("cannot rotate a stream-backed frame writer")
        if not self._path.exists():
            return None
        self._rotations += 1
        rotated = self._path.with_name(f"{self._path.name}.{self._rotations}")
        os.replace(self._path, rotated)
        self._current_file_bytes = 0
        return rotated

    def write(self, flush: FlushRecord, *, job: str | None = None) -> int:
        """Append one flush frame; returns the encoded frame size in bytes."""
        job = job if job is not None else self._job
        if job is None:
            raise TraceFormatError("no job id: pass job= to write() or to the writer")
        frame = encode_frame(
            flush, job=job, payload_format=self._payload_format, token=self._token
        )
        if self._path is not None:
            if (
                self._max_bytes is not None
                and self._current_file_bytes > 0
                and self._current_file_bytes + len(frame) > self._max_bytes
            ):
                self.rotate()
            with self._path.open("ab") as handle:
                handle.write(frame)
            self._current_file_bytes += len(frame)
        else:
            assert self._stream is not None
            self._stream.write(frame)
            self._stream.flush()
        self._frames_written += 1
        self._bytes_written += len(frame)
        return len(frame)


class FrameReader:
    """Tail a growing framed spool file, following rotations.

    Every :meth:`poll` reads the bytes appended since the previous poll and
    returns the newly completed frames; a frame still being written is left
    buffered for the next poll.  The reader therefore never re-reads the file
    from the beginning — ingestion cost is proportional to the new data, not
    to the file size.

    The reader keeps its file handle open between polls, which is what makes
    it survive **rotation**: when the spool is renamed away and a fresh file
    appears under the same path, the next poll first drains the remainder of
    the old generation through the retained handle (so a frame completed just
    before the rotation is never lost), then *chases the generations*: the
    rotated-away files (``<path>.<n>``, the :meth:`FrameWriter.rotate`
    naming) are located by inode and every generation newer than the one just
    drained is read in order before the live file is reopened — nothing is
    skipped even when several rotations happened between two polls.  If a
    generation ends in a torn frame (a writer crash), the partial bytes are
    discarded — **resynced** — instead of being glued onto the next
    generation's bytes, which would mis-frame everything after;
    :attr:`resyncs` and :attr:`skipped_bytes` count these events.

    Parameters
    ----------
    path:
        The spool file to tail (it may not exist yet).
    offset:
        Byte offset to start from in the live file (pre-rotation resumes).
    position:
        Rotation-proof resume point from :attr:`position` (overrides
        ``offset``): the recorded inode is looked up among the live file and
        its generations, so a snapshot taken before a rotation still resumes
        at the exact byte it was taken at.
    sink:
        Optional callback invoked with each poll's newly completed frames
        (the broker uses this to ingest them automatically).
    expected_token:
        Require every frame to carry this version-1 tenant/auth nibble.
    raw:
        Split frames on the header only and return :class:`RawFrame` objects
        (payloads stay undecoded) — what the sharded router tails with.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        offset: int = 0,
        position: dict | None = None,
        sink: Callable[[list[FlushFrame]], object] | None = None,
        expected_token: int | None = None,
        raw: bool = False,
    ) -> None:
        self._path = Path(path)
        self._offset = int(offset)
        self._start_inode: int | None = None
        if position is not None:
            self._offset = int(position["offset"])
            self._start_inode = position["inode"]
        buffer_type = FrameSplitter if raw else FrameDecoder
        self._decoder = buffer_type(expected_token=expected_token)
        self._sink = sink
        self._handle: BinaryIO | None = None
        self._inode: int | None = None
        self._opened_once = False
        self._resyncs = 0
        self._skipped_bytes = 0

    @property
    def offset(self) -> int:
        """Consumed byte offset within the *current* spool generation."""
        return self._offset

    @property
    def position(self) -> dict:
        """Rotation-proof resume point: the current file's inode and offset.

        Record this alongside a snapshot and pass it back as ``position=`` to
        resume exactly here even if the spool rotated in between.  The offset
        is the last *frame boundary* consumed — bytes of a partially read
        trailing frame are excluded, so a fresh reader resumed here decodes
        that frame from its first byte.
        """
        return {
            "inode": self._inode,
            "offset": self._offset - self._decoder.buffered_bytes,
        }

    @property
    def resyncs(self) -> int:
        """How many times a torn frame was discarded at a rotation boundary."""
        return self._resyncs

    @property
    def skipped_bytes(self) -> int:
        """Total bytes discarded by resyncs."""
        return self._skipped_bytes

    def rebase(self, removed_bytes: int) -> None:
        """Adjust for :func:`compact_spool` dropping ``removed_bytes`` of prefix.

        The compacted file is a new inode holding ``old[removed_bytes:]``; the
        reader's consumed offset shifts down accordingly and the handle is
        reopened on the next poll.
        """
        self._offset = max(0, self._offset - int(removed_bytes))
        self._close_handle()

    # ------------------------------------------------------------------ #
    def _close_handle(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            self._inode = None

    def _generations(self) -> list[tuple[int, Path]]:
        """Rotated-away spool files ``<path>.<n>``, oldest (smallest n) first."""
        generations: list[tuple[int, Path]] = []
        prefix = self._path.name + "."
        for candidate in self._path.parent.glob(prefix + "*"):
            suffix = candidate.name[len(prefix):]
            if suffix.isdigit():
                generations.append((int(suffix), candidate))
        generations.sort()
        return generations

    @staticmethod
    def _inode_of(path: Path) -> int | None:
        try:
            return os.stat(path).st_ino
        except FileNotFoundError:
            return None

    def _open(self, path: Path) -> bool:
        try:
            handle = path.open("rb")
        except FileNotFoundError:
            return False
        self._handle = handle
        self._inode = os.fstat(handle.fileno()).st_ino
        return True

    def _open_start(self) -> bool:
        """First open: resolve a recorded resume position, else the oldest data."""
        if self._handle is not None:
            return True
        if self._start_inode is not None:
            wanted = self._start_inode
            self._start_inode = None
            for candidate in [self._path] + [p for _, p in self._generations()]:
                if self._inode_of(candidate) == wanted and self._open(candidate):
                    return True
            # The recorded generation is gone (compacted/deleted): the resume
            # point cannot be honoured byte-exactly — start over, counted.
            self._resync()
            self._offset = 0
        if self._offset == 0 and not self._opened_once:
            # A from-the-beginning tail means *all* retained data: start at
            # the oldest rotated generation, then chase forward to the live
            # file.  (A non-zero offset refers to the live file.)
            for _, generation in self._generations():
                if self._open(generation):
                    self._opened_once = True
                    return True
        opened = self._open(self._path)
        self._opened_once = self._opened_once or opened
        return opened

    def _next_after_current(self) -> Path | None:
        """The file to read after the (rotated-away) current handle."""
        generations = self._generations()
        for position, (_, candidate) in enumerate(generations):
            if self._inode_of(candidate) == self._inode:
                if position + 1 < len(generations):
                    return generations[position + 1][1]
                return self._path
        # Not found among the generations (deleted): fall back to the live
        # file; anything in between is gone.
        return self._path

    def _read_new_bytes(self) -> bytes:
        assert self._handle is not None
        self._handle.seek(self._offset)
        data = self._handle.read()
        self._offset += len(data)
        return data

    def _resync(self) -> None:
        dropped = self._decoder.discard_buffered()
        if dropped:
            self._resyncs += 1
            self._skipped_bytes += dropped

    def poll(self) -> list[FlushFrame]:
        """Read newly appended bytes and return the completed frames."""
        frames: list[FlushFrame] = []
        # Each pass drains one spool generation; a poll crosses exactly the
        # rotations that happened since the previous poll.
        while True:
            if not self._open_start():
                break
            assert self._handle is not None
            size = os.fstat(self._handle.fileno()).st_size
            if size < self._offset:
                # The file shrank in place (copy-truncate rotation): whatever
                # was buffered belongs to the overwritten generation.
                self._resync()
                self._offset = 0
            self._decoder.feed(self._read_new_bytes())
            frames.extend(self._decoder.drain())
            if self._inode_of(self._path) == self._inode:
                break
            # Rotated away: the current generation was fully drained above.
            # A torn trailing frame can never be completed now — resync, then
            # chase the next generation (or the live file).
            self._resync()
            next_path = self._next_after_current()
            self._close_handle()
            self._offset = 0
            if next_path is None or not self._open(next_path):  # pragma: no cover
                break
        if frames and self._sink is not None:
            self._sink(frames)
        return frames


def compact_spool(path: str | Path, *, up_to: int) -> int:
    """Drop the consumed prefix ``[0, up_to)`` of a spool file.

    Long-running spools grow without bound even though every consumer is far
    past the beginning; compaction rewrites the file (atomically, via a
    temporary file and :func:`os.replace`) keeping only the bytes from
    ``up_to`` on.  ``up_to`` must be a frame boundary of frames every consumer
    has consumed — typically a reader's :attr:`FrameReader.offset` recorded in
    a snapshot.  Live readers must be told via :meth:`FrameReader.rebase`.

    Returns the number of bytes removed.
    """
    path = Path(path)
    up_to = int(up_to)
    if up_to < 0:
        raise TraceFormatError(f"compaction offset must be >= 0, got {up_to}")
    if up_to == 0 or not path.exists():
        return 0
    size = path.stat().st_size
    if up_to > size:
        raise TraceFormatError(f"compaction offset {up_to} lies beyond the spool size {size}")
    tmp = path.with_name(path.name + ".compact-tmp")
    # Stream the retained tail: compaction exists because spools get large,
    # so it must not materialize the whole file in memory.
    with path.open("rb") as source, tmp.open("wb") as target:
        source.seek(up_to)
        shutil.copyfileobj(source, target, 1 << 20)
    os.replace(tmp, path)
    return up_to


def iter_frames(path: str | Path, *, expected_token: int | None = None) -> Iterator[FlushFrame]:
    """Yield every complete frame stored in a framed spool file."""
    decoder = FrameDecoder(expected_token=expected_token)
    decoder.feed(Path(path).read_bytes())
    yield from decoder.frames()
    if decoder.buffered_bytes:
        raise TraceFormatError(
            f"{path}: {decoder.buffered_bytes} trailing bytes form an incomplete frame"
        )
