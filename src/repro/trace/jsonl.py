"""JSON Lines trace format (the TMIO online flush format).

In the online mode of the paper, the application is compiled with TMIO and a
single added call flushes the data collected so far to a file in JSON Lines or
MessagePack form.  Each line (or MessagePack message) is one *flush*: a JSON
object with the application metadata and the list of requests recorded since
the previous flush.  The FTIO side re-reads the file from the beginning on
every prediction, which is why the format is append-only.

Schema of a flush record::

    {
      "flush_index": 3,
      "timestamp": 47.4,
      "metadata": {"app": "hacc-io", "ranks": 3072},
      "requests": [
        {"rank": 0, "start": 4.1, "end": 5.0, "bytes": 1048576, "kind": "write"},
        ...
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterable, Iterator

from repro.exceptions import TraceFormatError
from repro.trace.record import IORequest
from repro.trace.trace import Trace, merge_traces


@dataclass(frozen=True)
class FlushRecord:
    """One append-only flush emitted by the (simulated) tracer."""

    flush_index: int
    timestamp: float
    requests: tuple[IORequest, ...]
    metadata: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Serialize to the plain-dict schema shared with the MessagePack format."""
        return {
            "flush_index": self.flush_index,
            "timestamp": self.timestamp,
            "metadata": dict(self.metadata),
            "requests": [r.to_dict() for r in self.requests],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FlushRecord":
        """Reconstruct a flush from :meth:`to_dict` output."""
        try:
            return cls(
                flush_index=int(data["flush_index"]),
                timestamp=float(data["timestamp"]),
                requests=tuple(IORequest.from_dict(r) for r in data["requests"]),
                metadata=dict(data.get("metadata", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceFormatError(f"malformed flush record: {exc}") from exc


class JsonLinesTraceWriter:
    """Append-only writer of TMIO flush records in JSON Lines form."""

    def __init__(self, path: str | Path):
        self._path = Path(path)
        self._flush_index = 0

    @property
    def path(self) -> Path:
        """Location of the trace file."""
        return self._path

    @property
    def flush_count(self) -> int:
        """Number of flushes written so far."""
        return self._flush_index

    def append(self, requests: Iterable[IORequest], *, timestamp: float, metadata: dict | None = None) -> FlushRecord:
        """Append one flush with the given requests and return the record written."""
        record = FlushRecord(
            flush_index=self._flush_index,
            timestamp=timestamp,
            requests=tuple(requests),
            metadata=dict(metadata or {}),
        )
        with self._path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record.to_dict()) + "\n")
        self._flush_index += 1
        return record


def iter_flushes(path: str | Path) -> Iterator[FlushRecord]:
    """Yield every flush record stored in a JSON Lines trace file."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        yield from _iter_flushes_from_handle(handle, source=str(path))


def _iter_flushes_from_handle(handle: IO[str], *, source: str) -> Iterator[FlushRecord]:
    for lineno, line in enumerate(handle, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"{source}:{lineno}: invalid JSON: {exc}") from exc
        yield FlushRecord.from_dict(data)


def read_trace(path: str | Path) -> Trace:
    """Read a JSON Lines trace file into a single merged :class:`Trace`."""
    flushes = list(iter_flushes(path))
    return flushes_to_trace(flushes)


def flushes_to_trace(flushes: Iterable[FlushRecord]) -> Trace:
    """Merge an iterable of flush records into one :class:`Trace`.

    Metadata of the individual flushes is merged left-to-right so later flushes
    can update counters such as the rank count.
    """
    flushes = list(flushes)
    metadata: dict = {}
    for flush in flushes:
        metadata.update(flush.metadata)
    traces = [Trace.from_requests(f.requests) for f in flushes if f.requests]
    merged = merge_traces(traces, metadata=metadata)
    return merged


def trace_to_flushes(
    trace: Trace,
    flush_times: Iterable[float],
    *,
    metadata: dict | None = None,
) -> list[FlushRecord]:
    """Split a finished trace into the flush records a live tracer would emit.

    At every time in ``flush_times`` the flush contains exactly the requests
    that *completed* since the previous flush — the same visibility rule as
    :func:`repro.core.online.replay_online` — so streaming the returned
    records through the prediction service reproduces the offline replay.
    Requests completing after the last flush time are not emitted.
    """
    records: list[FlushRecord] = []
    previous = float("-inf")
    flush_metadata = dict(metadata if metadata is not None else trace.metadata)
    for index, t in enumerate(sorted(flush_times)):
        completed = trace.completed_before(t)
        if previous != float("-inf"):
            completed = completed._select(completed.ends > previous)
        records.append(
            FlushRecord(
                flush_index=index,
                timestamp=float(t),
                requests=tuple(completed.requests()),
                metadata=flush_metadata if index == 0 else {},
            )
        )
        previous = float(t)
    return records


def write_trace(trace: Trace, path: str | Path, *, requests_per_flush: int | None = None) -> int:
    """Write a whole trace as a JSON Lines file, optionally split into flushes.

    Returns the number of flushes written.  When ``requests_per_flush`` is
    ``None`` the entire trace is written as a single flush (the offline mode).
    """
    path = Path(path)
    if path.exists():
        path.unlink()
    writer = JsonLinesTraceWriter(path)
    requests = trace.requests()
    if requests_per_flush is None or requests_per_flush >= len(requests):
        chunks = [requests] if requests else []
    else:
        if requests_per_flush <= 0:
            raise ValueError("requests_per_flush must be positive")
        chunks = [
            requests[i : i + requests_per_flush]
            for i in range(0, len(requests), requests_per_flush)
        ]
    for chunk in chunks:
        timestamp = max(r.end for r in chunk)
        writer.append(chunk, timestamp=timestamp, metadata=trace.metadata)
    return writer.flush_count
