"""Minimal self-contained MessagePack encoder/decoder.

The paper's tracer can flush its records either as JSON Lines or as
MessagePack [22].  Since no third-party msgpack package is available in this
environment, this module implements the subset of the MessagePack
specification needed to round-trip the TMIO flush schema (and a bit more):

* nil, booleans
* integers (positive/negative fixint, uint8/16/32/64, int8/16/32/64)
* float64
* strings (fixstr, str8/16/32)
* binary (bin8/16/32)
* arrays (fixarray, array16/32)
* maps (fixmap, map16/32)

The wire format follows https://github.com/msgpack/msgpack/blob/master/spec.md,
so files written here are readable by any compliant MessagePack reader.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.exceptions import TraceFormatError
from repro.trace.jsonl import FlushRecord, flushes_to_trace
from repro.trace.record import IORequest
from repro.trace.trace import Trace


# --------------------------------------------------------------------- #
# encoding
# --------------------------------------------------------------------- #
def packb(obj: Any) -> bytes:
    """Serialize ``obj`` to MessagePack bytes."""
    out = bytearray()
    _pack_into(obj, out)
    return bytes(out)


def _pack_into(obj: Any, out: bytearray) -> None:
    if obj is None:
        out.append(0xC0)
    elif obj is True:
        out.append(0xC3)
    elif obj is False:
        out.append(0xC2)
    elif isinstance(obj, int) and not isinstance(obj, bool):
        _pack_int(obj, out)
    elif isinstance(obj, float):
        out.append(0xCB)
        out += struct.pack(">d", obj)
    elif isinstance(obj, str):
        _pack_str(obj, out)
    elif isinstance(obj, (bytes, bytearray)):
        _pack_bin(bytes(obj), out)
    elif isinstance(obj, (list, tuple)):
        _pack_array(obj, out)
    elif isinstance(obj, dict):
        _pack_map(obj, out)
    else:
        raise TypeError(f"cannot MessagePack-serialize object of type {type(obj).__name__}")


def _pack_int(value: int, out: bytearray) -> None:
    if 0 <= value <= 0x7F:
        out.append(value)
    elif -32 <= value < 0:
        out.append(value & 0xFF)
    elif 0 <= value <= 0xFF:
        out += struct.pack(">BB", 0xCC, value)
    elif 0 <= value <= 0xFFFF:
        out += struct.pack(">BH", 0xCD, value)
    elif 0 <= value <= 0xFFFFFFFF:
        out += struct.pack(">BI", 0xCE, value)
    elif 0 <= value <= 0xFFFFFFFFFFFFFFFF:
        out += struct.pack(">BQ", 0xCF, value)
    elif -0x80 <= value < 0:
        out += struct.pack(">Bb", 0xD0, value)
    elif -0x8000 <= value < 0:
        out += struct.pack(">Bh", 0xD1, value)
    elif -0x80000000 <= value < 0:
        out += struct.pack(">Bi", 0xD2, value)
    elif -0x8000000000000000 <= value < 0:
        out += struct.pack(">Bq", 0xD3, value)
    else:
        raise OverflowError(f"integer {value} out of MessagePack range")


def _pack_str(value: str, out: bytearray) -> None:
    data = value.encode("utf-8")
    n = len(data)
    if n <= 31:
        out.append(0xA0 | n)
    elif n <= 0xFF:
        out += struct.pack(">BB", 0xD9, n)
    elif n <= 0xFFFF:
        out += struct.pack(">BH", 0xDA, n)
    else:
        out += struct.pack(">BI", 0xDB, n)
    out += data


def _pack_bin(data: bytes, out: bytearray) -> None:
    n = len(data)
    if n <= 0xFF:
        out += struct.pack(">BB", 0xC4, n)
    elif n <= 0xFFFF:
        out += struct.pack(">BH", 0xC5, n)
    else:
        out += struct.pack(">BI", 0xC6, n)
    out += data


def _pack_array(items: Iterable[Any], out: bytearray) -> None:
    items = list(items)
    n = len(items)
    if n <= 15:
        out.append(0x90 | n)
    elif n <= 0xFFFF:
        out += struct.pack(">BH", 0xDC, n)
    else:
        out += struct.pack(">BI", 0xDD, n)
    for item in items:
        _pack_into(item, out)


def _pack_map(mapping: dict, out: bytearray) -> None:
    n = len(mapping)
    if n <= 15:
        out.append(0x80 | n)
    elif n <= 0xFFFF:
        out += struct.pack(">BH", 0xDE, n)
    else:
        out += struct.pack(">BI", 0xDF, n)
    for key, value in mapping.items():
        _pack_into(key, out)
        _pack_into(value, out)


# --------------------------------------------------------------------- #
# decoding
# --------------------------------------------------------------------- #
class _Unpacker:
    """Streaming MessagePack decoder over a bytes-like buffer.

    Accepts any C-contiguous byte buffer (``bytes``, ``memoryview``); a
    memoryview is decoded in place without materializing a ``bytes`` copy,
    which is what keeps the framed ingest path zero-copy.
    """

    def __init__(self, data: bytes | memoryview):
        self._data = data
        self._pos = 0

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._data)

    def _take(self, n: int) -> bytes | memoryview:
        if self._pos + n > len(self._data):
            raise TraceFormatError("truncated MessagePack data")
        chunk = self._data[self._pos : self._pos + n]
        self._pos += n
        return chunk

    def _unpack_fmt(self, fmt: str) -> Any:
        size = struct.calcsize(fmt)
        return struct.unpack(fmt, self._take(size))[0]

    def unpack(self) -> Any:
        code = self._take(1)[0]
        # fix types
        if code <= 0x7F:
            return code
        if code >= 0xE0:
            return code - 0x100
        if 0x80 <= code <= 0x8F:
            return self._unpack_map(code & 0x0F)
        if 0x90 <= code <= 0x9F:
            return self._unpack_array(code & 0x0F)
        if 0xA0 <= code <= 0xBF:
            return str(self._take(code & 0x1F), "utf-8")
        handlers = {
            0xC0: lambda: None,
            0xC2: lambda: False,
            0xC3: lambda: True,
            0xC4: lambda: bytes(self._take(self._unpack_fmt(">B"))),
            0xC5: lambda: bytes(self._take(self._unpack_fmt(">H"))),
            0xC6: lambda: bytes(self._take(self._unpack_fmt(">I"))),
            0xCA: lambda: self._unpack_fmt(">f"),
            0xCB: lambda: self._unpack_fmt(">d"),
            0xCC: lambda: self._unpack_fmt(">B"),
            0xCD: lambda: self._unpack_fmt(">H"),
            0xCE: lambda: self._unpack_fmt(">I"),
            0xCF: lambda: self._unpack_fmt(">Q"),
            0xD0: lambda: self._unpack_fmt(">b"),
            0xD1: lambda: self._unpack_fmt(">h"),
            0xD2: lambda: self._unpack_fmt(">i"),
            0xD3: lambda: self._unpack_fmt(">q"),
            0xD9: lambda: str(self._take(self._unpack_fmt(">B")), "utf-8"),
            0xDA: lambda: str(self._take(self._unpack_fmt(">H")), "utf-8"),
            0xDB: lambda: str(self._take(self._unpack_fmt(">I")), "utf-8"),
            0xDC: lambda: self._unpack_array(self._unpack_fmt(">H")),
            0xDD: lambda: self._unpack_array(self._unpack_fmt(">I")),
            0xDE: lambda: self._unpack_map(self._unpack_fmt(">H")),
            0xDF: lambda: self._unpack_map(self._unpack_fmt(">I")),
        }
        try:
            handler = handlers[code]
        except KeyError as exc:
            raise TraceFormatError(f"unsupported MessagePack type code 0x{code:02x}") from exc
        return handler()

    def _unpack_array(self, n: int) -> list:
        return [self.unpack() for _ in range(n)]

    def _unpack_map(self, n: int) -> dict:
        return {self.unpack(): self.unpack() for _ in range(n)}


def unpackb(data: bytes | memoryview) -> Any:
    """Deserialize a single MessagePack object from ``data``."""
    unpacker = _Unpacker(data)
    obj = unpacker.unpack()
    if not unpacker.exhausted:
        raise TraceFormatError("trailing bytes after MessagePack object")
    return obj


def unpack_stream(data: bytes) -> Iterator[Any]:
    """Yield every MessagePack object concatenated in ``data``."""
    unpacker = _Unpacker(data)
    while not unpacker.exhausted:
        yield unpacker.unpack()


# --------------------------------------------------------------------- #
# TMIO flush-file helpers
# --------------------------------------------------------------------- #
class MsgpackTraceWriter:
    """Append-only writer of TMIO flush records in MessagePack form."""

    def __init__(self, path: str | Path):
        self._path = Path(path)
        self._flush_index = 0

    @property
    def path(self) -> Path:
        """Location of the trace file."""
        return self._path

    @property
    def flush_count(self) -> int:
        """Number of flushes written so far."""
        return self._flush_index

    def append(self, requests: Iterable[IORequest], *, timestamp: float, metadata: dict | None = None) -> FlushRecord:
        """Append one flush and return the record written."""
        record = FlushRecord(
            flush_index=self._flush_index,
            timestamp=timestamp,
            requests=tuple(requests),
            metadata=dict(metadata or {}),
        )
        with self._path.open("ab") as handle:
            handle.write(packb(record.to_dict()))
        self._flush_index += 1
        return record


def iter_flushes(path: str | Path) -> Iterator[FlushRecord]:
    """Yield every flush record stored in a MessagePack trace file."""
    data = Path(path).read_bytes()
    for obj in unpack_stream(data):
        if not isinstance(obj, dict):
            raise TraceFormatError(f"expected a map per flush, got {type(obj).__name__}")
        yield FlushRecord.from_dict(obj)


def read_trace(path: str | Path) -> Trace:
    """Read a MessagePack trace file into a single merged :class:`Trace`."""
    return flushes_to_trace(iter_flushes(path))


def write_trace(trace: Trace, path: str | Path) -> int:
    """Write a whole trace as a single-flush MessagePack file. Returns the flush count."""
    path = Path(path)
    if path.exists():
        path.unlink()
    writer = MsgpackTraceWriter(path)
    requests = trace.requests()
    if requests:
        writer.append(requests, timestamp=trace.t_end, metadata=trace.metadata)
    return writer.flush_count
