"""Basic I/O record types: single requests and logical I/O phases.

The tracing layer of the paper (TMIO) records, for every intercepted MPI-IO
call, the issuing rank, the start and end timestamps, and the number of bytes
transferred.  FTIO never needs more than that, so :class:`IORequest` is the
atomic unit of every trace in this library.

An :class:`IOPhase` is the *logical* grouping the introduction of the paper
discusses: a set of requests that conceptually belong together (for instance a
checkpoint written by all ranks).  Phases are only known to the workload
generators (ground truth); the analysis itself never relies on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class IOKind(str, Enum):
    """Direction of an I/O request."""

    WRITE = "write"
    READ = "read"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, slots=True)
class IORequest:
    """A single I/O request as recorded by the (simulated) tracer.

    Attributes
    ----------
    rank:
        MPI rank that issued the request.
    start, end:
        Wall-clock timestamps in seconds.  ``end`` must be >= ``start``.
    nbytes:
        Number of bytes transferred by the request.
    kind:
        Whether the request was a read or a write.
    """

    rank: int
    start: float
    end: float
    nbytes: int
    kind: IOKind = IOKind.WRITE

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"request end ({self.end}) must be >= start ({self.start})"
            )
        if self.nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {self.nbytes}")
        if self.rank < 0:
            raise ValueError(f"rank must be >= 0, got {self.rank}")

    @property
    def duration(self) -> float:
        """Duration of the request in seconds."""
        return self.end - self.start

    @property
    def bandwidth(self) -> float:
        """Average transfer rate of the request in bytes/s.

        Instantaneous (zero-duration) requests report an infinite rate, which
        the bandwidth-signal construction treats as a point mass.
        """
        if self.duration == 0.0:
            return float("inf")
        return self.nbytes / self.duration

    def shifted(self, offset: float) -> "IORequest":
        """Return a copy of this request shifted by ``offset`` seconds."""
        return IORequest(
            rank=self.rank,
            start=self.start + offset,
            end=self.end + offset,
            nbytes=self.nbytes,
            kind=self.kind,
        )

    def to_dict(self) -> dict:
        """Serialize to the plain-dict schema used by the JSONL/MessagePack formats."""
        return {
            "rank": self.rank,
            "start": self.start,
            "end": self.end,
            "bytes": self.nbytes,
            "kind": self.kind.value,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "IORequest":
        """Reconstruct a request from :meth:`to_dict` output."""
        return cls(
            rank=int(data["rank"]),
            start=float(data["start"]),
            end=float(data["end"]),
            nbytes=int(data["bytes"]),
            kind=IOKind(data.get("kind", "write")),
        )


@dataclass(frozen=True, slots=True)
class IOPhase:
    """Ground-truth logical I/O phase (only known to workload generators).

    Attributes
    ----------
    start, end:
        Boundaries of the phase in seconds.
    nbytes:
        Total bytes transferred during the phase.
    label:
        Free-form tag, e.g. ``"checkpoint"`` or ``"log"``.
    """

    start: float
    end: float
    nbytes: int
    label: str = ""

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"phase end ({self.end}) must be >= start ({self.start})")
        if self.nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {self.nbytes}")

    @property
    def duration(self) -> float:
        """Length of the phase in seconds."""
        return self.end - self.start


@dataclass(frozen=True, slots=True)
class GroundTruth:
    """Ground-truth periodicity information attached to generated traces.

    The limitation study (Section III-A) computes the detection error against
    the *average* period of the generated trace, which is only known at
    generation time.  Workload generators attach an instance of this class to
    the traces they emit.
    """

    phases: tuple[IOPhase, ...] = field(default=())
    mean_period: float | None = None

    @property
    def phase_starts(self) -> tuple[float, ...]:
        """Start times of the ground-truth phases."""
        return tuple(p.start for p in self.phases)

    def average_period(self) -> float | None:
        """Average time between consecutive phase starts (the paper's T-bar).

        Falls back to :attr:`mean_period` when fewer than two phases exist.
        """
        starts = self.phase_starts
        if len(starts) >= 2:
            diffs = [b - a for a, b in zip(starts, starts[1:])]
            return sum(diffs) / len(diffs)
        return self.mean_period
