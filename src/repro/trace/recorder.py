"""Recorder-style per-rank trace format.

Recorder 2.0 (Wang et al., IPDPSW 2020) captures one file of I/O events per
rank, each event carrying the function name, timestamps and byte count.  FTIO
supports Recorder traces as an alternative data source for the offline
detection mode (Section II-A).  This module implements a simplified,
text-based rendition of that layout:

* a *directory* holds one ``rank_<i>.csv`` file per rank,
* each line is ``function,start,end,bytes``,
* a small ``meta.json`` records the application-level metadata.

Only the information FTIO needs (timestamps, bytes, direction inferred from
the function name) is retained when converting to a :class:`Trace`.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.exceptions import TraceFormatError
from repro.trace.record import IOKind, IORequest
from repro.trace.trace import Trace

#: Function names treated as write (resp. read) operations when importing.
WRITE_FUNCTIONS = frozenset(
    {"MPI_File_write", "MPI_File_write_all", "MPI_File_write_at", "MPI_File_write_at_all", "write", "pwrite"}
)
READ_FUNCTIONS = frozenset(
    {"MPI_File_read", "MPI_File_read_all", "MPI_File_read_at", "MPI_File_read_at_all", "read", "pread"}
)

_META_FILENAME = "meta.json"


def _kind_for_function(function: str) -> IOKind | None:
    if function in WRITE_FUNCTIONS:
        return IOKind.WRITE
    if function in READ_FUNCTIONS:
        return IOKind.READ
    return None


def write_recorder_directory(trace: Trace, directory: str | Path) -> Path:
    """Write ``trace`` as a Recorder-style directory (one CSV per rank).

    Write requests are emitted as ``MPI_File_write_all`` events and read
    requests as ``MPI_File_read_all`` events.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    (directory / _META_FILENAME).write_text(
        json.dumps({"metadata": dict(trace.metadata), "ranks": trace.rank_count}),
        encoding="utf-8",
    )
    by_rank: dict[int, list[IORequest]] = {}
    for request in trace:
        by_rank.setdefault(request.rank, []).append(request)
    for rank, requests in by_rank.items():
        path = directory / f"rank_{rank}.csv"
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["function", "start", "end", "bytes"])
            for req in requests:
                function = "MPI_File_write_all" if req.kind is IOKind.WRITE else "MPI_File_read_all"
                writer.writerow([function, f"{req.start:.9f}", f"{req.end:.9f}", req.nbytes])
    return directory


def read_recorder_directory(directory: str | Path) -> Trace:
    """Read a Recorder-style directory back into a :class:`Trace`.

    Events whose function name is neither a known read nor write operation
    (e.g. ``MPI_File_open``) are ignored, mirroring FTIO's import behaviour.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise TraceFormatError(f"{directory} is not a Recorder trace directory")
    metadata: dict = {}
    meta_path = directory / _META_FILENAME
    if meta_path.exists():
        try:
            metadata = dict(json.loads(meta_path.read_text(encoding="utf-8")).get("metadata", {}))
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"{meta_path}: invalid JSON: {exc}") from exc
    requests: list[IORequest] = []
    rank_files = sorted(directory.glob("rank_*.csv"))
    if not rank_files:
        raise TraceFormatError(f"{directory} contains no rank_*.csv files")
    for path in rank_files:
        try:
            rank = int(path.stem.split("_", 1)[1])
        except (IndexError, ValueError) as exc:
            raise TraceFormatError(f"cannot parse rank from file name {path.name!r}") from exc
        with path.open("r", newline="", encoding="utf-8") as handle:
            reader = csv.DictReader(handle)
            for lineno, row in enumerate(reader, start=2):
                try:
                    kind = _kind_for_function(row["function"])
                    if kind is None:
                        continue
                    requests.append(
                        IORequest(
                            rank=rank,
                            start=float(row["start"]),
                            end=float(row["end"]),
                            nbytes=int(row["bytes"]),
                            kind=kind,
                        )
                    )
                except (KeyError, TypeError, ValueError) as exc:
                    raise TraceFormatError(f"{path}:{lineno}: malformed event: {exc}") from exc
    return Trace.from_requests(requests, metadata=metadata)
