"""Discretization of the bandwidth signal for the frequency analysis.

Section II-B: the continuous bandwidth signal x(t) is discretized with a
sampling frequency ``fs`` to obtain ``N = dt * fs`` samples x_n = x(n / fs).
Section II-E discusses the choice of ``fs``: a too-low sampling frequency
causes aliasing, quantified by the *abstraction error* — the volume difference
between the discrete signal and the original one (Figure 6).

Two sampling modes are provided:

``point``
    Sample the instantaneous bandwidth at the sample instants, exactly as the
    formula in the paper states.  This is the default and is what makes the
    abstraction error meaningful (short bursts that fall between two sample
    instants are missed entirely).
``bin``
    Average the bandwidth over each sampling interval (integral / bin width).
    This conserves volume by construction and is useful when consuming
    bin-structured inputs such as Darshan heatmaps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np
from numpy.typing import NDArray

from repro.exceptions import InsufficientSamplesError
from repro.trace.bandwidth import BandwidthSignal, bandwidth_signal
from repro.trace.trace import Trace
from repro.utils.validation import check_positive

SamplingMode = Literal["point", "bin"]


@dataclass(frozen=True)
class DiscreteSignal:
    """An evenly sampled bandwidth signal ready for DFT.

    Attributes
    ----------
    samples:
        Bandwidth values x_n (bytes/s), length N.
    sampling_frequency:
        fs in Hz; consecutive samples are 1/fs apart.
    t_start:
        Timestamp of the first sample.
    abstraction_error:
        Relative volume difference between the discrete representation and the
        continuous signal it was derived from (0 when unknown).
    mode:
        Sampling mode used to produce the samples.
    """

    samples: NDArray[np.float64]
    sampling_frequency: float
    t_start: float = 0.0
    abstraction_error: float = 0.0
    mode: SamplingMode = "point"

    def __post_init__(self) -> None:
        check_positive(self.sampling_frequency, "sampling_frequency")

    @property
    def n_samples(self) -> int:
        """Number of samples N."""
        return int(len(self.samples))

    @property
    def duration(self) -> float:
        """Time window covered by the samples (N / fs)."""
        return self.n_samples / self.sampling_frequency

    @property
    def times(self) -> NDArray[np.float64]:
        """Absolute timestamps of the samples."""
        return self.t_start + np.arange(self.n_samples) / self.sampling_frequency

    @property
    def frequency_resolution(self) -> float:
        """Spacing between DFT bins, 1 / duration."""
        if self.n_samples == 0:
            return float("inf")
        return 1.0 / self.duration

    def volume(self) -> float:
        """Bytes represented by the discrete signal (sum of samples / fs)."""
        return float(self.samples.sum() / self.sampling_frequency)

    def window(self, t0: float, t1: float) -> "DiscreteSignal":
        """Return the sub-signal covering [t0, t1) (sample-aligned)."""
        if t1 <= t0:
            raise ValueError(f"window end ({t1}) must be > start ({t0})")
        times = self.times
        mask = (times >= t0) & (times < t1)
        return DiscreteSignal(
            samples=self.samples[mask],
            sampling_frequency=self.sampling_frequency,
            t_start=float(times[mask][0]) if mask.any() else t0,
            abstraction_error=self.abstraction_error,
            mode=self.mode,
        )


def discretize_signal(
    signal: BandwidthSignal,
    sampling_frequency: float,
    *,
    mode: SamplingMode = "point",
    window: tuple[float, float] | None = None,
) -> DiscreteSignal:
    """Discretize a :class:`BandwidthSignal` at ``sampling_frequency`` Hz.

    Parameters
    ----------
    signal:
        The continuous (piecewise-constant) bandwidth signal.
    sampling_frequency:
        fs in Hz.
    mode:
        ``"point"`` (paper default) or ``"bin"`` (volume-conserving).
    window:
        Optional (t0, t1) restriction of the analysis window Δt.

    Raises
    ------
    InsufficientSamplesError
        If fewer than 2 samples fall inside the window.
    """
    fs = check_positive(sampling_frequency, "sampling_frequency")
    if window is not None:
        t0, t1 = window
        signal = signal.restricted(t0, t1)
    t0, t1 = signal.t_start, signal.t_end
    duration = t1 - t0
    n = int(np.floor(duration * fs)) + 1
    if n < 2:
        raise InsufficientSamplesError(
            f"window of {duration:.3g} s at fs={fs} Hz yields only {n} sample(s); "
            "increase the window or the sampling frequency"
        )

    edges = t0 + np.arange(n + 1) / fs
    cumulative = signal.cumulative_volume(edges)
    true_bin_volumes = np.diff(cumulative)

    if mode == "point":
        sample_times = t0 + np.arange(n) / fs
        samples = signal.at(sample_times)
    elif mode == "bin":
        samples = true_bin_volumes * fs
    else:  # pragma: no cover - guarded by Literal typing
        raise ValueError(f"unknown sampling mode {mode!r}")

    # Abstraction error: volume difference between the discrete representation
    # and the original signal, accumulated per sampling interval so that
    # over- and under-sampled bursts cannot cancel each other out (Sec. II-E).
    true_volume = float(true_bin_volumes.sum())
    discrete_bin_volumes = np.asarray(samples, dtype=np.float64) / fs
    if true_volume > 0:
        abstraction_error = float(
            np.abs(discrete_bin_volumes - true_bin_volumes).sum() / true_volume
        )
    else:
        abstraction_error = 0.0

    return DiscreteSignal(
        samples=np.asarray(samples, dtype=np.float64),
        sampling_frequency=fs,
        t_start=t0,
        abstraction_error=abstraction_error,
        mode=mode,
    )


def discretize_trace(
    trace: Trace,
    sampling_frequency: float,
    *,
    kind: str | None = "write",
    mode: SamplingMode = "point",
    window: tuple[float, float] | None = None,
) -> DiscreteSignal:
    """Convenience wrapper: build the bandwidth signal of ``trace`` and discretize it."""
    signal = bandwidth_signal(trace, kind=kind)
    return discretize_signal(signal, sampling_frequency, mode=mode, window=window)


def recommend_sampling_frequency(trace: Trace, *, kind: str | None = "write") -> float:
    """Suggest a sampling frequency from the smallest bandwidth change in the trace.

    Section II-E: "As our approach captures the time spent on each I/O request,
    we can find the smallest change in bandwidth over time and use it to
    calculate fs."  We return the Nyquist-safe rate 2 / (shortest request
    duration), capped to avoid absurd values for instantaneous requests.
    """
    work = trace if kind is None else trace.filter_kind(kind)
    if work.is_empty:
        return 0.0
    durations = np.maximum(work.ends - work.starts, 1e-6)
    return float(min(2.0 / durations.min(), 1e6))
