"""The :class:`Trace` container: an application-level collection of I/O requests.

A trace is the unit FTIO operates on.  Internally the requests are stored as
columnar numpy arrays (start, end, bytes, rank) so that the bandwidth-signal
construction and the characterization metrics are fully vectorized, per the
linear-complexity claim of Section II-A.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

import numpy as np
from numpy.typing import NDArray

from repro.exceptions import EmptyTraceError, TraceError
from repro.trace.record import GroundTruth, IOKind, IORequest


@dataclass(frozen=True)
class Trace:
    """An immutable, time-ordered collection of I/O requests.

    Instances are normally built through :meth:`from_requests` or by a
    workload generator; the columnar constructor is considered internal but is
    stable for power users.

    Attributes
    ----------
    starts, ends:
        Request start/end timestamps (seconds), sorted by start time.
    nbytes:
        Bytes transferred per request.
    ranks:
        Issuing MPI rank per request.
    kinds:
        Request direction per request (``IOKind`` values as a string array).
    ground_truth:
        Optional generator-provided periodicity information.
    metadata:
        Free-form information (application name, rank count, ...).
    """

    starts: NDArray[np.float64]
    ends: NDArray[np.float64]
    nbytes: NDArray[np.int64]
    ranks: NDArray[np.int64]
    kinds: NDArray[np.str_]
    ground_truth: GroundTruth | None = None
    metadata: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def __post_init__(self) -> None:
        n = len(self.starts)
        for name in ("ends", "nbytes", "ranks", "kinds"):
            if len(getattr(self, name)) != n:
                raise TraceError(f"column {name!r} has length {len(getattr(self, name))}, expected {n}")
        if n and np.any(self.ends < self.starts):
            raise TraceError("every request must satisfy end >= start")
        if n and np.any(self.nbytes < 0):
            raise TraceError("request byte counts must be >= 0")

    @classmethod
    def from_requests(
        cls,
        requests: Iterable[IORequest],
        *,
        ground_truth: GroundTruth | None = None,
        metadata: dict | None = None,
    ) -> "Trace":
        """Build a trace from an iterable of :class:`IORequest`, sorted by start time."""
        reqs = requests if isinstance(requests, (list, tuple)) else list(requests)
        if reqs:
            # Columnar build first, then a single stable lexsort on the numeric
            # keys (start, end, rank) — no per-request Python tuple churn.
            starts = np.array([r.start for r in reqs], dtype=np.float64)
            ends = np.array([r.end for r in reqs], dtype=np.float64)
            nbytes = np.array([r.nbytes for r in reqs], dtype=np.int64)
            ranks = np.array([r.rank for r in reqs], dtype=np.int64)
            kinds = np.array([r.kind.value for r in reqs], dtype=np.str_)
            order = np.lexsort((ranks, ends, starts))
            starts = starts[order]
            ends = ends[order]
            nbytes = nbytes[order]
            ranks = ranks[order]
            kinds = kinds[order]
        else:
            starts = np.zeros(0, dtype=np.float64)
            ends = np.zeros(0, dtype=np.float64)
            nbytes = np.zeros(0, dtype=np.int64)
            ranks = np.zeros(0, dtype=np.int64)
            kinds = np.zeros(0, dtype=np.str_)
        return cls(
            starts=starts,
            ends=ends,
            nbytes=nbytes,
            ranks=ranks,
            kinds=kinds,
            ground_truth=ground_truth,
            metadata=dict(metadata or {}),
        )

    @classmethod
    def empty(cls) -> "Trace":
        """Return an empty trace (useful as an accumulator seed)."""
        return cls.from_requests([])

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(len(self.starts))

    def __iter__(self) -> Iterator[IORequest]:
        for i in range(len(self)):
            yield self.request(i)

    def request(self, index: int) -> IORequest:
        """Return the ``index``-th request as an :class:`IORequest` object."""
        return IORequest(
            rank=int(self.ranks[index]),
            start=float(self.starts[index]),
            end=float(self.ends[index]),
            nbytes=int(self.nbytes[index]),
            kind=IOKind(str(self.kinds[index])),
        )

    def requests(self) -> list[IORequest]:
        """Materialize all requests as a list of :class:`IORequest`."""
        return list(self)

    # ------------------------------------------------------------------ #
    # aggregate properties
    # ------------------------------------------------------------------ #
    @property
    def is_empty(self) -> bool:
        """True when the trace contains no requests."""
        return len(self) == 0

    @property
    def volume(self) -> int:
        """Total number of bytes transferred (the paper's V(T))."""
        return int(self.nbytes.sum()) if len(self) else 0

    @property
    def t_start(self) -> float:
        """Timestamp of the earliest request start."""
        self._require_non_empty("t_start")
        return float(self.starts.min())

    @property
    def t_end(self) -> float:
        """Timestamp of the latest request end."""
        self._require_non_empty("t_end")
        return float(self.ends.max())

    @property
    def duration(self) -> float:
        """Trace length in seconds (the paper's L(T))."""
        if self.is_empty:
            return 0.0
        return self.t_end - self.t_start

    @property
    def rank_count(self) -> int:
        """Number of distinct ranks that issued at least one request."""
        if self.is_empty:
            return 0
        return int(np.unique(self.ranks).size)

    def _require_non_empty(self, what: str) -> None:
        if self.is_empty:
            raise EmptyTraceError(f"cannot compute {what} of an empty trace")

    # ------------------------------------------------------------------ #
    # transformations (all return new traces)
    # ------------------------------------------------------------------ #
    def _select(self, mask: NDArray[np.bool_]) -> "Trace":
        return Trace(
            starts=self.starts[mask],
            ends=self.ends[mask],
            nbytes=self.nbytes[mask],
            ranks=self.ranks[mask],
            kinds=self.kinds[mask],
            ground_truth=self.ground_truth,
            metadata=dict(self.metadata),
        )

    def filter_kind(self, kind: IOKind | str) -> "Trace":
        """Return a trace with only read or only write requests."""
        kind_value = IOKind(kind).value
        if self.is_empty:
            return self
        return self._select(self.kinds == kind_value)

    def filter_ranks(self, ranks: Sequence[int]) -> "Trace":
        """Return a trace restricted to the given ranks."""
        if self.is_empty:
            return self
        return self._select(np.isin(self.ranks, np.asarray(list(ranks), dtype=np.int64)))

    def completed_before(self, t: float) -> "Trace":
        """Return the sub-trace of requests that have *ended* by time ``t``.

        This is the "flushed so far" view of a trace: in the online mode only
        requests that completed by the flush time have reached the trace file,
        so both the offline replay (:func:`repro.core.online.replay_online`)
        and the streaming service sessions reveal a trace through this method.
        """
        if self.is_empty:
            return self
        return self._select(self.ends <= t)

    def window(self, t0: float, t1: float) -> "Trace":
        """Return the sub-trace of requests that overlap the window [t0, t1).

        Requests are kept whole (not clipped); FTIO's time-window adaptation
        works on whole requests, as the tracer flushes complete records.
        """
        if t1 < t0:
            raise TraceError(f"window end ({t1}) must be >= start ({t0})")
        if self.is_empty:
            return self
        mask = (self.ends > t0) & (self.starts < t1)
        return self._select(mask)

    def shifted(self, offset: float) -> "Trace":
        """Return a copy of the trace with every timestamp shifted by ``offset``."""
        return Trace(
            starts=self.starts + offset,
            ends=self.ends + offset,
            nbytes=self.nbytes.copy(),
            ranks=self.ranks.copy(),
            kinds=self.kinds.copy(),
            ground_truth=self.ground_truth,
            metadata=dict(self.metadata),
        )

    def with_ground_truth(self, ground_truth: GroundTruth) -> "Trace":
        """Return a copy of the trace carrying the given ground truth."""
        return Trace(
            starts=self.starts,
            ends=self.ends,
            nbytes=self.nbytes,
            ranks=self.ranks,
            kinds=self.kinds,
            ground_truth=ground_truth,
            metadata=dict(self.metadata),
        )

    def with_metadata(self, **metadata) -> "Trace":
        """Return a copy of the trace with extra metadata entries merged in."""
        merged = dict(self.metadata)
        merged.update(metadata)
        return Trace(
            starts=self.starts,
            ends=self.ends,
            nbytes=self.nbytes,
            ranks=self.ranks,
            kinds=self.kinds,
            ground_truth=self.ground_truth,
            metadata=merged,
        )


def merge_traces(traces: Iterable[Trace], *, metadata: dict | None = None) -> Trace:
    """Merge several traces (e.g. per-rank or per-flush traces) into one.

    The merged trace is re-sorted by request start time; ground truth is kept
    only if exactly one of the inputs carries it (merging ground truths from
    different applications would be meaningless).
    """
    traces = list(traces)
    if not traces:
        return Trace.empty()
    ground_truths = [t.ground_truth for t in traces if t.ground_truth is not None]
    gt = ground_truths[0] if len(ground_truths) == 1 else None
    starts = np.concatenate([t.starts for t in traces])
    order = np.argsort(starts, kind="stable")
    merged = Trace(
        starts=starts[order],
        ends=np.concatenate([t.ends for t in traces])[order],
        nbytes=np.concatenate([t.nbytes for t in traces])[order],
        ranks=np.concatenate([t.ranks for t in traces])[order],
        kinds=np.concatenate([t.kinds for t in traces])[order],
        ground_truth=gt,
        metadata=dict(metadata or {}),
    )
    return merged


def concatenate_in_time(traces: Sequence[Trace], *, gap: float = 0.0) -> Trace:
    """Concatenate traces back to back along the time axis.

    Each trace is shifted so that it starts where the previous one ended plus
    ``gap`` seconds.  Used by the semi-synthetic generator to chain I/O phases
    recorded in isolation.
    """
    if not traces:
        return Trace.empty()
    shifted: list[Trace] = []
    cursor = 0.0
    for i, trace in enumerate(traces):
        if trace.is_empty:
            cursor += gap
            continue
        offset = cursor - trace.t_start
        moved = trace.shifted(offset)
        shifted.append(moved)
        cursor = moved.t_end + gap
    return merge_traces(shifted)
