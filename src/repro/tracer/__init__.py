"""Simulated TMIO tracing library and its overhead model."""

from repro.tracer.overhead import (
    OverheadEstimate,
    OverheadModelParameters,
    TracerOverheadModel,
    default_rank_sweep,
    measure_capture_cost,
)
from repro.tracer.tmio import TmioTracer, TraceFileFormat, TracerMode, TracerStatistics

__all__ = [
    "OverheadEstimate",
    "OverheadModelParameters",
    "TracerOverheadModel",
    "default_rank_sweep",
    "measure_capture_cost",
    "TmioTracer",
    "TraceFileFormat",
    "TracerMode",
    "TracerStatistics",
]
