"""Analytic overhead model of the tracing library (Figure 16).

Figure 16 of the paper measures the overhead of TMIO on IOR runs with 96 to
10 752 ranks, separating the *aggregated* overhead (summed over all ranks)
from the *rank-0* overhead (rank 0 gathers the data from the other ranks and
writes the file).  The reported bounds are:

* online mode: at most 0.6 % aggregated overhead and 6.9 % for rank 0;
* offline mode: aggregated overhead of 0.78 s (0.13 %) at 96 ranks up to
  50.9 s (0.004 %) at 4608 ranks, and rank-0 overhead growing roughly linearly
  from 0.065 s (1.03 %) to 3.84 s (1.58 %).

Real MPI executions are not available here, so this module provides a small
calibrated cost model with the same structure:

* every recorded request costs a fixed capture time on its rank,
* each online flush costs rank 0 a gather that grows linearly with the number
  of ranks plus a serialization cost proportional to the flushed requests,
* the offline mode pays the gather/serialization once at finalize time.

The absolute constants are calibrated against the numbers quoted above so the
reproduced Figure 16 has the same shape (flat aggregated overhead share, mild
growth of the rank-0 share with rank count).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tracer.tmio import TracerMode
from repro.utils.validation import check_positive, check_positive_int


@dataclass(frozen=True)
class OverheadModelParameters:
    """Calibration constants of the overhead model (all times in seconds)."""

    #: Cost of capturing one request on the issuing rank.
    capture_cost_per_request: float = 2.0e-6
    #: Per-rank cost on rank 0 of gathering one flush (MPI_Gather latency term).
    gather_cost_per_rank: float = 3.5e-5
    #: Cost on rank 0 of serializing one request into the trace file.
    serialize_cost_per_request: float = 1.0e-6
    #: Constant per-flush cost on rank 0 (file open/append, bookkeeping).
    flush_base_cost: float = 5.0e-3

    def __post_init__(self) -> None:
        check_positive(self.capture_cost_per_request, "capture_cost_per_request")
        check_positive(self.gather_cost_per_rank, "gather_cost_per_rank")
        check_positive(self.serialize_cost_per_request, "serialize_cost_per_request")
        check_positive(self.flush_base_cost, "flush_base_cost")


@dataclass(frozen=True)
class OverheadEstimate:
    """Predicted overhead of one traced execution."""

    ranks: int
    mode: TracerMode
    application_time: float
    aggregated_overhead: float
    rank0_overhead: float

    @property
    def aggregated_application_time(self) -> float:
        """Application time summed over all ranks (the paper's top plot)."""
        return self.application_time * self.ranks

    @property
    def aggregated_overhead_ratio(self) -> float:
        """Aggregated overhead divided by aggregated application time."""
        return self.aggregated_overhead / self.aggregated_application_time

    @property
    def rank0_overhead_ratio(self) -> float:
        """Rank-0 overhead divided by the (per-rank) application time."""
        return self.rank0_overhead / self.application_time

    @property
    def total_time(self) -> float:
        """Per-rank wall time including the rank-0 overhead (paper's bottom plot)."""
        return self.application_time + self.rank0_overhead


class TracerOverheadModel:
    """Cost model reproducing the scaling study of Figure 16."""

    def __init__(self, parameters: OverheadModelParameters | None = None):
        self._params = parameters or OverheadModelParameters()

    @property
    def parameters(self) -> OverheadModelParameters:
        """Calibration constants currently in use."""
        return self._params

    def estimate(
        self,
        *,
        ranks: int,
        requests_per_rank: int,
        application_time: float,
        mode: TracerMode | str = TracerMode.ONLINE,
        flushes: int = 10,
    ) -> OverheadEstimate:
        """Estimate the tracer overhead of one execution.

        Parameters
        ----------
        ranks:
            Number of MPI ranks of the traced run.
        requests_per_rank:
            I/O requests issued by each rank over the whole run.
        application_time:
            Per-rank application wall time (compute + I/O) without tracing.
        mode:
            Online (periodic flushes) or offline (single flush at finalize).
        flushes:
            Number of flushes in online mode (ignored for offline).
        """
        ranks = check_positive_int(ranks, "ranks")
        requests_per_rank = check_positive_int(requests_per_rank, "requests_per_rank")
        check_positive(application_time, "application_time")
        mode = TracerMode(mode)
        effective_flushes = max(int(flushes), 1) if mode is TracerMode.ONLINE else 1

        p = self._params
        total_requests = ranks * requests_per_rank

        # Capture cost is paid on every rank for every request (aggregated view).
        capture_total = total_requests * p.capture_cost_per_request

        # Rank 0 gathers data at every flush and serializes all flushed requests.
        gather = effective_flushes * (p.flush_base_cost + ranks * p.gather_cost_per_rank)
        serialize = total_requests * p.serialize_cost_per_request
        rank0_overhead = gather + serialize + requests_per_rank * p.capture_cost_per_request

        aggregated_overhead = capture_total + gather + serialize

        return OverheadEstimate(
            ranks=ranks,
            mode=mode,
            application_time=application_time,
            aggregated_overhead=aggregated_overhead,
            rank0_overhead=rank0_overhead,
        )

    def sweep_ranks(
        self,
        rank_counts: list[int],
        *,
        requests_per_rank: int,
        application_time: float,
        mode: TracerMode | str = TracerMode.ONLINE,
        flushes: int = 10,
    ) -> list[OverheadEstimate]:
        """Run :meth:`estimate` for every rank count (the x-axis of Figure 16)."""
        return [
            self.estimate(
                ranks=r,
                requests_per_rank=requests_per_rank,
                application_time=application_time,
                mode=mode,
                flushes=flushes,
            )
            for r in rank_counts
        ]


def default_rank_sweep(max_ranks: int = 10752, *, cores_per_node: int = 96) -> list[int]:
    """Return the rank counts used in Figure 16 (multiples of 96 up to 10 752)."""
    check_positive_int(max_ranks, "max_ranks")
    check_positive_int(cores_per_node, "cores_per_node")
    counts: list[int] = []
    n = cores_per_node
    while n <= max_ranks:
        counts.append(n)
        n *= 2
    if counts and counts[-1] != max_ranks and max_ranks % cores_per_node == 0:
        counts.append(max_ranks)
    return counts


def measure_capture_cost(n_requests: int = 10000) -> float:
    """Micro-benchmark the *actual* per-request capture cost of :class:`TmioTracer`.

    Used by the overhead benchmark to show that the simulated tracer's own
    recording cost is in the micro-second range, consistent with the model's
    calibration constant.
    """
    import time

    from repro.tracer.tmio import TmioTracer

    tracer = TmioTracer(mode=TracerMode.ONLINE)
    starts = np.linspace(0.0, 1.0, n_requests)
    begin = time.perf_counter()
    for i, s in enumerate(starts):
        tracer.record_write(rank=0, start=float(s), end=float(s) + 1e-4, nbytes=1024)
    elapsed = time.perf_counter() - begin
    return elapsed / n_requests
