"""Simulated TMIO tracing library.

The paper's TMIO is a C++ library that intercepts MPI-IO calls and records,
per rank, the start time, end time and transferred bytes of every request.  It
offers two linking modes:

``offline``
    (LD_PRELOAD) all data is kept in memory and written out once, at
    ``MPI_Finalize``.
``online``
    the application is compiled against the library and calls a flush function
    (a single added line) whenever it wants the collected data appended to the
    trace file, which FTIO then re-analyses to predict the next phases.

Since no MPI applications run in this environment, :class:`TmioTracer`
receives its request events from the simulated applications in
:mod:`repro.workloads` and from the cluster simulator, but exposes the same
two modes and the same on-disk formats (JSON Lines or MessagePack), so the
whole offline/online pipeline of the paper can be exercised end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from pathlib import Path

from repro.exceptions import TraceError
from repro.trace.jsonl import JsonLinesTraceWriter
from repro.trace.msgpack import MsgpackTraceWriter
from repro.trace.record import IOKind, IORequest
from repro.trace.trace import Trace


class TracerMode(str, Enum):
    """Linking mode of the tracer (see module docstring)."""

    OFFLINE = "offline"
    ONLINE = "online"


class TraceFileFormat(str, Enum):
    """On-disk format used for flushed data."""

    JSONL = "jsonl"
    MSGPACK = "msgpack"


@dataclass(frozen=True)
class TracerStatistics:
    """Bookkeeping counters of a tracer instance."""

    recorded_requests: int
    flushes: int
    recorded_bytes: int


class TmioTracer:
    """In-process stand-in for the TMIO tracing library.

    Parameters
    ----------
    mode:
        ``offline`` buffers everything until :meth:`finalize`; ``online``
        allows intermediate :meth:`flush` calls.
    path:
        Trace file location.  May be ``None`` for purely in-memory use (the
        cluster simulator records traces without touching the file system).
    file_format:
        JSON Lines (default) or MessagePack.
    metadata:
        Application-level metadata stored with every flush.
    """

    def __init__(
        self,
        *,
        mode: TracerMode | str = TracerMode.ONLINE,
        path: str | Path | None = None,
        file_format: TraceFileFormat | str = TraceFileFormat.JSONL,
        metadata: dict | None = None,
    ):
        self._mode = TracerMode(mode)
        self._format = TraceFileFormat(file_format)
        self._metadata = dict(metadata or {})
        self._pending: list[IORequest] = []
        self._all: list[IORequest] = []
        self._finalized = False
        self._flushes = 0
        self._writer: JsonLinesTraceWriter | MsgpackTraceWriter | None = None
        if path is not None:
            path = Path(path)
            if path.exists():
                path.unlink()
            if self._format is TraceFileFormat.JSONL:
                self._writer = JsonLinesTraceWriter(path)
            else:
                self._writer = MsgpackTraceWriter(path)

    # ------------------------------------------------------------------ #
    @property
    def mode(self) -> TracerMode:
        """Linking mode of this tracer."""
        return self._mode

    @property
    def path(self) -> Path | None:
        """Trace file path, or ``None`` for in-memory tracing."""
        return self._writer.path if self._writer is not None else None

    @property
    def statistics(self) -> TracerStatistics:
        """Counters describing what the tracer has recorded so far."""
        return TracerStatistics(
            recorded_requests=len(self._all),
            flushes=self._flushes,
            recorded_bytes=sum(r.nbytes for r in self._all),
        )

    # ------------------------------------------------------------------ #
    def record(self, request: IORequest) -> None:
        """Record one I/O request (the intercepted MPI-IO call)."""
        if self._finalized:
            raise TraceError("cannot record after the tracer has been finalized")
        self._pending.append(request)
        self._all.append(request)

    def record_write(self, rank: int, start: float, end: float, nbytes: int) -> None:
        """Convenience wrapper recording a write request."""
        self.record(IORequest(rank=rank, start=start, end=end, nbytes=nbytes, kind=IOKind.WRITE))

    def record_read(self, rank: int, start: float, end: float, nbytes: int) -> None:
        """Convenience wrapper recording a read request."""
        self.record(IORequest(rank=rank, start=start, end=end, nbytes=nbytes, kind=IOKind.READ))

    def flush(self, *, timestamp: float | None = None) -> int:
        """Flush the requests recorded since the last flush (online mode only).

        Returns the number of requests flushed.  In the paper this is the
        "single line added to indicate when to flush the results out to a
        file".
        """
        if self._mode is not TracerMode.ONLINE:
            raise TraceError("flush() is only available in online mode; use finalize() instead")
        return self._emit(timestamp=timestamp)

    def finalize(self, *, timestamp: float | None = None) -> Trace:
        """Finish tracing (MPI_Finalize): flush pending data and return the full trace."""
        if not self._finalized:
            self._emit(timestamp=timestamp)
            self._finalized = True
        return self.trace()

    def trace(self) -> Trace:
        """Return everything recorded so far as a single merged :class:`Trace`."""
        return Trace.from_requests(self._all, metadata=dict(self._metadata))

    # ------------------------------------------------------------------ #
    def _emit(self, *, timestamp: float | None) -> int:
        count = len(self._pending)
        if count == 0:
            return 0
        if timestamp is None:
            timestamp = max(r.end for r in self._pending)
        if self._writer is not None:
            self._writer.append(self._pending, timestamp=timestamp, metadata=self._metadata)
        self._pending = []
        self._flushes += 1
        return count
