"""Small shared utilities: validation helpers, statistics, RNG handling."""

from repro.utils.rng import as_generator
from repro.utils.stats import (
    coefficient_of_variation,
    safe_mean,
    safe_std,
    weighted_mean,
    zscores,
)
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_probability,
    check_in_range,
)

__all__ = [
    "as_generator",
    "coefficient_of_variation",
    "safe_mean",
    "safe_std",
    "weighted_mean",
    "zscores",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_range",
]
