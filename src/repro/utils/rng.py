"""Deterministic random-number handling.

Every stochastic component of the library (workload generators, noise
injection, the error-injected scheduler configuration) takes either an integer
seed or a :class:`numpy.random.Generator`.  Nothing in the library touches the
global numpy RNG state, so experiments are reproducible by construction.
"""

from __future__ import annotations

import numpy as np

SeedLike = int | np.random.Generator | np.random.SeedSequence | None


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` produces a freshly seeded generator; an existing generator is
    passed through unchanged so callers can thread one RNG through a whole
    experiment.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` independent child generators.

    Used by the sweep harness to give every generated trace its own stream so
    that adding a parameter point does not perturb the others.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
