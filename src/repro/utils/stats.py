"""Statistical helpers shared by the frequency analysis and the evaluation.

These are deliberately small, vectorized numpy routines: the paper favours
"simple calculations" (Section II-B2) so that the analysis can run online with
negligible overhead.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike, NDArray


def zscores(values: ArrayLike) -> NDArray[np.float64]:
    """Return the Z-score of every element of ``values`` (Eq. 2 of the paper).

    The Z-score measures how many standard deviations an element lies away
    from the mean of the whole sample.  A constant input (zero standard
    deviation) yields all-zero scores instead of dividing by zero.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return np.zeros(0, dtype=np.float64)
    std = float(arr.std())
    if std == 0.0:
        return np.zeros_like(arr)
    return (np.abs(arr) - abs(float(arr.mean()))) / std


def coefficient_of_variation(values: ArrayLike, *, weights: ArrayLike | None = None) -> float:
    """Return sigma / mean of ``values`` (optionally weighted).

    Used for the autocorrelation confidence ``c_a = 1 - sigma/mean`` and for the
    similarity score between the DFT result and the ACF candidates.  Returns
    0.0 for constant input and ``inf`` when the mean is zero but the spread is
    not (a degenerate case the caller treats as "no confidence").
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return float("inf")
    if weights is not None:
        w = np.asarray(weights, dtype=np.float64)
        mean = weighted_mean(arr, w)
        var = weighted_mean((arr - mean) ** 2, w)
        std = float(np.sqrt(var))
    else:
        mean = float(arr.mean())
        std = float(arr.std())
    if std == 0.0:
        return 0.0
    if mean == 0.0:
        return float("inf")
    return std / abs(mean)


def weighted_mean(values: ArrayLike, weights: ArrayLike) -> float:
    """Return the weighted arithmetic mean of ``values``.

    Falls back to the unweighted mean when all weights are zero so that
    degenerate ACF peak sets do not poison the confidence computation.
    """
    arr = np.asarray(values, dtype=np.float64)
    w = np.asarray(weights, dtype=np.float64)
    if arr.shape != w.shape:
        raise ValueError(f"values {arr.shape} and weights {w.shape} must have the same shape")
    total = float(w.sum())
    if total == 0.0:
        return safe_mean(arr)
    return float((arr * w).sum() / total)


def safe_mean(values: ArrayLike) -> float:
    """Mean that returns 0.0 for an empty input instead of warning."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return 0.0
    return float(arr.mean())


def safe_std(values: ArrayLike) -> float:
    """Standard deviation that returns 0.0 for an empty input instead of warning."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return 0.0
    return float(arr.std())


def geometric_mean(values: ArrayLike) -> float:
    """Geometric mean of strictly positive values.

    The Section IV metrics (stretch, I/O slowdown) aggregate per-application
    factors with the geometric mean, as in the IO-Sets paper.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return 0.0
    if np.any(arr <= 0):
        raise ValueError("geometric_mean requires strictly positive values")
    return float(np.exp(np.log(arr).mean()))
