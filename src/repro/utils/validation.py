"""Validation helpers used across the library.

Every public entry point validates its numeric parameters with these helpers
so that configuration mistakes surface as :class:`~repro.exceptions.ConfigurationError`
with a descriptive message rather than as a numpy broadcasting error deep in
the analysis.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import ConfigurationError


def check_positive(value: float, name: str) -> float:
    """Return ``value`` if it is strictly positive, otherwise raise.

    Parameters
    ----------
    value:
        The numeric value to validate.
    name:
        Parameter name used in the error message.
    """
    value = float(value)
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Return ``value`` if it is >= 0, otherwise raise."""
    value = float(value)
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Return ``value`` if it lies in the closed interval [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_in_range(
    value: float,
    name: str,
    *,
    low: float,
    high: float,
    inclusive: bool = True,
) -> float:
    """Return ``value`` if it lies within ``[low, high]`` (or ``(low, high)``)."""
    value = float(value)
    if inclusive:
        ok = low <= value <= high
    else:
        ok = low < value < high
    if not ok:
        bounds = f"[{low}, {high}]" if inclusive else f"({low}, {high})"
        raise ConfigurationError(f"{name} must be in {bounds}, got {value!r}")
    return value


def check_positive_int(value: Any, name: str) -> int:
    """Return ``value`` as ``int`` if it is a strictly positive integer."""
    ivalue = int(value)
    if ivalue != value or ivalue <= 0:
        raise ConfigurationError(f"{name} must be a positive integer, got {value!r}")
    return ivalue
