"""Workload generators: IOR, HACC-IO, LAMMPS, Nek5000, miniIO, semi-synthetic traces."""

from repro.workloads.hacc import hacc_flush_times, hacc_io_trace
from repro.workloads.ior import ior_periodic_job_trace, ior_phase, ior_trace
from repro.workloads.lammps import lammps_trace
from repro.workloads.miniio import miniio_trace
from repro.workloads.nek5000 import nek5000_heatmap, reduced_window
from repro.workloads.noise import NoiseLevel, add_noise, noise_trace
from repro.workloads.phases import PhaseSpec, generate_phase, phase_duration, phase_volume
from repro.workloads.synthetic import (
    PhaseLibrary,
    SemiSyntheticGenerator,
    SyntheticAppConfig,
    mean_period,
)

__all__ = [
    "hacc_flush_times",
    "hacc_io_trace",
    "ior_periodic_job_trace",
    "ior_phase",
    "ior_trace",
    "lammps_trace",
    "miniio_trace",
    "nek5000_heatmap",
    "reduced_window",
    "NoiseLevel",
    "add_noise",
    "noise_trace",
    "PhaseSpec",
    "generate_phase",
    "phase_duration",
    "phase_volume",
    "PhaseLibrary",
    "SemiSyntheticGenerator",
    "SyntheticAppConfig",
    "mean_period",
]
