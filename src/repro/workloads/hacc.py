"""HACC-IO-like workload generator (Figures 12–15).

HACC-IO mimics one I/O phase of the HACC cosmology code; the paper wraps its
compute/write/read/verify steps in a loop so that the pattern repeats
periodically, flushing the tracer at the end of every loop iteration.  Key
properties reproduced here:

* about 10 I/O phases with a mean period of ≈ 8.7 s,
* the first phase is significantly delayed/prolonged by initialization
  (the paper observes it spanning 4.1 s to 15.3 s), which pushes the offline
  detection towards two close dominant-frequency candidates,
* each phase contains a write step followed by a read step,
* high aggregate bandwidth (tens of GB/s on 3072 ranks).
"""

from __future__ import annotations

import numpy as np

from repro.constants import MIB
from repro.trace.record import GroundTruth, IOKind, IOPhase, IORequest
from repro.trace.trace import Trace
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive, check_positive_int
from repro.workloads.phases import PhaseSpec, generate_phase


def hacc_io_trace(
    *,
    ranks: int = 64,
    loops: int = 10,
    period: float = 8.0,
    io_fraction: float = 0.25,
    first_phase_delay: float = 6.0,
    aggregate_bandwidth: float = 40e9,
    request_size: int = 8 * MIB,
    period_jitter: float = 0.04,
    include_reads: bool = True,
    seed: SeedLike = None,
) -> Trace:
    """Generate a HACC-IO-like looped compute/write/read trace.

    Parameters
    ----------
    ranks:
        Number of simulated MPI ranks (the paper used 3072; the default is
        smaller to keep request counts laptop-friendly — the signal shape only
        depends on the aggregate bandwidth and timing).
    loops:
        Number of loop iterations (I/O phases).
    period:
        Nominal time between the starts of consecutive I/O phases (s).
    io_fraction:
        Fraction of the period spent in the write+read steps.
    first_phase_delay:
        Extra initialization time added before (and stretching) the first
        phase, reproducing the delayed first phase observed in the paper.
    period_jitter:
        Relative jitter on the compute time of each loop.
    include_reads:
        Whether to emit the read-back step after each write.
    """
    check_positive_int(ranks, "ranks")
    check_positive_int(loops, "loops")
    check_positive(period, "period")
    check_positive(aggregate_bandwidth, "aggregate_bandwidth")
    if not 0.0 < io_fraction < 1.0:
        raise ValueError(f"io_fraction must be in (0, 1), got {io_fraction}")
    rng = as_generator(seed)

    io_time = period * io_fraction
    write_time = io_time * (0.6 if include_reads else 1.0)
    read_time = io_time - write_time if include_reads else 0.0
    compute_time = period - io_time

    write_volume_per_rank = max(int(aggregate_bandwidth * write_time / ranks), request_size)
    write_spec = PhaseSpec(
        ranks=ranks,
        volume_per_rank=write_volume_per_rank,
        request_size=min(request_size, write_volume_per_rank),
        rank_bandwidth=aggregate_bandwidth / ranks,
        kind=IOKind.WRITE,
    )
    read_spec = None
    if include_reads and read_time > 0:
        read_volume_per_rank = max(int(aggregate_bandwidth * read_time / ranks), request_size)
        read_spec = PhaseSpec(
            ranks=ranks,
            volume_per_rank=read_volume_per_rank,
            request_size=min(request_size, read_volume_per_rank),
            rank_bandwidth=aggregate_bandwidth / ranks,
            kind=IOKind.READ,
        )

    requests: list[IORequest] = []
    phases: list[IOPhase] = []
    flush_times: list[float] = []
    cursor = 0.0
    for loop in range(loops):
        jitter = float(np.clip(rng.normal(1.0, period_jitter), 0.5, 2.0))
        this_compute = compute_time * jitter
        if loop == 0:
            this_compute += first_phase_delay
        cursor += this_compute

        # The first phase is also stretched (slower effective bandwidth).
        stretch = 2.0 if loop == 0 and first_phase_delay > 0 else 1.0
        write_requests = generate_phase(
            PhaseSpec(
                ranks=write_spec.ranks,
                volume_per_rank=write_spec.volume_per_rank,
                request_size=write_spec.request_size,
                rank_bandwidth=write_spec.rank_bandwidth / stretch,
                kind=IOKind.WRITE,
            ),
            start=cursor,
            bandwidth_jitter=0.03,
            seed=rng,
        )
        requests.extend(write_requests)
        phase_start = min(r.start for r in write_requests)
        phase_end = max(r.end for r in write_requests)
        phase_bytes = sum(r.nbytes for r in write_requests)

        if read_spec is not None:
            read_requests = generate_phase(
                read_spec, start=phase_end, bandwidth_jitter=0.03, seed=rng
            )
            requests.extend(read_requests)
            phase_end = max(r.end for r in read_requests)
            phase_bytes += sum(r.nbytes for r in read_requests)

        phases.append(IOPhase(start=phase_start, end=phase_end, nbytes=phase_bytes, label=f"loop-{loop}"))
        cursor = phase_end
        flush_times.append(cursor)

    ground_truth = GroundTruth(phases=tuple(phases))
    return Trace.from_requests(
        requests,
        ground_truth=ground_truth,
        metadata={
            "application": "hacc-io",
            "ranks": ranks,
            "loops": loops,
            "nominal_period": period,
            "flush_times": flush_times,
        },
    )


def hacc_flush_times(trace: Trace) -> list[float]:
    """Return the per-loop flush times recorded by :func:`hacc_io_trace`."""
    times = trace.metadata.get("flush_times")
    if not times:
        # Fall back to the phase ends from the ground truth.
        if trace.ground_truth is None:
            return []
        return [p.end for p in trace.ground_truth.phases]
    return list(times)
