"""IOR-like synthetic workload generator.

IOR is the canonical parallel I/O benchmark; the paper uses it in three roles:

* the Section II-C scalability example (9216 ranks, 8 iterations, 2 segments,
  2 MB transfers, 10 MB blocks, a period of roughly 112 s),
* the single I/O phases of the semi-synthetic traces (32 processes writing
  3.5 GB in 1 MB requests, around 10.4 s per phase), and
* the jobs of the Set-10 scheduling use case (Section IV).

:func:`ior_trace` generates a periodic compute/write pattern with those knobs;
:func:`ior_phase` generates a single phase for the semi-synthetic methodology.
"""

from __future__ import annotations

import numpy as np

from repro.constants import GIB, MIB
from repro.trace.record import GroundTruth, IOPhase, IORequest
from repro.trace.trace import Trace
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_non_negative, check_positive, check_positive_int
from repro.workloads.phases import PhaseSpec, generate_phase


def ior_phase(
    *,
    ranks: int = 32,
    volume_per_rank: int = int(3.5 * GIB),
    request_size: int = 32 * MIB,
    aggregate_bandwidth: float = 10e9,
    duration_jitter: float = 0.08,
    start: float = 0.0,
    seed: SeedLike = None,
) -> list[IORequest]:
    """Generate one IOR I/O phase (all ranks write once, roughly synchronized).

    Defaults mimic the phases traced for the limitation study: 32 processes,
    each writing a 3.5 GB file in contiguous requests, at an aggregate rate of
    about 10 GB/s — i.e. a phase of roughly 10–13 s once jitter is applied.
    (The request size is coarser than the paper's 1 MB so that laptop-scale
    traces stay at a manageable request count; the bandwidth signal is
    identical because requests are issued back to back.)
    """
    check_positive(aggregate_bandwidth, "aggregate_bandwidth")
    rng = as_generator(seed)
    spec = PhaseSpec(
        ranks=ranks,
        volume_per_rank=volume_per_rank,
        request_size=min(request_size, volume_per_rank),
        rank_bandwidth=aggregate_bandwidth / ranks,
    )
    return generate_phase(
        spec,
        start=start,
        bandwidth_jitter=duration_jitter,
        seed=rng,
    )


def ior_trace(
    *,
    ranks: int = 32,
    iterations: int = 8,
    segments: int = 2,
    transfer_size: int = 2 * MIB,
    block_size: int = 10 * MIB,
    compute_time: float = 90.0,
    compute_jitter: float = 0.02,
    aggregate_bandwidth: float | None = None,
    io_phase_duration: float = 10.0,
    start_offset: float = 0.0,
    duration_jitter: float = 0.05,
    seed: SeedLike = None,
) -> Trace:
    """Generate a periodic IOR-like trace: ``iterations`` × (compute, write).

    Parameters mirror IOR's: each iteration writes ``segments`` blocks of
    ``block_size`` bytes per rank in ``transfer_size`` requests.  The trace's
    ground truth records the phase boundaries and the mean period.

    When ``aggregate_bandwidth`` is ``None`` it is derived so that one I/O
    phase lasts ``io_phase_duration`` seconds regardless of the rank count —
    on the real cluster the phase length is set by the shared file system, not
    by the per-node volume, and this keeps small laptop-scale configurations
    representative of the paper's runs (8 iterations, a period of about 112 s,
    I/O phases of 10–20 s on 9216 ranks).
    """
    check_positive_int(iterations, "iterations")
    check_positive_int(segments, "segments")
    check_positive(compute_time, "compute_time")
    check_non_negative(start_offset, "start_offset")
    check_non_negative(compute_jitter, "compute_jitter")
    check_positive(io_phase_duration, "io_phase_duration")
    rng = as_generator(seed)

    volume_per_rank = segments * block_size
    if aggregate_bandwidth is None:
        aggregate_bandwidth = ranks * volume_per_rank / io_phase_duration
    check_positive(aggregate_bandwidth, "aggregate_bandwidth")
    spec = PhaseSpec(
        ranks=ranks,
        volume_per_rank=volume_per_rank,
        request_size=min(transfer_size, volume_per_rank),
        rank_bandwidth=aggregate_bandwidth / ranks,
    )

    requests: list[IORequest] = []
    phases: list[IOPhase] = []
    cursor = start_offset
    for _ in range(iterations):
        cursor += float(max(rng.normal(compute_time, compute_time * compute_jitter), 0.0))
        phase_requests = generate_phase(
            spec, start=cursor, bandwidth_jitter=duration_jitter, seed=rng
        )
        requests.extend(phase_requests)
        p_start = min(r.start for r in phase_requests)
        p_end = max(r.end for r in phase_requests)
        phases.append(IOPhase(start=p_start, end=p_end, nbytes=sum(r.nbytes for r in phase_requests)))
        cursor = p_end

    ground_truth = GroundTruth(phases=tuple(phases))
    return Trace.from_requests(
        requests,
        ground_truth=ground_truth,
        metadata={
            "application": "ior",
            "ranks": ranks,
            "iterations": iterations,
            "segments": segments,
            "transfer_size": transfer_size,
            "block_size": block_size,
        },
    )


def ior_periodic_job_trace(
    *,
    period: float,
    io_fraction: float = 0.0625,
    iterations: int = 10,
    ranks: int = 8,
    aggregate_bandwidth: float = 5e9,
    request_size: int = 1 * MIB,
    start_offset: float = 0.0,
    seed: SeedLike = None,
) -> Trace:
    """Generate the IOR-derived periodic jobs of the Set-10 experiment (Section IV).

    Each job runs ``iterations`` iterations of a fixed ``period``; the I/O
    phase occupies ``io_fraction`` of the period (6.25 % in the paper) and the
    rest is compute.  The volume per phase follows from the target bandwidth.
    """
    check_positive(period, "period")
    if not 0.0 < io_fraction < 1.0:
        raise ValueError(f"io_fraction must be in (0, 1), got {io_fraction}")
    rng = as_generator(seed)
    io_time = period * io_fraction
    compute_time = period - io_time
    volume_per_rank = max(int(aggregate_bandwidth * io_time / ranks), request_size)
    spec = PhaseSpec(
        ranks=ranks,
        volume_per_rank=volume_per_rank,
        request_size=min(request_size, volume_per_rank),
        rank_bandwidth=aggregate_bandwidth / ranks,
    )
    requests: list[IORequest] = []
    phases: list[IOPhase] = []
    cursor = start_offset
    for _ in range(iterations):
        cursor += compute_time
        phase_requests = generate_phase(spec, start=cursor, bandwidth_jitter=0.02, seed=rng)
        requests.extend(phase_requests)
        p_start = min(r.start for r in phase_requests)
        p_end = max(r.end for r in phase_requests)
        phases.append(IOPhase(start=p_start, end=p_end, nbytes=sum(r.nbytes for r in phase_requests)))
        cursor = p_end
    return Trace.from_requests(
        requests,
        ground_truth=GroundTruth(phases=tuple(phases), mean_period=period),
        metadata={
            "application": "ior-periodic-job",
            "ranks": ranks,
            "period": period,
            "io_fraction": io_fraction,
        },
    )
