"""LAMMPS-like workload generator (Figure 10).

The paper runs the LAMMPS 2-d Lennard-Jones flow example for 300 steps,
dumping all atoms every 20 steps on 3072 ranks: 15 dump phases with a real
mean period of 27.38 s, *low* I/O bandwidth (the dump is written through a
slow text-based path), and noticeable variability — FTIO detects 25.73 s with
a moderate 55 % confidence, refined to 84.9 % by the autocorrelation.

The generator reproduces those characteristics: periodic low-bandwidth dump
phases whose period and duration wobble around the configured means, plus an
occasional extra straggler dump (the paper points at a misaligned phase near
143 s) to keep the confidence moderate rather than perfect.
"""

from __future__ import annotations

import numpy as np

from repro.constants import MIB
from repro.trace.record import GroundTruth, IOKind, IOPhase, IORequest
from repro.trace.trace import Trace
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive, check_positive_int
from repro.workloads.phases import PhaseSpec, generate_phase


def lammps_trace(
    *,
    ranks: int = 48,
    dumps: int = 15,
    dump_interval: float = 27.4,
    dump_volume: int = 256 * MIB,
    aggregate_bandwidth: float = 30e6,
    interval_jitter: float = 0.08,
    straggler_probability: float = 0.15,
    seed: SeedLike = None,
) -> Trace:
    """Generate a LAMMPS-like low-bandwidth periodic dump trace.

    Parameters
    ----------
    ranks:
        Simulated writer ranks (the trace shape matters, not the count).
    dumps:
        Number of dump phases (300 steps / dump-every-20 = 15 in the paper).
    dump_interval:
        Mean time between dump starts (the paper's real mean period: 27.38 s).
    dump_volume:
        Bytes written per dump across all ranks.
    aggregate_bandwidth:
        Effective dump bandwidth; LAMMPS text dumps are slow (tens of MB/s in
        the paper's run, which is why the dump phases span several seconds).
    interval_jitter:
        Relative standard deviation of the interval between dumps.
    straggler_probability:
        Probability that a dump is significantly delayed (the misaligned phase
        the paper points out), keeping the DFT confidence moderate.
    """
    check_positive_int(ranks, "ranks")
    check_positive_int(dumps, "dumps")
    check_positive(dump_interval, "dump_interval")
    check_positive(aggregate_bandwidth, "aggregate_bandwidth")
    rng = as_generator(seed)

    volume_per_rank = max(dump_volume // ranks, MIB)
    spec = PhaseSpec(
        ranks=ranks,
        volume_per_rank=volume_per_rank,
        request_size=min(4 * MIB, volume_per_rank),
        rank_bandwidth=aggregate_bandwidth / ranks,
        kind=IOKind.WRITE,
    )

    requests: list[IORequest] = []
    phases: list[IOPhase] = []
    cursor = 0.0
    for dump in range(dumps):
        gap = float(max(rng.normal(dump_interval, dump_interval * interval_jitter), 1.0))
        if rng.uniform() < straggler_probability:
            gap *= float(rng.uniform(1.2, 1.5))
        io_start = cursor + gap - spec.nominal_duration
        io_start = max(io_start, cursor)
        phase_requests = generate_phase(spec, start=io_start, bandwidth_jitter=0.1, seed=rng)
        requests.extend(phase_requests)
        p_start = min(r.start for r in phase_requests)
        p_end = max(r.end for r in phase_requests)
        phases.append(
            IOPhase(start=p_start, end=p_end, nbytes=sum(r.nbytes for r in phase_requests), label=f"dump-{dump}")
        )
        cursor += gap

    ground_truth = GroundTruth(phases=tuple(phases))
    return Trace.from_requests(
        requests,
        ground_truth=ground_truth,
        metadata={
            "application": "lammps",
            "ranks": ranks,
            "dumps": dumps,
            "dump_interval": dump_interval,
        },
    )
