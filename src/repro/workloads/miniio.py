"""miniIO-like workload generator (Figure 6, the aliasing example).

The paper runs the miniIO *unstruct* mini-app (unstructured grids, 1000 points
per task) on 144 ranks and shows that a sampling frequency of 100 Hz is *not*
sufficient: the discrete signal misses most of the extremely short bursts and
the abstraction error (volume difference between the discrete and the original
signal) is far too large to trust any detected period.

The generator therefore produces many very short, sub-10-ms bursts: sampling
at 100 Hz (10 ms spacing) lands between most bursts, while a sufficiently
higher rate captures them — which is exactly the behaviour experiment E4
demonstrates.
"""

from __future__ import annotations

import numpy as np

from repro.constants import MIB
from repro.trace.record import GroundTruth, IOKind, IOPhase, IORequest
from repro.trace.trace import Trace
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive, check_positive_int


def miniio_trace(
    *,
    ranks: int = 144,
    bursts: int = 40,
    burst_interval: float = 0.5,
    burst_duration: float = 0.004,
    burst_volume: int = 8 * MIB,
    interval_jitter: float = 0.05,
    seed: SeedLike = None,
) -> Trace:
    """Generate a miniIO-like trace of very short periodic bursts.

    Parameters
    ----------
    ranks:
        Ranks participating in each burst (the volume is split among them).
    bursts:
        Number of output bursts.
    burst_interval:
        Nominal spacing between burst starts (seconds).
    burst_duration:
        Length of each burst — a few milliseconds, far below typical sampling
        intervals, which is what provokes the aliasing.
    burst_volume:
        Bytes written per burst across all ranks.
    """
    check_positive_int(ranks, "ranks")
    check_positive_int(bursts, "bursts")
    check_positive(burst_interval, "burst_interval")
    check_positive(burst_duration, "burst_duration")
    check_positive_int(burst_volume, "burst_volume")
    rng = as_generator(seed)

    volume_per_rank = max(burst_volume // ranks, 1)
    requests: list[IORequest] = []
    phases: list[IOPhase] = []
    cursor = 0.0
    for burst in range(bursts):
        cursor += float(max(rng.normal(burst_interval, burst_interval * interval_jitter), 0.01))
        start = cursor
        end = start + burst_duration
        for rank in range(ranks):
            requests.append(
                IORequest(rank=rank, start=start, end=end, nbytes=volume_per_rank, kind=IOKind.WRITE)
            )
        phases.append(IOPhase(start=start, end=end, nbytes=volume_per_rank * ranks, label=f"burst-{burst}"))
        cursor = end

    ground_truth = GroundTruth(phases=tuple(phases))
    return Trace.from_requests(
        requests,
        ground_truth=ground_truth,
        metadata={
            "application": "miniio",
            "ranks": ranks,
            "bursts": bursts,
            "burst_interval": burst_interval,
            "burst_duration": burst_duration,
        },
    )
