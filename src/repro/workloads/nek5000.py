"""Nek5000-like Darshan heatmap generator (Figure 11).

The paper downloads a Darshan profile of a Nek5000 turbulence simulation
(2048 ranks, Mogon II) from the I/O Trace Initiative and feeds its heatmap to
FTIO.  The profile's structure, as described in Section III-B(b):

* total duration of about 86 000 s,
* regular checkpoint phases writing about 7 GB each, *not* equally spaced but
  clustered around a period of roughly 4642 s,
* a 13 GB phase at time 0 and a 75 GB phase near 45 000 s,
* two irregular phases at roughly 57 000 s and 85 000 s writing about 30 GB,
* on the full window FTIO declares the trace aperiodic; restricting the window
  to Δt = 56 000 s removes the irregular phases and yields a period of
  4642.1 s with 85.4 % confidence.

:func:`nek5000_heatmap` regenerates a heatmap with exactly those features so
experiment E11 can reproduce the window-sensitivity result.
"""

from __future__ import annotations

import numpy as np

from repro.constants import GIB
from repro.trace.darshan import DarshanHeatmap
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive


def nek5000_heatmap(
    *,
    duration: float = 86_000.0,
    bin_width: float = 160.0,
    checkpoint_period: float = 4642.0,
    checkpoint_volume: float = 7 * GIB,
    checkpoint_duration: float = 1200.0,
    period_jitter: float = 0.04,
    seed: SeedLike = None,
) -> DarshanHeatmap:
    """Build the Nek5000-like Darshan heatmap described in the paper.

    Parameters
    ----------
    duration:
        Total profile length in seconds (paper: ≈ 86 000 s).
    bin_width:
        Heatmap bin width; the paper's profile had coarse bins
        (fs ≈ 0.006 Hz corresponds to ≈ 160 s bins).
    checkpoint_period:
        Nominal spacing of the regular 7 GB checkpoint phases.
    checkpoint_volume:
        Bytes written per regular checkpoint.
    checkpoint_duration:
        Wall-clock length of a checkpoint phase (Darshan's coarse bins make
        each phase span several bins, which is what gives the spectrum a
        decaying-harmonic envelope rather than a flat impulse-train spectrum).
    period_jitter:
        Relative jitter of the checkpoint spacing ("not equally spaced").
    """
    check_positive(duration, "duration")
    check_positive(bin_width, "bin_width")
    check_positive(checkpoint_period, "checkpoint_period")
    check_positive(checkpoint_duration, "checkpoint_duration")
    rng = as_generator(seed)

    n_bins = int(np.ceil(duration / bin_width))
    write_bins = np.zeros(n_bins)

    def deposit(time: float, volume: float, phase_duration: float) -> None:
        """Spread ``volume`` bytes uniformly over [time, time + phase_duration)."""
        first = int(np.clip(time // bin_width, 0, n_bins - 1))
        last = int(np.clip((time + phase_duration) // bin_width, first, n_bins - 1))
        span = np.arange(first, last + 1)
        write_bins[span] += volume / len(span)

    # Boundary phases: 13 GB at t = 0 and 75 GB near t = 45 000 s.
    deposit(0.0, 13 * GIB, checkpoint_duration)
    deposit(45_000.0, 75 * GIB, 2 * checkpoint_duration)

    # Regular checkpoints, roughly every `checkpoint_period`, skipping the
    # neighbourhood of the special phases so volumes match the description.
    t = checkpoint_period
    while t < duration - bin_width:
        near_special = any(
            abs(t - special) < checkpoint_period / 3 for special in (45_000.0, 57_000.0, 85_000.0)
        )
        if not near_special:
            deposit(t, checkpoint_volume * float(rng.uniform(0.9, 1.1)), checkpoint_duration)
        t += checkpoint_period * (1.0 + float(rng.normal(0.0, period_jitter)))

    # Irregular 30 GB phases at ≈ 57 000 s and ≈ 85 000 s.
    deposit(57_000.0, 30 * GIB, 1.5 * checkpoint_duration)
    deposit(85_000.0, 30 * GIB, 0.5 * checkpoint_duration)

    return DarshanHeatmap(
        bin_width=bin_width,
        write_bins=write_bins,
        read_bins=np.zeros(n_bins),
        t_start=0.0,
        metadata={
            "application": "nek5000",
            "ranks": 2048,
            "source": "synthetic reconstruction of the I/O Trace Initiative profile",
            "checkpoint_period": checkpoint_period,
        },
    )


def reduced_window() -> tuple[float, float]:
    """The reduced analysis window Δt = 56 000 s used in the paper's Figure 11."""
    return (0.0, 56_000.0)
