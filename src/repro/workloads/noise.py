"""Noise-trace generation for the limitation study (Section III-A).

The paper emulates background I/O noise with 200 traces of single-process IOR
runs in two configurations — "low" noise of roughly 500 MB/s and "high" noise
of roughly 1 GB/s — each containing 10 short periods of about 2.2 s.  Noise is
added to an application trace by randomly selecting a sequence of noise traces
and overlaying them on the application's time range.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.constants import MIB
from repro.trace.record import IOKind, IORequest
from repro.trace.trace import Trace, merge_traces
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_non_negative, check_positive


class NoiseLevel(str, Enum):
    """The two noise configurations used in the paper."""

    NONE = "none"
    LOW = "low"  # about 500 MB/s
    HIGH = "high"  # about 1 GB/s

    @property
    def bandwidth(self) -> float:
        """Nominal bandwidth of the noise bursts in bytes/s."""
        if self is NoiseLevel.LOW:
            return 500e6
        if self is NoiseLevel.HIGH:
            return 1e9
        return 0.0


def noise_trace(
    *,
    level: NoiseLevel | str = NoiseLevel.LOW,
    periods: int = 10,
    period_length: float = 2.2,
    duty_cycle: float = 0.5,
    rank: int = 0,
    start: float = 0.0,
    seed: SeedLike = None,
) -> Trace:
    """Generate one single-process noise trace (10 bursts of ~2.2 s by default)."""
    level = NoiseLevel(level)
    check_positive(period_length, "period_length")
    check_non_negative(start, "start")
    if not 0.0 < duty_cycle <= 1.0:
        raise ValueError(f"duty_cycle must be in (0, 1], got {duty_cycle}")
    rng = as_generator(seed)
    requests: list[IORequest] = []
    if level is NoiseLevel.NONE:
        return Trace.from_requests([])
    for i in range(periods):
        burst_start = start + i * period_length
        burst_length = period_length * duty_cycle * float(rng.uniform(0.8, 1.2))
        nbytes = int(level.bandwidth * burst_length)
        if nbytes <= 0:
            continue
        # Split the burst into 1 MiB requests, as IOR would issue them.
        cursor = burst_start
        remaining = nbytes
        request_duration = burst_length * MIB / nbytes if nbytes >= MIB else burst_length
        while remaining > 0:
            chunk = min(MIB, remaining)
            duration = request_duration * (chunk / MIB)
            requests.append(
                IORequest(rank=rank, start=cursor, end=cursor + duration, nbytes=chunk, kind=IOKind.WRITE)
            )
            cursor += duration
            remaining -= chunk
    return Trace.from_requests(requests, metadata={"application": "noise", "level": level.value})


def add_noise(
    trace: Trace,
    *,
    level: NoiseLevel | str = NoiseLevel.LOW,
    seed: SeedLike = None,
) -> Trace:
    """Overlay background noise over the full time range of ``trace``.

    Noise traces are generated back to back until the application's duration
    is covered, then merged with the original requests.  The ground truth of
    the application trace is preserved (the noise is not part of the phases).
    """
    level = NoiseLevel(level)
    if level is NoiseLevel.NONE or trace.is_empty:
        return trace
    rng = as_generator(seed)
    noise_rank = int(trace.ranks.max()) + 1 if len(trace) else 0
    pieces: list[Trace] = []
    cursor = trace.t_start
    while cursor < trace.t_end:
        piece = noise_trace(
            level=level,
            rank=noise_rank,
            start=cursor,
            seed=rng,
        )
        if piece.is_empty:
            break
        pieces.append(piece)
        cursor = piece.t_end + float(rng.uniform(0.0, 1.0))
    merged = merge_traces([trace, *pieces], metadata=dict(trace.metadata))
    return merged.with_ground_truth(trace.ground_truth) if trace.ground_truth else merged
