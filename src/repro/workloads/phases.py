"""Building blocks shared by the workload generators: single I/O phases.

An I/O phase is a set of requests issued by ``ranks`` processes during one
burst: every process writes ``volume_per_rank`` bytes split into requests of
``request_size`` bytes at a given per-rank bandwidth.  Processes may be
desynchronized by a per-process start delay (the δ_k of Section III-A).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import WorkloadError
from repro.trace.record import IOKind, IORequest
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_non_negative, check_positive, check_positive_int


@dataclass(frozen=True)
class PhaseSpec:
    """Specification of one I/O phase.

    Attributes
    ----------
    ranks:
        Number of processes taking part in the phase.
    volume_per_rank:
        Bytes each process transfers during the phase.
    request_size:
        Size of the individual requests each process issues.
    rank_bandwidth:
        Sustained per-rank transfer rate in bytes/s.
    kind:
        Whether the phase reads or writes.
    """

    ranks: int
    volume_per_rank: int
    request_size: int
    rank_bandwidth: float
    kind: IOKind = IOKind.WRITE

    def __post_init__(self) -> None:
        check_positive_int(self.ranks, "ranks")
        check_positive_int(self.volume_per_rank, "volume_per_rank")
        check_positive_int(self.request_size, "request_size")
        check_positive(self.rank_bandwidth, "rank_bandwidth")
        if self.request_size > self.volume_per_rank:
            raise WorkloadError(
                f"request_size ({self.request_size}) cannot exceed "
                f"volume_per_rank ({self.volume_per_rank})"
            )

    @property
    def requests_per_rank(self) -> int:
        """Number of requests each rank issues (last one may be smaller)."""
        return int(np.ceil(self.volume_per_rank / self.request_size))

    @property
    def nominal_duration(self) -> float:
        """Duration of the phase for a perfectly synchronized, noise-free run."""
        return self.volume_per_rank / self.rank_bandwidth


def generate_phase(
    spec: PhaseSpec,
    *,
    start: float = 0.0,
    rank_offset: int = 0,
    rank_delays: np.ndarray | None = None,
    bandwidth_jitter: float = 0.0,
    seed: SeedLike = None,
) -> list[IORequest]:
    """Generate the requests of one I/O phase.

    Parameters
    ----------
    spec:
        The phase specification.
    start:
        Wall-clock time at which the phase begins.
    rank_offset:
        First rank id to use (allows composing phases of disjoint rank groups).
    rank_delays:
        Optional per-rank start delays δ_k (seconds); length must equal
        ``spec.ranks``.  Process 0 traditionally keeps δ_0 = 0 so the phase
        boundary is preserved (Section III-A).
    bandwidth_jitter:
        Relative standard deviation applied to each request's duration to
        emulate file-system variability (0 disables it).
    seed:
        RNG seed / generator for the jitter.
    """
    check_non_negative(start, "start")
    check_non_negative(bandwidth_jitter, "bandwidth_jitter")
    if rank_delays is not None and len(rank_delays) != spec.ranks:
        raise WorkloadError(
            f"rank_delays has length {len(rank_delays)}, expected {spec.ranks}"
        )
    rng = as_generator(seed)
    requests: list[IORequest] = []
    base_request_time = spec.request_size / spec.rank_bandwidth
    for local_rank in range(spec.ranks):
        delay = float(rank_delays[local_rank]) if rank_delays is not None else 0.0
        cursor = start + delay
        remaining = spec.volume_per_rank
        while remaining > 0:
            nbytes = min(spec.request_size, remaining)
            duration = base_request_time * (nbytes / spec.request_size)
            if bandwidth_jitter > 0:
                duration *= float(
                    np.clip(rng.normal(1.0, bandwidth_jitter), 0.2, 5.0)
                )
            requests.append(
                IORequest(
                    rank=rank_offset + local_rank,
                    start=cursor,
                    end=cursor + duration,
                    nbytes=int(nbytes),
                    kind=spec.kind,
                )
            )
            cursor += duration
            remaining -= nbytes
    return requests


def phase_duration(requests: list[IORequest]) -> float:
    """Wall-clock length of a phase described by ``requests``."""
    if not requests:
        return 0.0
    return max(r.end for r in requests) - min(r.start for r in requests)


def phase_volume(requests: list[IORequest]) -> int:
    """Total bytes transferred by ``requests``."""
    return sum(r.nbytes for r in requests)
